#!/usr/bin/env python
"""End-to-end smoke test of the experiment service over real HTTP.

Starts ``python -m repro serve`` as a subprocess against a fresh store,
submits a 4-spec quick plan, polls the job to completion, streams its
records, then re-submits the identical plan and asserts every record is
served from the store (zero protocol re-executions).  Uses only the
stdlib (urllib) so the smoke needs nothing beyond the ``[service]`` extra
the server itself requires.

Exit code 0 on success; any assertion or timeout exits non-zero.  This is
the CI ``service-smoke`` job; it also runs fine locally::

    python scripts/service_smoke.py
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

PLAN = {
    "ns": [24],
    "seeds": [0, 1],
    "adversaries": ["none", "silent"],
    "modes": ["async"],
    "label": "service-smoke",
}  # 1 n x 2 seeds x 2 adversaries x 1 mode = 4 specs


def request(base: str, path: str, payload: dict | None = None) -> tuple[int, dict]:
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(
        base + path, data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


def wait_for(predicate, timeout: float, what: str):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        result = predicate()
        if result is not None:
            return result
        time.sleep(0.25)
    raise SystemExit(f"smoke: timed out after {timeout:.0f}s waiting for {what}")


def healthy(base: str):
    try:
        status, body = request(base, "/healthz")
    except (urllib.error.URLError, ConnectionError, OSError):
        return None
    return body if status == 200 else None


def finished_job(base: str, job_id: str):
    _, job = request(base, f"/jobs/{job_id}")
    return job if job["status"] in ("done", "failed") else None


def run_smoke(base: str) -> None:
    wait_for(lambda: healthy(base), 30, "the server to come up")

    status, first = request(base, "/plans", PLAN)
    assert status == 202, f"submit returned {status}: {first}"
    assert first["total"] == 4, f"expected a 4-spec plan, got {first['total']}"
    job = wait_for(lambda: finished_job(base, first["job_id"]), 120, "job 1")
    assert job["status"] == "done", f"job 1 failed: {job.get('error')}"
    assert job["done"] == 4

    with urllib.request.urlopen(
        base + f"/jobs/{first['job_id']}/records", timeout=30
    ) as resp:
        lines = [json.loads(line) for line in resp.read().splitlines()]
    assert len(lines) == 4, f"streamed {len(lines)} records, expected 4"
    assert {line["record"]["spec"]["adversary"] for line in lines} == {"none", "silent"}

    # the identical plan again: every record must come out of the store
    status, second = request(base, "/plans", PLAN)
    assert status == 202 and second["job_id"] != first["job_id"]
    again = wait_for(lambda: finished_job(base, second["job_id"]), 60, "job 2")
    assert again["status"] == "done", f"job 2 failed: {again.get('error')}"
    served = again["served_from_store"]
    assert served == again["total"] == 4, (
        f"re-submit served {served}/{again['total']} from the store, expected 4/4"
    )

    _, stats = request(base, "/store/stats")
    assert stats["records"] == 4, f"store holds {stats['records']} records, expected 4"
    print(f"smoke: OK — 4 ran, then {served}/4 served from store "
          f"({stats['records']} records at {stats['path']})")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--port", type=int, default=8765)
    parser.add_argument("--host", default="127.0.0.1")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        store = os.path.join(tmp, "smoke-store.sqlite")
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--host", args.host, "--port", str(args.port),
             "--store", store, "--jobs", "2"],
        )
        try:
            run_smoke(f"http://{args.host}:{args.port}")
        finally:
            server.terminate()
            try:
                server.wait(timeout=15)
            except subprocess.TimeoutExpired:
                server.kill()
    return 0


if __name__ == "__main__":
    sys.exit(main())
