"""Measure wall-clock of the fixed benchmark sweep (raw, no baseline compare).

Run from the repo root with ``PYTHONPATH=src python scripts/record_baseline.py OUT.json``.
This is the tool that produced the seed-engine baseline embedded in
:mod:`repro.experiments.bench` (``SEED_BASELINE_SECONDS``); re-run it when
resetting the baseline on a new reference machine.  For the comparison
report, use ``python -m repro bench`` / ``scripts/bench_kernel.py`` instead.
"""

from __future__ import annotations

import json
import sys

from repro.experiments.bench import run_fixed_sweep

if __name__ == "__main__":
    out = sys.argv[1] if len(sys.argv) > 1 else "baseline.json"
    cases = run_fixed_sweep()
    payload = {
        "cases": cases,
        "total_seconds": round(sum(float(c["seconds"]) for c in cases), 3),
    }
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    print(json.dumps(payload, indent=2))
