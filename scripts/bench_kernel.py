"""Run the fixed kernel benchmark sweep and write BENCH_kernel.json.

Usage (from the repo root)::

    PYTHONPATH=src python scripts/bench_kernel.py [OUT.json]

Equivalent to ``python -m repro bench``.  The fixed sweep and the recorded
seed-engine baseline live in :mod:`repro.experiments.bench`; keep both
stable so the numbers stay comparable across PRs.  To refresh the
*committed* artifact (min-of-5, extended cases, provenance, trajectory
preservation) use ``python -m repro bench --update`` instead.
"""

from __future__ import annotations

import json
import sys

from repro.experiments.bench import write_report

if __name__ == "__main__":
    out = sys.argv[1] if len(sys.argv) > 1 else "BENCH_kernel.json"
    report = write_report(out)
    print(json.dumps(report, indent=1))
    print(f"report written to {out}")
