"""Memory guard: the vectorized backend's peak-RSS contract at n = 10⁵.

The ``n = 10⁶`` scaling work (bit-packed tables, streamed Fw1/Fw2
accumulation, the ``vec_memory_mb`` budget) is only durable if CI pins it.
This guard runs the ``sync:none:n100000:s0:vec`` case cold — one fresh
subprocess per measurement, so ``ru_maxrss`` is the honest per-case
high-water mark — at the default memory budget *and* at a deliberately
tight ``vec_memory_mb=16``, and fails when either peak RSS exceeds its
pinned reference by more than the tolerance (default 20%).

The references were recorded on the machine that records the committed
BENCH baselines; RSS is far more stable across hosts than wall-clock (it
is dominated by numpy array footprints, not CPU speed), so the guard is
meaningful on shared runners too.  Message/bit totals are asserted
exactly — the budget knob must never change results, only memory.

Usage (from the repo root)::

    PYTHONPATH=src python scripts/check_vec_memory.py [--tolerance 0.20]
        [--large]

``--large`` additionally smokes the n = 10⁶ case (minutes of wall-clock;
not part of the default CI invocation).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys

from repro.experiments.plan import ExperimentSpec

_CHILD = """\
import json, resource, sys
from repro.experiments.plan import ExperimentSpec
result = ExperimentSpec.from_dict(json.loads(sys.argv[1])).run()
print(json.dumps({
    "rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0,
    "msgs": int(result.total_messages),
    "bits": int(result.total_bits),
}))
"""

#: (label, vec_memory_mb, pinned peak-RSS reference in MB) at n = 10⁵.
#: ``None`` budget exercises the default (DEFAULT_VEC_MEMORY_MB).
N_GUARD = 100_000
GUARD_CASES = (
    ("default budget", None, 280.0),
    ("vec_memory_mb=16", 16.0, 200.0),
)
#: exact totals of the n = 10⁵ case — identical under every budget
EXPECTED_MSGS = 3_086_043_844
EXPECTED_BITS = 430_025_526_439

N_LARGE = 1_000_000


def _spec(n: int, vec_memory_mb) -> ExperimentSpec:
    params = {} if vec_memory_mb is None else {"vec_memory_mb": vec_memory_mb}
    return ExperimentSpec(
        n=n, adversary="none", mode="sync", seed=0,
        wrong_candidate_mode="common_wrong", backend="vectorized",
        params=params,
    )


def _run_cold(spec: ExperimentSpec, timeout: int = 3600) -> dict:
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, json.dumps(spec.to_dict())],
        capture_output=True, text=True, timeout=timeout, check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"child failed for {spec.key}:\n{proc.stderr}")
    return json.loads(proc.stdout.strip().splitlines()[-1])


def run_guard(tolerance: float, large: bool) -> int:
    failures = []
    for label, budget, reference in GUARD_CASES:
        out = _run_cold(_spec(N_GUARD, budget))
        ceiling = reference * (1.0 + tolerance)
        verdict = "OK" if out["rss_mb"] <= ceiling else "FAIL"
        print(
            f"n={N_GUARD} {label}: peak_rss={out['rss_mb']:.1f}MB "
            f"(reference {reference:.0f}MB, ceiling {ceiling:.0f}MB) {verdict}"
        )
        if out["rss_mb"] > ceiling:
            failures.append(f"{label}: {out['rss_mb']:.1f}MB > {ceiling:.0f}MB")
        if (out["msgs"], out["bits"]) != (EXPECTED_MSGS, EXPECTED_BITS):
            failures.append(
                f"{label}: totals diverged — msgs={out['msgs']} bits={out['bits']} "
                f"(expected msgs={EXPECTED_MSGS} bits={EXPECTED_BITS})"
            )
    if large:
        out = _run_cold(_spec(N_LARGE, None))
        print(
            f"n={N_LARGE} default budget: peak_rss={out['rss_mb']:.1f}MB "
            f"msgs={out['msgs']} bits={out['bits']}"
        )
    if failures:
        print("vec memory guard FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("vec memory guard OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed fractional regression over the pinned reference (default 0.20)",
    )
    parser.add_argument(
        "--large", action="store_true",
        help="also smoke the n=10^6 case (minutes of wall-clock)",
    )
    args = parser.parse_args()
    return run_guard(args.tolerance, args.large)


if __name__ == "__main__":
    sys.exit(main())
