"""Generate the golden-seed engine-equivalence fixture.

The fixture (``tests/golden/engine_golden.json``) pins the externally visible
outcome of the simulation engine — decisions, rounds/span, bit metrics — for a
matrix of (mode, adversary, n, seed) cases.  ``tests/test_engine_golden.py``
asserts the current engine reproduces these values exactly, which is what makes
engine refactors provably behavior-preserving.

The committed fixture was produced by the pre-kernel seed engine (PR 1); only
regenerate it when an *intentional* behaviour change is made, and say so in the
commit message:

    PYTHONPATH=src python scripts/gen_golden.py tests/golden/engine_golden.json
"""

from __future__ import annotations

import json
import sys

from repro.experiments.plan import ExperimentSpec
from repro.runner import run_aer_experiment

#: (mode, rushing, adversary, n, seed) matrix pinned by the fixture
GOLDEN_MATRIX = [
    ("sync", False, "none", 24, 3),
    ("sync", False, "none", 40, 5),
    ("sync", False, "silent", 24, 3),
    ("sync", False, "equivocate", 24, 3),
    ("sync", False, "wrong_answer", 40, 5),
    ("sync", True, "equivocate", 24, 3),
    ("sync", True, "cornering_nodelay", 24, 3),
    ("async", False, "none", 24, 3),
    ("async", False, "none", 40, 5),
    ("async", False, "silent", 40, 5),
    ("async", False, "equivocate", 24, 3),
    ("async", False, "slow_knowledgeable", 24, 3),
    ("async", False, "cornering_nodelay", 24, 3),
]


#: fault-injection cases (PR 8): full specs pinned alongside their outcome.
#: Keys start with ``fault:`` and the entry carries its own ``"spec"`` dict,
#: so the legacy positional-key parser never sees them.
FAULT_MATRIX = [
    (
        "fault:churn:sync:n24:s3",
        dict(n=24, mode="sync", seed=3,
             faults={"churn_rate": 0.05, "recovery_rate": 0.5}),
    ),
    (
        "fault:loss:async:n24:s3",
        dict(n=24, mode="async", seed=3, faults={"loss_rate": 0.1}),
    ),
    (
        "fault:partition-heal:sync:n24:s5",
        dict(n=24, mode="sync", seed=5,
             faults={"partitions": [{"start": 1.0, "end": 3.0, "fraction": 0.5}]}),
    ),
]


def case_key(mode: str, rushing: bool, adversary: str, n: int, seed: int) -> str:
    return f"{mode}{'-rushing' if rushing else ''}:{adversary}:n{n}:s{seed}"


def run_case(mode: str, rushing: bool, adversary: str, n: int, seed: int) -> dict:
    result = run_aer_experiment(
        n, adversary_name=adversary, mode=mode, rushing=rushing, seed=seed
    )
    return {
        "decisions": {str(i): v for i, v in sorted(result.decisions.items())},
        "rounds": result.rounds,
        "span": result.span,
        "total_messages": result.metrics_all.total_messages,
        "total_bits": result.metrics_all.total_bits,
        "max_node_bits": result.metrics.max_node_bits,
        "per_node_bits": {
            str(i): b for i, b in sorted(result.metrics.per_node_bits.items())
        },
        "decision_times": {
            str(i): t for i, t in sorted(result.metrics.decision_times.items())
        },
    }


def run_fault_case(spec_kwargs: dict) -> dict:
    spec = ExperimentSpec(**spec_kwargs)
    result = spec.run()
    raw = result.raw
    return {
        "spec": spec.to_dict(),
        "decisions": {str(i): v for i, v in sorted(raw.decisions.items())},
        "rounds": result.rounds,
        "span": result.span,
        "decided_count": result.decided_count,
        "agreement": result.agreement,
        "total_messages": result.total_messages,
        "total_bits": result.total_bits,
        "max_node_bits": result.max_node_bits,
        "decision_times": {
            str(i): t for i, t in sorted(raw.metrics.decision_times.items())
        },
        "extras": {k: v for k, v in sorted(result.extras.items())
                   if k.startswith("fault_")},
    }


def main(out_path: str) -> None:
    golden = {
        case_key(*case): run_case(*case) for case in GOLDEN_MATRIX
    }
    golden.update(
        {key: run_fault_case(kwargs) for key, kwargs in FAULT_MATRIX}
    )
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(golden, fh, indent=1, sort_keys=True)
    print(f"wrote {len(golden)} golden cases to {out_path}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "tests/golden/engine_golden.json")
