#!/usr/bin/env python
"""End-to-end smoke test of the distributed sweep executor over real TCP.

Runs a 6-spec plan twice — once serially in-process, once through a
coordinator plus two real ``python -m repro dist-worker`` subprocesses —
**kills one worker with SIGKILL mid-run**, and asserts:

* the surviving worker (plus lease re-issue of the victim's shard) still
  drains the plan;
* the canonical JSON of both runs is byte-for-byte identical;
* the result store holds exactly one row per spec (zero duplicates even
  with at-least-once execution).

Exit code 0 on success; any assertion or timeout exits non-zero.  This is
the CI ``dist-smoke`` job; it also runs fine locally::

    python scripts/dist_smoke.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

# a fixed fingerprint so coordinator and worker subprocesses always agree,
# even on a dirty CI checkout
os.environ["REPRO_CODE_FINGERPRINT"] = "dist-smoke-fp"

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.dist import DistCoordinator, spawn_worker  # noqa: E402
from repro.experiments.plan import ExperimentPlan  # noqa: E402
from repro.experiments.sweep import SweepRunner  # noqa: E402
from repro.store import ResultStore  # noqa: E402

PLAN = ExperimentPlan(
    ns=(32, 48, 64), adversaries=("none", "silent"), modes=("sync",), seeds=(1,)
)  # 3 ns x 2 adversaries = 6 specs

DRAIN_TIMEOUT = 120.0


def main() -> int:
    specs = len(PLAN)
    serial = SweepRunner(PLAN, jobs=1).run()

    with tempfile.TemporaryDirectory() as tmp:
        serial_path = os.path.join(tmp, "serial.json")
        dist_path = os.path.join(tmp, "dist.json")
        serial.save(serial_path, canonical=True)

        store = ResultStore(os.path.join(tmp, "store.sqlite"))
        coordinator = DistCoordinator(PLAN, store=store, lease_timeout=2.0)
        host, port = coordinator.start()
        address = f"{host}:{port}"
        print(f"coordinator on {address}, plan of {specs} specs, lease 2.0s")

        workers = [spawn_worker(address, index=i, poll=0.1) for i in range(2)]
        try:
            # wait until at least one shard is done, then SIGKILL a worker —
            # whatever lease it held must expire and be re-issued
            deadline = time.time() + DRAIN_TIMEOUT
            while coordinator.board.counts()["done"] < 1:
                if time.time() > deadline:
                    raise TimeoutError("no shard completed before the kill")
                time.sleep(0.05)
            workers[0].kill()
            workers[0].wait(timeout=10.0)
            print(f"killed worker pid {workers[0].pid} mid-run")

            if not coordinator.wait(timeout=DRAIN_TIMEOUT):
                raise TimeoutError(
                    f"plan did not drain: {coordinator.board.counts()}"
                )
            result = coordinator.result(timeout=10.0, jobs=2)
        finally:
            for proc in workers:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=10.0)
            coordinator.close()

        result.save(dist_path, canonical=True)
        with open(serial_path, "rb") as a, open(dist_path, "rb") as b:
            assert a.read() == b.read(), "distributed result diverged from serial"

        stats = store.stats()
        assert stats["records"] == specs, (
            f"expected exactly {specs} store rows, found {stats['records']} "
            f"(duplicate persistence?)"
        )
        store.close()

        status = coordinator.status()
        print(
            json.dumps(
                {
                    "specs": specs,
                    "expired_leases": status["expired_leases"],
                    "duplicate_completions": status["duplicate_completions"],
                    "completed_by": status["completed_by"],
                    "store_records": stats["records"],
                }
            )
        )
    print(
        f"dist smoke OK: byte-identical after SIGKILL, "
        f"{specs} specs, zero duplicate store rows"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
