"""Advisory perf job: time the fixed BENCH sweep and profile the slowest case.

Runs every case of :data:`repro.experiments.bench.FIXED_SWEEP` once, prints a
timing table (with the committed ``BENCH_kernel.json`` seconds next to it for
orientation), then re-runs the *slowest* case under ``cProfile`` and writes
two artifacts into ``--out-dir`` (default ``perf-artifacts/``):

* ``slowest.prof`` — the raw profile, loadable with ``snakeviz`` /
  ``pstats``;
* ``slowest.txt`` — the top functions by cumulative and internal time, for
  reading directly in the CI log viewer.

The job is advisory by design: shared CI runners have no stable clock, so
the binding wall-clock comparison stays with
``scripts/check_trace_overhead.py`` on the reference machine.  What this
script adds on every push is the *shape* of the profile — a regression that
moves a new function into the top-10 is visible even when absolute seconds
are not trustworthy.

Usage (from the repo root)::

    PYTHONPATH=src python scripts/profile_bench.py [--out-dir perf-artifacts]
        [--baseline BENCH_kernel.json] [--top 25]
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import os
import pstats
import sys
import time

from repro.experiments.bench import FIXED_SWEEP


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default="perf-artifacts")
    parser.add_argument("--baseline", default="BENCH_kernel.json")
    parser.add_argument("--top", type=int, default=25, help="rows per pstats table")
    args = parser.parse_args(argv)

    committed = {}
    try:
        with open(args.baseline, encoding="utf-8") as fh:
            committed = {
                case["key"]: case["seconds"] for case in json.load(fh)["cases"]
            }
    except (OSError, ValueError, KeyError):
        pass

    timings = []
    for spec in FIXED_SWEEP:
        start = time.perf_counter()
        spec.run()
        seconds = time.perf_counter() - start
        timings.append((seconds, spec))
        reference = committed.get(spec.key)
        suffix = f" (committed {reference}s)" if reference is not None else ""
        print(f"{spec.key}: {seconds:.3f}s{suffix}")

    slowest_seconds, slowest = max(timings, key=lambda pair: pair[0])
    print(f"\nprofiling slowest case: {slowest.key} ({slowest_seconds:.3f}s)")

    profiler = cProfile.Profile()
    profiler.enable()
    slowest.run()
    profiler.disable()

    os.makedirs(args.out_dir, exist_ok=True)
    prof_path = os.path.join(args.out_dir, "slowest.prof")
    text_path = os.path.join(args.out_dir, "slowest.txt")
    profiler.dump_stats(prof_path)

    buffer = io.StringIO()
    buffer.write(f"fixed-sweep slowest case: {slowest.key}\n")
    buffer.write(f"single-run wall-clock: {slowest_seconds:.3f}s\n\n")
    stats = pstats.Stats(profiler, stream=buffer)
    buffer.write("== by cumulative time ==\n")
    stats.sort_stats("cumulative").print_stats(args.top)
    buffer.write("\n== by internal time ==\n")
    stats.sort_stats("tottime").print_stats(args.top)
    with open(text_path, "w", encoding="utf-8") as fh:
        fh.write(buffer.getvalue())

    print(f"profile written to {prof_path} and {text_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
