"""Perf guard: the ``trace="off"`` sweep must match the committed kernel baseline.

The trace subsystem's contract is that *disabled* tracing is free: a spec
with ``trace="off"`` constructs no collector and every probe site reduces to
one ``is not None`` check per grouped dispatch record.  This guard re-times
the fixed BENCH_kernel sweep (the same specs, min-of-N like the recorded
numbers) **through the spec/trace plumbing** with ``trace="off"`` and fails
if any case is slower than the committed ``BENCH_kernel.json`` seconds by
more than the tolerance (default 5%, per-case override via ``--tolerance``).

Determinism is checked too — total messages/bits must equal the committed
case records exactly, on any machine.

Usage (from the repo root)::

    PYTHONPATH=src python scripts/check_trace_overhead.py [--tolerance 0.05]
        [--repeats 3] [--baseline BENCH_kernel.json] [--no-timing]

``--no-timing`` restricts the guard to the determinism half — what CI on
unknown-speed shared runners should use; run the timing half on the machine
that recorded the committed baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments.bench import FIXED_SWEEP


def run_guard(
    baseline_path: str,
    tolerance: float,
    repeats: int,
    check_timing: bool = True,
) -> int:
    with open(baseline_path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    committed = {case["key"]: case for case in baseline["cases"]}

    failures = []
    for spec in FIXED_SWEEP:
        spec = spec.with_(trace="off")  # the zero-cost path, explicitly
        reference = committed.get(spec.key)
        if reference is None:
            print(f"{spec.key}: no committed baseline case, skipping")
            continue
        times = []
        result = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            result = spec.run()
            times.append(time.perf_counter() - start)
        seconds = min(times)
        assert result is not None

        if result.trace is not None:
            failures.append(f"{spec.key}: trace='off' still produced a trace block")
        if result.total_messages != reference["total_messages"]:
            failures.append(
                f"{spec.key}: total_messages {result.total_messages} != committed "
                f"{reference['total_messages']} (behaviour drifted)"
            )
        if result.total_bits != reference["total_bits"]:
            failures.append(
                f"{spec.key}: total_bits {result.total_bits} != committed "
                f"{reference['total_bits']} (behaviour drifted)"
            )

        budget = float(reference["seconds"]) * (1.0 + tolerance)
        verdict = "ok"
        if check_timing and seconds > budget:
            verdict = "TOO SLOW"
            failures.append(
                f"{spec.key}: {seconds:.3f}s > committed {reference['seconds']}s "
                f"+ {tolerance:.0%} tolerance ({budget:.3f}s)"
            )
        print(
            f"{spec.key}: {seconds:.3f}s (committed {reference['seconds']}s, "
            f"budget {budget:.3f}s) [{verdict}]"
        )

    if failures:
        print("\ntrace-overhead guard FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\ntrace-overhead guard passed: trace='off' is within the committed baseline.")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="BENCH_kernel.json")
    parser.add_argument(
        "--tolerance", type=float, default=0.05,
        help="allowed slowdown vs the committed per-case seconds (default 0.05)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed repetitions per case; the minimum counts (default 3)",
    )
    parser.add_argument(
        "--no-timing", action="store_true",
        help="skip the wall-clock comparison (determinism checks only); for CI "
             "runners whose speed is unrelated to the committed baseline's machine",
    )
    args = parser.parse_args(argv)
    return run_guard(
        args.baseline, args.tolerance, args.repeats, check_timing=not args.no_timing
    )


if __name__ == "__main__":
    sys.exit(main())
