"""Lemma 5 — w.h.p. every node has gstring in its candidate list after the push phase.

Reproduction: over several independent instances (fresh ``gstring``, fresh
corrupt set, wrong-answer adversary pushing a competing string), count how
often *every* correct node ends the push phase with ``gstring ∈ L_x``, and
how large the fraction of reached nodes is on average.  The paper's claim is
probability ``1 − n^{-c'}``; the benchmark reports the observed rate with a
Wilson confidence interval.
"""

from __future__ import annotations

import pytest

from repro.analysis.statistics import estimate_success, wilson_interval
from repro.core.config import AERConfig
from repro.core.scenario import build_aer_nodes, make_scenario
from repro.net.sync import SynchronousSimulator
from repro.runner import make_adversary

N = 64
TRIALS = 8


def push_reach(seed: int):
    """Return (all nodes reached?, fraction of correct nodes with gstring in L_x)."""
    config = AERConfig.for_system(N, sampler_seed=seed)
    scenario = make_scenario(N, config=config, t=N // 6, knowledge_fraction=0.78, seed=seed)
    samplers = config.build_samplers()
    nodes = build_aer_nodes(scenario, config, samplers=samplers)
    adversary = make_adversary("wrong_answer", scenario, config, samplers)
    SynchronousSimulator(
        nodes=nodes, n=N, adversary=adversary, seed=seed, size_model=config.size_model()
    ).run()
    reached = sum(1 for node in nodes if scenario.gstring in node.candidate_list)
    return reached == len(nodes), reached / len(nodes)


@pytest.fixture(scope="module")
def lemma5_stats():
    fractions = []

    def trial(seed: int) -> bool:
        ok, fraction = push_reach(seed)
        fractions.append(fraction)
        return ok

    estimate = estimate_success(trial, trials=TRIALS)
    return estimate, fractions


def test_benchmark_single_push_reach(benchmark):
    ok, fraction = benchmark.pedantic(lambda: push_reach(0), rounds=1, iterations=1)
    assert fraction > 0.9


def test_reach_rate_is_high(lemma5_stats):
    estimate, fractions = lemma5_stats
    # Every correct node reached in (almost) every trial; node-level reach ≈ 1.
    assert estimate.rate >= 0.75
    assert min(fractions) >= 0.95
    assert sum(fractions) / len(fractions) >= 0.99


def test_report_table(lemma5_stats, record_table, benchmark):
    estimate, fractions = lemma5_stats
    rows = [dict(n=N, **estimate.row(), mean_node_reach=round(sum(fractions) / len(fractions), 4))]
    record_table("lemma5_push_reach", rows, "Lemma 5 — gstring reaches every candidate list")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
