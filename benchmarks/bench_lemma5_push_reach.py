"""Lemma 5 — w.h.p. every node has gstring in its candidate list after the push phase.

Reproduction: over several independent instances (fresh ``gstring``, fresh
corrupt set, wrong-answer adversary pushing a competing string), count how
often *every* correct node ends the push phase with ``gstring ∈ L_x``, and
how large the fraction of reached nodes is on average.  The paper's claim is
probability ``1 − n^{-c'}``; the benchmark reports the observed rate with a
Wilson confidence interval.

The per-instance reach comes from the trace subsystem: the AER adapter
*marks* ``gstring`` on the collector, which counts initial holders and
push-majority acceptances without shipping the string itself — so the same
quantity is available to the ``lemma5`` report section through sweep JSONs
(one row source with EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.analysis.statistics import success_estimate_from_outcomes
from repro.experiments.plan import ExperimentSpec
from repro.report.sections import LEMMA5

N = 64
TRIALS = 8

PLAN = LEMMA5.plan_for(N, seeds=tuple(range(TRIALS)))


@pytest.fixture(scope="module")
def lemma5_rows(run_plan):
    sweep = run_plan(PLAN)
    return [LEMMA5.record_row(record) for record in sweep.records]


def test_benchmark_single_push_reach(benchmark):
    spec = ExperimentSpec(n=N, adversary="wrong_answer", seed=0, trace="summary")
    result = benchmark.pedantic(spec.run, rounds=1, iterations=1)
    reach = result.trace["marked"]["gstring"]["holders"] / result.correct_count
    assert reach > 0.9


def test_reach_rate_is_high(lemma5_rows):
    # Every correct node reached in (almost) every trial; node-level reach ≈ 1.
    estimate = success_estimate_from_outcomes(
        bool(row["all_reached"]) for row in lemma5_rows
    )
    fractions = [row["node_reach"] for row in lemma5_rows]
    assert estimate.rate >= 0.75
    assert min(fractions) >= 0.95
    assert sum(fractions) / len(fractions) >= 0.99


def test_report_table(lemma5_rows, record_table, benchmark):
    record_table("lemma5_push_reach", lemma5_rows,
                 "Lemma 5 — gstring reaches every candidate list")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
