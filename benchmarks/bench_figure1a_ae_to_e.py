"""Figure 1a — almost-everywhere to everywhere comparison.

Paper's table (Figure 1a):

===============  ==========  ============  ==================
                 [KLST11]    AER           AER
Model            sync/rush   sync/non-rush async
Time             O(log² n)   O(1)          O(log n / log log n)
Bits             O~(√n)      O(log² n)     O(log² n)
Load-balanced    Yes         No            No
===============  ==========  ============  ==================

Reproduction: sweep ``n``, run the KLST-style sampled-majority baseline and
AER under the synchronous (non-rushing) and asynchronous schedulers on the
same scenarios, and compare

* time (rounds / normalized span),
* per-node bits (amortized), with fitted growth exponents,
* load imbalance (max / median per-node bits), measured under the
  quorum-targeted flooding attack that makes AER's non-load-balancedness
  visible.

Shape expectations asserted below: AER's synchronous round count is constant
in ``n``; AER's amortized bits grow sub-linearly (and more slowly than the
naive linear reference); the baseline stays load-balanced while AER under the
quorum-flooding attack does not.

The grid and the table rows come from the ``figure1a`` report section, so
this benchmark and the corresponding EXPERIMENTS.md section share one row
source.
"""

from __future__ import annotations

import pytest

from repro.analysis.complexity import growth_exponent
from repro.report.sections import FIGURE1A, label_series
from repro.runner import run_aer_experiment

SYNC_SIZES = [32, 64, 128]
ASYNC_SIZES = [32, 64]
SEED = 2

PLAN = FIGURE1A.plan_for(SYNC_SIZES, ASYNC_SIZES, seeds=(SEED,))


@pytest.fixture(scope="module")
def figure1a_sweep(run_plan):
    return run_plan(PLAN)


@pytest.fixture(scope="module")
def figure1a_rows(figure1a_sweep):
    records = figure1a_sweep.records
    rows = [FIGURE1A.record_row(record) for record in records]
    series = {
        "klst_bits": label_series(records, "klst", lambda r: r.amortized_bits),
        "klst_rounds": label_series(records, "klst", lambda r: r.rounds or 0),
        "aer_bits": label_series(records, "aer-sync", lambda r: r.amortized_bits),
        "aer_rounds": label_series(records, "aer-sync", lambda r: r.rounds or 0),
    }
    return rows, series


def test_benchmark_single_aer_run(benchmark):
    """Wall-clock of one mid-size AER run (the unit of work behind the table)."""
    result = benchmark.pedantic(
        lambda: run_aer_experiment(n=64, adversary_name="wrong_answer", seed=SEED),
        rounds=1, iterations=1,
    )
    assert result.agreement_reached


def test_aer_time_is_constant_in_n(figure1a_rows):
    _, series = figure1a_rows
    assert max(series["aer_rounds"]) <= 6
    assert max(series["aer_rounds"]) - min(series["aer_rounds"]) <= 1


def test_aer_bits_grow_sublinearly(figure1a_rows):
    _, series = figure1a_rows
    exponent = growth_exponent(SYNC_SIZES, series["aer_bits"])
    assert exponent < 0.9  # polylog measured over a finite range; clearly below linear


def test_klst_baseline_is_load_balanced_aer_is_not(figure1a_rows):
    rows, _ = figure1a_rows
    klst_imbalance = [row["load_imbalance"] for row in rows if row["protocol"].startswith("KLST")]
    flood_imbalance = [row["load_imbalance"] for row in rows if "quorum-flood" in row["protocol"]]
    assert max(klst_imbalance) < 2.5
    assert max(flood_imbalance) > max(klst_imbalance)


def test_all_protocols_reach_agreement(figure1a_rows):
    rows, _ = figure1a_rows
    assert all(row["agreement"] == 1 for row in rows)


def test_report_table(figure1a_rows, record_table, benchmark):
    rows, series = figure1a_rows
    record_table("figure1a_ae_to_e", rows, "Figure 1a — almost-everywhere to everywhere")
    summary_rows = [
        {
            "series": "KLST-style amortized bits",
            "power_exponent": round(growth_exponent(SYNC_SIZES, series["klst_bits"]), 3),
        },
        {
            "series": "AER amortized bits",
            "power_exponent": round(growth_exponent(SYNC_SIZES, series["aer_bits"]), 3),
        },
    ]
    record_table("figure1a_growth_fits", summary_rows, "Figure 1a — fitted growth exponents")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
