"""Lemma 4 — the candidate lists of the correct nodes sum to O(n).

The adversary that maximises this quantity is the quorum-targeted flooding
attack: it searches for strings whose push quorum at some victim has a
corrupt majority and forces them into that victim's list.  Lemma 4 says the
total damage is still linear in ``n`` (amortized O(1) strings per node).

Reproduction: run AER under that adversary for a sweep of ``n`` with
``summary`` tracing — the candidate-list totals come from the trace's
``candidate_added`` probe and the forced-string count from the adversary's
own counter, both riding on ``ExperimentRecord.trace``/``extras`` — and
assert the sum stays within a small constant times ``n``.  The plan and the
table rows come from the ``lemma4`` report section (one row source with
EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.experiments.plan import ExperimentSpec
from repro.report.sections import LEMMA4

SIZES = [32, 64, 128]
SEED = 4

PLAN = LEMMA4.plan_for(SIZES, seeds=(SEED,))


@pytest.fixture(scope="module")
def lemma4_rows(run_plan):
    sweep = run_plan(PLAN)
    return [LEMMA4.record_row(record) for record in sweep.records]


def test_benchmark_candidate_list_run(benchmark):
    spec = ExperimentSpec(
        n=64,
        adversary="quorum_flood",
        wrong_candidate_mode="common_wrong",
        seed=SEED,
        trace="summary",
    )
    result = benchmark.pedantic(spec.run, rounds=1, iterations=1)
    assert result.trace["candidates"]["total"] >= result.correct_count


def test_sum_is_linear_in_n(lemma4_rows):
    for row in lemma4_rows:
        assert row["sum_over_n"] <= 3.0  # O(n) with a small constant


def test_amortized_candidates_do_not_grow_with_n(lemma4_rows):
    ratios = [row["sum_over_n"] for row in lemma4_rows]
    assert max(ratios) <= min(ratios) + 1.5


def test_agreement_survives_the_attack(lemma4_rows):
    assert all(row["agreement"] == 1 for row in lemma4_rows)


def test_report_table(lemma4_rows, record_table, benchmark):
    record_table("lemma4_candidate_lists", lemma4_rows, "Lemma 4 — sum of candidate-list sizes")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
