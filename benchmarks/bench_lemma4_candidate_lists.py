"""Lemma 4 — the candidate lists of the correct nodes sum to O(n).

The adversary that maximises this quantity is the quorum-targeted flooding
attack: it searches for strings whose push quorum at some victim has a
corrupt majority and forces them into that victim's list.  Lemma 4 says the
total damage is still linear in ``n`` (amortized O(1) strings per node).

Reproduction: run AER under that adversary for a sweep of ``n`` and report
``Σ_x |L_x|`` together with the number of strings the adversary managed to
force; assert the sum stays within a small constant times ``n``.
"""

from __future__ import annotations

import pytest

from repro.core.config import AERConfig
from repro.core.scenario import build_aer_nodes, make_scenario
from repro.net.sync import SynchronousSimulator
from repro.runner import make_adversary

SIZES = [32, 64, 128]
SEED = 4


def candidate_list_total(n: int, seed: int = SEED):
    config = AERConfig.for_system(n, sampler_seed=seed)
    scenario = make_scenario(
        n, config=config, t=n // 6, knowledge_fraction=0.78,
        wrong_candidate_mode="common_wrong", seed=seed,
    )
    samplers = config.build_samplers()
    nodes = build_aer_nodes(scenario, config, samplers=samplers)
    adversary = make_adversary("quorum_flood", scenario, config, samplers)
    sim = SynchronousSimulator(
        nodes=nodes, n=n, adversary=adversary, seed=seed, size_model=config.size_model()
    )
    result = sim.run()
    total = sum(node.push_engine.candidate_list_size for node in nodes)
    biggest = max(node.push_engine.candidate_list_size for node in nodes)
    return total, biggest, adversary.total_forced, result


@pytest.fixture(scope="module")
def lemma4_rows():
    rows = []
    for n in SIZES:
        total, biggest, forced, result = candidate_list_total(n)
        rows.append({
            "n": n,
            "sum_candidate_lists": total,
            "sum_over_n": round(total / n, 2),
            "largest_single_list": biggest,
            "strings_forced_by_adversary": forced,
            "agreement": int(result.agreement_reached),
        })
    return rows


def test_benchmark_candidate_list_run(benchmark):
    total, biggest, forced, result = benchmark.pedantic(
        lambda: candidate_list_total(64), rounds=1, iterations=1
    )
    assert total >= len(result.correct_ids)


def test_sum_is_linear_in_n(lemma4_rows):
    for row in lemma4_rows:
        assert row["sum_over_n"] <= 3.0  # O(n) with a small constant


def test_amortized_candidates_do_not_grow_with_n(lemma4_rows):
    ratios = [row["sum_over_n"] for row in lemma4_rows]
    assert max(ratios) <= min(ratios) + 1.5


def test_agreement_survives_the_attack(lemma4_rows):
    assert all(row["agreement"] == 1 for row in lemma4_rows)


def test_report_table(lemma4_rows, record_table, benchmark):
    record_table("lemma4_candidate_lists", lemma4_rows, "Lemma 4 — sum of candidate-list sizes")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
