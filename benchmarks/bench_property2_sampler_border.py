"""Section 4.1 / Figure 3 — Property 2 of the poll-list sampler J.

The paper proves (via the random digraph model of Figure 3) that w.h.p. no
small family ``L`` of labelled nodes keeps more than a third of its poll-list
edges inside its own node set: ``P[|∂L| ≤ (2/3)·d·|L|] = o(2^{-n})``.

Reproduction, two ways (both inside the ``sampler_border`` protocol adapter,
so the grid runs on the sweep subsystem and the rows come from the
``property2`` report section — one row source with EXPERIMENTS.md):

* Monte-Carlo on the *random digraph model itself* (fresh iid edges per
  trial), estimating the failure probability per family size — expected to be
  exactly zero at these sizes;
* adversarial search on the *concrete keyed-hash sampler J used by AER*:
  greedily grow families that try to point inward and report the worst
  expansion ratio found — expected to stay above 2/3.
"""

from __future__ import annotations

import pytest

from repro.experiments.plan import ExperimentSpec
from repro.report.sections import PROPERTY2

SIZES = [64, 128]
SEED = 9

PLAN = PROPERTY2.plan_for(SIZES, seeds=(SEED,))


@pytest.fixture(scope="module")
def property2_records(run_plan):
    return run_plan(PLAN).records


@pytest.fixture(scope="module")
def property2_rows(property2_records):
    return [PROPERTY2.record_row(record) for record in property2_records]


def test_benchmark_border_estimation(benchmark):
    spec = ExperimentSpec(
        n=64, protocol="sampler_border", seed=SEED, params={"model_trials": 30}
    )
    result = benchmark.pedantic(spec.run, rounds=1, iterations=1)
    assert result.extras["model_failures"]


def test_model_failure_probability_is_zero(property2_records):
    # Per-family-size Monte-Carlo probabilities, all exactly zero.
    for record in property2_records:
        failures = record.extras["model_failures"]
        assert failures
        assert all(probability == 0.0 for probability in failures.values())


def test_concrete_sampler_expands(property2_rows):
    for row in property2_rows:
        # Families the adversary cannot tailor (random labels) expand well above 2/3.
        assert row["worst_ratio_random_families"] > 2 / 3
        # The greedy label-shopping attack can graze the 2/3 threshold at these
        # small n (the lemma's constant d = O(log n) is asymptotic); it must not
        # collapse the expansion, though.
        assert row["worst_ratio_greedy_attack"] > 0.6


def test_report_table(property2_records, property2_rows, record_table, benchmark):
    model_rows = [
        {
            "n": record.spec.n,
            "family_size": size,
            "failure_probability": probability,
            "paper_bound": "o(2^-n)",
        }
        for record in property2_records
        for size, probability in sorted(
            record.extras["model_failures"].items(), key=lambda kv: int(kv[0])
        )
    ]
    record_table("property2_digraph_model", model_rows,
                 "Section 4.1 — border failure probability in the random digraph model")
    record_table("property2_hash_sampler", property2_rows,
                 "Section 4.1 — expansion of the concrete keyed-hash sampler J")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
