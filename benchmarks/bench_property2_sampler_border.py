"""Section 4.1 / Figure 3 — Property 2 of the poll-list sampler J.

The paper proves (via the random digraph model of Figure 3) that w.h.p. no
small family ``L`` of labelled nodes keeps more than a third of its poll-list
edges inside its own node set: ``P[|∂L| ≤ (2/3)·d·|L|] = o(2^{-n})``.

Reproduction, two ways:

* Monte-Carlo on the *random digraph model itself* (fresh iid edges per
  trial), estimating the failure probability per family size — expected to be
  exactly zero at these sizes;
* adversarial search on the *concrete keyed-hash sampler J used by AER*:
  greedily grow families that try to point inward and report the worst
  expansion ratio found — expected to stay above 2/3.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.config import AERConfig
from repro.samplers.poll_sampler import PollSampler
from repro.samplers.properties import worst_family_border_ratio
from repro.samplers.random_graph import estimate_border_probability

SIZES = [64, 128]
SEED = 9


@pytest.fixture(scope="module")
def property2_rows():
    model_rows = []
    for n in SIZES:
        failures = estimate_border_probability(n=n, trials=60, seed=SEED)
        for size, probability in sorted(failures.items()):
            model_rows.append({
                "n": n,
                "family_size": size,
                "failure_probability": probability,
                "paper_bound": "o(2^-n)",
            })

    sampler_rows = []
    for n in SIZES:
        config = AERConfig.for_system(n, sampler_seed=SEED)
        sampler = PollSampler(config.sampler_spec())
        rng = random.Random(SEED)
        family_size = max(2, int(n / math.log2(n)))
        worst_random = worst_family_border_ratio(sampler, family_size, trials=20, rng=rng, greedy=False)
        worst_greedy = worst_family_border_ratio(sampler, family_size, trials=3, rng=rng, greedy=True)
        sampler_rows.append({
            "n": n,
            "family_size": family_size,
            "worst_ratio_random_families": round(worst_random, 3),
            "worst_ratio_greedy_attack": round(worst_greedy, 3),
            "property2_threshold": round(2 / 3, 3),
        })
    return model_rows, sampler_rows


def test_benchmark_border_estimation(benchmark):
    failures = benchmark.pedantic(
        lambda: estimate_border_probability(n=64, trials=30, seed=SEED), rounds=1, iterations=1
    )
    assert failures


def test_model_failure_probability_is_zero(property2_rows):
    model_rows, _ = property2_rows
    assert all(row["failure_probability"] == 0.0 for row in model_rows)


def test_concrete_sampler_expands(property2_rows):
    _, sampler_rows = property2_rows
    for row in sampler_rows:
        # Families the adversary cannot tailor (random labels) expand well above 2/3.
        assert row["worst_ratio_random_families"] > 2 / 3
        # The greedy label-shopping attack can graze the 2/3 threshold at these
        # small n (the lemma's constant d = O(log n) is asymptotic); it must not
        # collapse the expansion, though.
        assert row["worst_ratio_greedy_attack"] > 0.6


def test_report_table(property2_rows, record_table, benchmark):
    model_rows, sampler_rows = property2_rows
    record_table("property2_digraph_model", model_rows,
                 "Section 4.1 — border failure probability in the random digraph model")
    record_table("property2_hash_sampler", sampler_rows,
                 "Section 4.1 — expansion of the concrete keyed-hash sampler J")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
