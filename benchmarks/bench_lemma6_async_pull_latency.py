"""Lemma 6 / Lemma 10 — asynchronous pull latency under the overload attack.

The adversary that maximises the asynchronous running time is the
"cornering" attack: it watches which poll-list members the honest pollers
contact (rushing knowledge), overloads exactly those with well-formed
requests for ``gstring`` to burn their ``log² n`` answer budgets, and delays
all honest traffic to the reliability limit.  Lemma 6 bounds the resulting
latency by ``O(log n / log log n)`` normalized time units.

Reproduction: sweep ``n``, run AER asynchronously under that adversary with
the worst-case constant delay policy, and report the normalized completion
time (span) next to the paper's ``log n / log log n`` reference curve.  The
shape assertion is that the span grows no faster than a small multiple of
the reference (and much slower than linearly).

The sweep and the table rows come from the ``lemma6`` report section, so
this benchmark and the corresponding EXPERIMENTS.md section share one row
source.
"""

from __future__ import annotations

import pytest

from repro.analysis.complexity import growth_exponent
from repro.experiments import execute_spec
from repro.report.sections import LEMMA6

SIZES = [32, 64, 96]
SEED = 6

PLAN = LEMMA6.plan_for(SIZES, seeds=(SEED,))


@pytest.fixture(scope="module")
def lemma6_sweep(run_plan):
    return run_plan(PLAN)


@pytest.fixture(scope="module")
def lemma6_rows(lemma6_sweep):
    rows = [LEMMA6.record_row(record) for record in lemma6_sweep.records]
    spans = [record.span or 0.0 for record in lemma6_sweep.records]
    return rows, spans


def test_benchmark_async_overload_run(benchmark):
    spec = next(s for s in PLAN.specs() if s.n == 64)
    record = benchmark.pedantic(lambda: execute_spec(spec), rounds=1, iterations=1)
    assert (record.span or 0.0) > 0


def test_all_decisions_are_gstring(lemma6_sweep):
    # The original per-run assertion: every decided value is the true gstring.
    for record in lemma6_sweep.records:
        assert record.extras["decided_gstring"] == round(record.decided_fraction, 4)


def test_span_within_constant_of_reference(lemma6_rows):
    rows, _ = lemma6_rows
    assert all(row["span_over_reference"] <= 5.0 for row in rows)


def test_span_grows_much_slower_than_n(lemma6_rows):
    _, spans = lemma6_rows
    assert growth_exponent(SIZES, spans) < 0.5


def test_report_table(lemma6_rows, record_table, benchmark):
    rows, _ = lemma6_rows
    record_table("lemma6_async_pull_latency", rows,
                 "Lemma 6 — async latency under the overload (cornering) attack")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
