"""Lemma 6 / Lemma 10 — asynchronous pull latency under the overload attack.

The adversary that maximises the asynchronous running time is the
"cornering" attack: it watches which poll-list members the honest pollers
contact (rushing knowledge), overloads exactly those with well-formed
requests for ``gstring`` to burn their ``log² n`` answer budgets, and delays
all honest traffic to the reliability limit.  Lemma 6 bounds the resulting
latency by ``O(log n / log log n)`` normalized time units.

Reproduction: sweep ``n``, run AER asynchronously under that adversary, and
report the normalized completion time (span) next to the paper's
``log n / log log n`` reference curve.  The shape assertion is that the span
grows no faster than a small multiple of the reference (and much slower than
linearly).
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.complexity import growth_exponent
from repro.net.asynchronous import ConstantDelayPolicy
from repro.core.config import AERConfig
from repro.core.scenario import make_scenario
from repro.runner import make_adversary, run_aer

SIZES = [32, 64, 96]
SEED = 6


def async_span(n: int, adversary_name: str = "cornering", seed: int = SEED) -> float:
    config = AERConfig.for_system(n, sampler_seed=seed)
    scenario = make_scenario(n, config=config, t=n // 6, knowledge_fraction=0.78, seed=seed)
    samplers = config.build_samplers()
    adversary = make_adversary(adversary_name, scenario, config, samplers)
    result = run_aer(
        scenario, config=config, adversary=adversary, mode="async", seed=seed,
        samplers=samplers, delay_policy=ConstantDelayPolicy(1.0),
    )
    assert all(v == scenario.gstring for v in result.decisions.values())
    return result.span or 0.0


@pytest.fixture(scope="module")
def lemma6_rows():
    rows = []
    spans = []
    for n in SIZES:
        span = async_span(n)
        reference = math.log2(n) / math.log2(math.log2(n))
        rows.append({
            "n": n,
            "span_normalized": round(span, 2),
            "log_over_loglog": round(reference, 2),
            "span_over_reference": round(span / reference, 2),
        })
        spans.append(span)
    return rows, spans


def test_benchmark_async_overload_run(benchmark):
    span = benchmark.pedantic(lambda: async_span(64), rounds=1, iterations=1)
    assert span > 0


def test_span_within_constant_of_reference(lemma6_rows):
    rows, _ = lemma6_rows
    assert all(row["span_over_reference"] <= 5.0 for row in rows)


def test_span_grows_much_slower_than_n(lemma6_rows):
    _, spans = lemma6_rows
    assert growth_exponent(SIZES, spans) < 0.5


def test_report_table(lemma6_rows, record_table, benchmark):
    rows, _ = lemma6_rows
    record_table("lemma6_async_pull_latency", rows,
                 "Lemma 6 — async latency under the overload (cornering) attack")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
