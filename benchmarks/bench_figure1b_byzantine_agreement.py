"""Figure 1b — Byzantine Agreement comparison.

Paper's table (Figure 1b) compares BA protocols by time and bits:
[BOPV06] (n^O(log n) bits), [KLST11] (O~(√n) bits, polylog time), **BA**
(polylog bits and time), [PR10] (O(1) time, Ω(n² log n) bits), [KS13].

Reproduction: run, on the same system sizes and corrupt sets,

* **BA** — the paper's composition (committee-tree almost-everywhere stage +
  AER), via :class:`repro.core.ba.BAProtocol`;
* **ae + sampled majority** — the KLST-style composition (the previous state
  of the art the paper improves on);
* **ae + all-to-all broadcast** — the quadratic-communication class.

Shape expectations: every composition reaches agreement; the naive
composition's amortized bits grow essentially linearly in ``n`` while BA's
grow sub-linearly; BA's total round count stays small and flat.
"""

from __future__ import annotations

import pytest

from repro.analysis.complexity import growth_exponent
from repro.baselines import run_composed_ba
from repro.core.ba import BAConfig, BAProtocol

SIZES = [48, 96, 144]
SEED = 5


@pytest.fixture(scope="module")
def figure1b_rows():
    rows = []
    series = {"ba_bits": [], "naive_bits": [], "klst_bits": [], "ba_rounds": []}
    for n in SIZES:
        ba = BAProtocol(BAConfig(n=n, seed=SEED)).run()
        row = dict(protocol="BA (ae + AER)", **ba.row())
        rows.append(row)
        series["ba_bits"].append(ba.amortized_bits)
        series["ba_rounds"].append(ba.total_rounds)

        klst = run_composed_ba(n, strategy="sample_majority", seed=SEED)
        rows.append(dict(protocol="ae + sampled majority (KLST-style)", **klst.row()))
        series["klst_bits"].append(klst.amortized_bits)

        naive = run_composed_ba(n, strategy="naive", seed=SEED)
        rows.append(dict(protocol="ae + all-to-all broadcast", **naive.row()))
        series["naive_bits"].append(naive.amortized_bits)
    return rows, series


def test_benchmark_single_ba_run(benchmark):
    """Wall-clock of one full BA run at n=96."""
    result = benchmark.pedantic(
        lambda: BAProtocol(BAConfig(n=96, seed=SEED)).run(), rounds=1, iterations=1
    )
    assert result.agreement_reached


def test_every_composition_reaches_agreement(figure1b_rows):
    rows, _ = figure1b_rows
    assert all(row["agreement"] == 1 for row in rows)


def test_ba_rounds_flat_in_n(figure1b_rows):
    _, series = figure1b_rows
    assert max(series["ba_rounds"]) - min(series["ba_rounds"]) <= 2


def test_naive_grows_faster_than_ba(figure1b_rows):
    _, series = figure1b_rows
    naive_exponent = growth_exponent(SIZES, series["naive_bits"])
    ba_exponent = growth_exponent(SIZES, series["ba_bits"])
    assert naive_exponent > 0.55
    assert ba_exponent < naive_exponent


def test_report_table(figure1b_rows, record_table, benchmark):
    rows, series = figure1b_rows
    record_table("figure1b_byzantine_agreement", rows, "Figure 1b — Byzantine Agreement")
    fits = [
        {"series": name, "power_exponent": round(growth_exponent(SIZES, values), 3)}
        for name, values in (
            ("BA amortized bits", series["ba_bits"]),
            ("KLST-style amortized bits", series["klst_bits"]),
            ("naive amortized bits", series["naive_bits"]),
        )
    ]
    record_table("figure1b_growth_fits", fits, "Figure 1b — fitted growth exponents")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
