"""Figure 1b — Byzantine Agreement comparison.

Paper's table (Figure 1b) compares BA protocols by time and bits:
[BOPV06] (n^O(log n) bits), [KLST11] (O~(√n) bits, polylog time), **BA**
(polylog bits and time), [PR10] (O(1) time, Ω(n² log n) bits), [KS13].

Reproduction: run, on the same system sizes and corrupt sets,

* **BA** — the paper's composition (committee-tree almost-everywhere stage +
  AER), via the ``full_ba`` protocol adapter;
* **ae + sampled majority** — the KLST-style composition (the previous state
  of the art the paper improves on);
* **ae + all-to-all broadcast** — the quadratic-communication class.

Shape expectations: every composition reaches agreement; the naive
composition's amortized bits grow essentially linearly in ``n`` while BA's
grow sub-linearly; BA's total round count stays small and flat.

The grid and the table rows come from the ``figure1b`` report section, so
this benchmark and the corresponding EXPERIMENTS.md section share one row
source.
"""

from __future__ import annotations

import pytest

from repro.analysis.complexity import growth_exponent
from repro.experiments import execute_spec
from repro.report.sections import FIGURE1B, label_series

SIZES = [48, 96, 144]
SEED = 5

PLAN = FIGURE1B.plan_for(SIZES, seeds=(SEED,))


@pytest.fixture(scope="module")
def figure1b_rows(run_plan):
    sweep = run_plan(PLAN)
    records = sweep.records
    rows = [FIGURE1B.record_row(record) for record in records]
    series = {
        "ba_bits": label_series(records, "ba", lambda r: r.amortized_bits),
        "ba_rounds": label_series(records, "ba", lambda r: r.rounds or 0),
        "klst_bits": label_series(records, "klst", lambda r: r.amortized_bits),
        "naive_bits": label_series(records, "naive", lambda r: r.amortized_bits),
    }
    return rows, series


def test_benchmark_single_ba_run(benchmark):
    """Wall-clock of one full BA run at n=96."""
    spec = next(s for s in PLAN.specs() if s.n == 96 and s.label == "ba")
    record = benchmark.pedantic(lambda: execute_spec(spec), rounds=1, iterations=1)
    assert record.agreement


def test_every_composition_reaches_agreement(figure1b_rows):
    rows, _ = figure1b_rows
    assert all(row["agreement"] == 1 for row in rows)


def test_ba_rounds_flat_in_n(figure1b_rows):
    _, series = figure1b_rows
    assert max(series["ba_rounds"]) - min(series["ba_rounds"]) <= 2


def test_naive_grows_faster_than_ba(figure1b_rows):
    _, series = figure1b_rows
    naive_exponent = growth_exponent(SIZES, series["naive_bits"])
    ba_exponent = growth_exponent(SIZES, series["ba_bits"])
    assert naive_exponent > 0.55
    assert ba_exponent < naive_exponent


def test_report_table(figure1b_rows, record_table, benchmark):
    rows, series = figure1b_rows
    record_table("figure1b_byzantine_agreement", rows, "Figure 1b — Byzantine Agreement")
    fits = [
        {"series": name, "power_exponent": round(growth_exponent(SIZES, values), 3)}
        for name, values in (
            ("BA amortized bits", series["ba_bits"]),
            ("KLST-style amortized bits", series["klst_bits"]),
            ("naive amortized bits", series["naive_bits"]),
        )
    ]
    record_table("figure1b_growth_fits", fits, "Figure 1b — fitted growth exponents")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
