"""Ablation — the Algorithm 3 answer budget is what tames the overload attack.

DESIGN.md (§5, item 3): a poll-list member answers at most ``log² n``
requests before it has decided.  Without that budget a cornering adversary
can force a few victims to do unbounded answering work; with it, the damage
is capped.  This ablation runs the cornering attack against three budgets —
the paper's ``log² n``, an effectively unlimited one, and a tiny one — and
compares the worst per-node load and the outcome.

The grid runs through the ``ablation_filters`` report section's plan (the
``answer_budget`` knob is an AER adapter param, the budget-hit counts come
from the trace subsystem's ``budget_exhausted`` probe), so this benchmark
and the EXPERIMENTS.md section share one row source.
"""

from __future__ import annotations

import pytest

from repro.report.sections import ABLATION_FILTERS

N = 64
SEED = 10

BUDGETS = ABLATION_FILTERS.budgets_for(N)
PLAN = ABLATION_FILTERS.plan_for(N, seeds=(SEED,))


@pytest.fixture(scope="module")
def ablation_rows(run_plan):
    sweep = run_plan(PLAN)
    return [ABLATION_FILTERS.record_row(record) for record in sweep.records]


def test_benchmark_default_budget(benchmark):
    spec = next(
        s for s in PLAN.specs() if s.params_dict()["answer_budget"] == BUDGETS["paper"]
    )
    result = benchmark.pedantic(spec.run, rounds=1, iterations=1)
    assert result.extras["decided_gstring"] >= 0.95


def test_paper_budget_keeps_liveness_tiny_budget_does_not(ablation_rows):
    by_regime = {row["regime"]: row for row in ablation_rows}
    # the paper's log² n budget (and anything larger) preserves liveness ...
    assert by_regime["paper"]["reach"] >= 0.95
    assert by_regime["unlimited"]["reach"] >= 0.95
    # ... while an aggressively small budget visibly harms it — which is exactly
    # why the filter threshold must be log² n and not a constant.
    assert by_regime["tiny"]["reach"] <= by_regime["paper"]["reach"]


def test_unlimited_budget_does_not_reduce_load(ablation_rows):
    by_regime = {row["regime"]: row for row in ablation_rows}
    assert by_regime["paper"]["max_node_bits"] <= by_regime["unlimited"]["max_node_bits"] * 1.2


def test_tiny_budget_defers_answers(ablation_rows):
    # The trace's budget probe shows *why* the tiny budget starves polls.
    by_regime = {row["regime"]: row for row in ablation_rows}
    assert by_regime["tiny"]["answers_deferred"] > by_regime["unlimited"]["answers_deferred"]


def test_report_table(ablation_rows, record_table, benchmark):
    record_table("ablation_answer_budget", ablation_rows,
                 "Ablation — Algorithm 3 answer budget under the cornering attack (n=64)")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
