"""Ablation — the Algorithm 3 answer budget is what tames the overload attack.

DESIGN.md (§5, item 3): a poll-list member answers at most ``log² n``
requests before it has decided.  Without that budget a cornering adversary
can force a few victims to do unbounded answering work; with it, the damage
is capped.  This ablation runs the cornering attack against three budgets —
the paper's ``log² n``, an effectively unlimited one, and a tiny one — and
compares the worst per-node load and the outcome.
"""

from __future__ import annotations

import pytest

from repro.core.config import AERConfig
from repro.core.scenario import make_scenario
from repro.runner import make_adversary, run_aer

N = 64
SEED = 10


def run_with_budget(budget: int):
    base = AERConfig.for_system(N, sampler_seed=SEED)
    config = base.with_(answer_budget=budget)
    scenario = make_scenario(N, config=config, t=N // 6, knowledge_fraction=0.78, seed=SEED)
    samplers = config.build_samplers()
    adversary = make_adversary("cornering", scenario, config, samplers)
    result = run_aer(
        scenario, config=config, adversary=adversary, mode="async", seed=SEED, samplers=samplers
    )
    gstring = scenario.gstring
    return {
        "answer_budget": budget,
        "reach": round(result.fraction_decided(gstring), 4),
        "max_node_bits": result.metrics.max_node_bits,
        "amortized_bits": round(result.metrics.amortized_bits, 1),
        "span": round(result.span or -1, 2),
    }


@pytest.fixture(scope="module")
def ablation_rows():
    default_budget = AERConfig.for_system(N).answer_budget
    return [run_with_budget(budget) for budget in (2, default_budget, 10_000)]


def test_benchmark_default_budget(benchmark):
    default_budget = AERConfig.for_system(N).answer_budget
    row = benchmark.pedantic(lambda: run_with_budget(default_budget), rounds=1, iterations=1)
    assert row["reach"] >= 0.95


def test_paper_budget_keeps_liveness_tiny_budget_does_not(ablation_rows):
    by_budget = {row["answer_budget"]: row for row in ablation_rows}
    default_budget = AERConfig.for_system(N).answer_budget
    # the paper's log² n budget (and anything larger) preserves liveness ...
    assert by_budget[default_budget]["reach"] >= 0.95
    assert by_budget[10_000]["reach"] >= 0.95
    # ... while an aggressively small budget visibly harms it — which is exactly
    # why the filter threshold must be log² n and not a constant.
    assert by_budget[2]["reach"] <= by_budget[default_budget]["reach"]


def test_unlimited_budget_does_not_reduce_load(ablation_rows):
    by_budget = {row["answer_budget"]: row for row in ablation_rows}
    default_budget = AERConfig.for_system(N).answer_budget
    assert by_budget[default_budget]["max_node_bits"] <= by_budget[10_000]["max_node_bits"] * 1.2


def test_report_table(ablation_rows, record_table, benchmark):
    record_table("ablation_answer_budget", ablation_rows,
                 "Ablation — Algorithm 3 answer budget under the cornering attack (n=64)")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
