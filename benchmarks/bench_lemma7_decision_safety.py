"""Lemma 7 — w.h.p. every node decides on gstring (and never on anything else).

Reproduction: over several independent instances and under the strongest
decision-targeting adversary (wrong answers + wrong-string pushes), measure

* **safety**: the number of correct nodes that decided a value different
  from ``gstring`` (the paper's argument makes this essentially impossible —
  the first node to decide a wrong value would need a Byzantine-majority
  poll list *for a freshly drawn random label*);
* **reach**: the fraction of correct nodes that decided ``gstring``.

Safety must be perfect in every trial; reach is a w.h.p. statement reported
with its confidence interval.
"""

from __future__ import annotations

import pytest

from repro.analysis.statistics import estimate_success
from repro.runner import run_aer_experiment

N = 64
TRIALS = 8


def decision_outcome(seed: int):
    result = run_aer_experiment(n=N, adversary_name="wrong_answer", seed=seed)
    values = list(result.decisions.values())
    if values:
        gstring = max(set(values), key=values.count)
    else:
        gstring = None
    wrong = sum(1 for v in values if v != gstring)
    reach = result.fraction_decided(gstring) if gstring is not None else 0.0
    return wrong, reach, result.agreement_reached


@pytest.fixture(scope="module")
def lemma7_stats():
    wrongs, reaches = [], []

    def trial(seed: int) -> bool:
        wrong, reach, agreement = decision_outcome(seed)
        wrongs.append(wrong)
        reaches.append(reach)
        return agreement

    estimate = estimate_success(trial, trials=TRIALS)
    return estimate, wrongs, reaches


def test_benchmark_single_decision_run(benchmark):
    wrong, reach, _ = benchmark.pedantic(lambda: decision_outcome(0), rounds=1, iterations=1)
    assert wrong == 0


def test_safety_is_absolute(lemma7_stats):
    _, wrongs, _ = lemma7_stats
    assert sum(wrongs) == 0


def test_reach_is_high(lemma7_stats):
    estimate, _, reaches = lemma7_stats
    assert estimate.rate >= 0.75           # full agreement in most trials
    assert min(reaches) >= 0.95            # and never more than a couple of stragglers
    assert sum(reaches) / len(reaches) >= 0.99


def test_report_table(lemma7_stats, record_table, benchmark):
    estimate, wrongs, reaches = lemma7_stats
    rows = [dict(
        n=N,
        **estimate.row(),
        wrong_decisions_total=sum(wrongs),
        mean_reach=round(sum(reaches) / len(reaches), 4),
    )]
    record_table("lemma7_decision_safety", rows, "Lemma 7 — decisions are gstring, w.h.p. everywhere")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
