"""Lemma 7 — w.h.p. every node decides on gstring (and never on anything else).

Reproduction: over several independent instances and under the strongest
decision-targeting adversary (wrong answers + wrong-string pushes), measure

* **safety**: the number of correct nodes that decided a value different
  from ``gstring`` (the paper's argument makes this essentially impossible —
  the first node to decide a wrong value would need a Byzantine-majority
  poll list *for a freshly drawn random label*);
* **reach**: the fraction of correct nodes that decided ``gstring``.

Safety must be perfect in every trial; reach is a w.h.p. statement reported
with its confidence interval.

The per-seed grid and the table rows come from the ``lemma7`` report
section, so this benchmark and the corresponding EXPERIMENTS.md section
share one row source.
"""

from __future__ import annotations

import pytest

from repro.analysis.statistics import success_estimate_from_outcomes
from repro.experiments import execute_spec
from repro.report.sections import LEMMA7

N = 64
TRIALS = 8

PLAN = LEMMA7.plan_for(N, seeds=tuple(range(TRIALS)))


@pytest.fixture(scope="module")
def lemma7_stats(run_plan):
    sweep = run_plan(PLAN)
    rows = [LEMMA7.record_row(record) for record in sweep.records]
    estimate = success_estimate_from_outcomes(bool(row["agreement"]) for row in rows)
    wrongs = [row["wrong_decisions"] for row in rows]
    reaches = [row["reach"] for row in rows]
    return estimate, wrongs, reaches


def test_benchmark_single_decision_run(benchmark):
    record = benchmark.pedantic(
        lambda: execute_spec(PLAN.specs()[0]), rounds=1, iterations=1
    )
    assert LEMMA7.record_row(record)["wrong_decisions"] == 0


def test_safety_is_absolute(lemma7_stats):
    _, wrongs, _ = lemma7_stats
    assert sum(wrongs) == 0


def test_reach_is_high(lemma7_stats):
    estimate, _, reaches = lemma7_stats
    assert estimate.rate >= 0.75           # full agreement in most trials
    assert min(reaches) >= 0.95            # and never more than a couple of stragglers
    assert sum(reaches) / len(reaches) >= 0.99


def test_report_table(lemma7_stats, record_table, benchmark):
    estimate, wrongs, reaches = lemma7_stats
    rows = [dict(
        n=N,
        **estimate.row(),
        wrong_decisions_total=sum(wrongs),
        mean_reach=round(sum(reaches) / len(reaches), 4),
    )]
    record_table("lemma7_decision_safety", rows, "Lemma 7 — decisions are gstring, w.h.p. everywhere")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
