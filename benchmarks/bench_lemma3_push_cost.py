"""Lemma 3 — the push phase costs O(s · log n) bits per correct node.

Reproduction: run AER with the push-flooding adversary (the worst case for
this phase, since flooding cannot trigger any reaction) under ``summary``
tracing, and read the *push-phase* bits sent per correct node off the trace
block.  The paper's claim is that this is ``O(s · log n)`` with
``s = O(log n)`` — i.e. it grows only poly-logarithmically and is a
negligible share of the total cost.

The sweep runs as an :class:`repro.experiments.ExperimentPlan` on the sweep
subsystem; the plan and the table rows come from the ``lemma3`` report
section, so this benchmark and the corresponding EXPERIMENTS.md section
share one row source (the per-node push accounting travels on
``ExperimentRecord.trace`` instead of a per-message log).
"""

from __future__ import annotations

import pytest

from repro.analysis.complexity import growth_exponent
from repro.experiments.plan import ExperimentSpec
from repro.report.sections import LEMMA3

SIZES = [32, 64, 128]
SEED = 3

PLAN = LEMMA3.plan_for(SIZES, seeds=(SEED,))


@pytest.fixture(scope="module")
def lemma3_rows(run_plan):
    sweep = run_plan(PLAN)
    rows = [LEMMA3.record_row(record) for record in sweep.records]
    max_series = [row["push_bits_max"] for row in rows]
    return rows, max_series


def test_benchmark_push_phase_measurement(benchmark):
    spec = ExperimentSpec(n=64, adversary="push_flood", seed=SEED, trace="summary")
    result = benchmark.pedantic(spec.run, rounds=1, iterations=1)
    assert result.trace["push"]["max_node_bits"] > 0


def test_push_cost_tracks_s_log_n(lemma3_rows):
    rows, _ = lemma3_rows
    for row in rows:
        # within a small constant factor of the s·d reference (Lemma 3's bound)
        assert row["push_bits_max"] <= 6 * row["s_log_n_reference"]


def test_push_cost_grows_sublinearly(lemma3_rows):
    _, max_series = lemma3_rows
    assert growth_exponent(SIZES, max_series) < 0.7


def test_push_is_negligible_share_of_total(lemma3_rows):
    rows, _ = lemma3_rows
    for row in rows:
        assert row["push_bits_mean"] < 0.05 * row["total_amortized_bits"]


def test_report_table(lemma3_rows, record_table, benchmark):
    rows, _ = lemma3_rows
    record_table("lemma3_push_cost", rows, "Lemma 3 — push phase cost per correct node")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
