"""Lemma 3 — the push phase costs O(s · log n) bits per correct node.

Reproduction: run AER with the push-flooding adversary (the worst case for
this phase, since flooding cannot trigger any reaction), log every message,
and measure the *push-phase* bits sent per correct node.  The paper's claim
is that this is ``O(s · log n)`` with ``s = O(log n)`` — i.e. it grows only
poly-logarithmically and is a negligible share of the total cost.
"""

from __future__ import annotations

import pytest

from repro.analysis.complexity import growth_exponent
from repro.core.config import AERConfig
from repro.core.scenario import build_aer_nodes, make_scenario
from repro.net.sync import SynchronousSimulator
from repro.runner import make_adversary

SIZES = [32, 64, 128]
SEED = 3


def push_phase_cost(n: int, seed: int = SEED):
    """Return (max push bits sent by a correct node, mean push bits, total bits)."""
    config = AERConfig.for_system(n, sampler_seed=seed)
    scenario = make_scenario(n, config=config, t=n // 6, knowledge_fraction=0.78, seed=seed)
    samplers = config.build_samplers()
    nodes = build_aer_nodes(scenario, config, samplers=samplers)
    adversary = make_adversary("push_flood", scenario, config, samplers)
    sim = SynchronousSimulator(
        nodes=nodes, n=n, adversary=adversary, seed=seed, size_model=config.size_model()
    )
    sim.metrics.enable_message_log()
    result = sim.run()

    push_sent = {node_id: 0 for node_id in scenario.correct_ids}
    for sender, _dest, kind, bits, _time in sim.metrics.message_log:
        if kind == "push" and sender in push_sent:
            push_sent[sender] += bits
    per_node = list(push_sent.values())
    return max(per_node), sum(per_node) / len(per_node), result


@pytest.fixture(scope="module")
def lemma3_rows():
    rows = []
    max_series = []
    for n in SIZES:
        worst, mean, result = push_phase_cost(n)
        config = AERConfig.for_system(n)
        rows.append({
            "n": n,
            "push_bits_max": worst,
            "push_bits_mean": round(mean, 1),
            "s_log_n_reference": config.string_length * config.quorum_size,
            "total_amortized_bits": round(result.metrics.amortized_bits, 1),
            "agreement": int(result.agreement_reached),
        })
        max_series.append(worst)
    return rows, max_series


def test_benchmark_push_phase_measurement(benchmark):
    worst, mean, result = benchmark.pedantic(lambda: push_phase_cost(64), rounds=1, iterations=1)
    assert worst > 0


def test_push_cost_tracks_s_log_n(lemma3_rows):
    rows, _ = lemma3_rows
    for row in rows:
        # within a small constant factor of the s·d reference (Lemma 3's bound)
        assert row["push_bits_max"] <= 6 * row["s_log_n_reference"]


def test_push_cost_grows_sublinearly(lemma3_rows):
    _, max_series = lemma3_rows
    assert growth_exponent(SIZES, max_series) < 0.7


def test_push_is_negligible_share_of_total(lemma3_rows):
    rows, _ = lemma3_rows
    for row in rows:
        assert row["push_bits_mean"] < 0.05 * row["total_amortized_bits"]


def test_report_table(lemma3_rows, record_table, benchmark):
    rows, _ = lemma3_rows
    record_table("lemma3_push_cost", rows, "Lemma 3 — push phase cost per correct node")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
