"""Lemma 8 / Lemma 9 — constant-time completion against a non-rushing adversary.

Against a *non-rushing* synchronous adversary, every poll is answered in a
constant number of steps (Lemma 8) and the whole protocol finishes in O(1)
rounds with O~(n) total messages (Lemma 9).

Reproduction: sweep ``n`` with the strongest non-rushing adversary (wrong
answers) and report the round count, the latest per-node decision round and
the total number of messages divided by ``n``.  The shape assertions are that
the round count does not grow with ``n`` and that messages per node grow only
poly-logarithmically (sub-linearly over the measured range).

The sweep runs as an :class:`repro.experiments.ExperimentPlan` on the
parallel sweep subsystem (one worker per grid point); the plan and the table
rows come from the ``lemma8`` report section, so this benchmark and the
corresponding EXPERIMENTS.md section share one row source.
"""

from __future__ import annotations

import pytest

from repro.analysis.complexity import growth_exponent
from repro.report.sections import LEMMA8
from repro.runner import run_aer_experiment

SIZES = [32, 64, 128, 192]
SEED = 7

PLAN = LEMMA8.plan_for(SIZES, seeds=(SEED,))


@pytest.fixture(scope="module")
def lemma8_rows(run_plan):
    sweep = run_plan(PLAN)
    rows = [LEMMA8.record_row(record) for record in sweep.records]
    rounds_series = [record.rounds or 0 for record in sweep.records]
    messages_series = [record.total_messages / record.spec.n for record in sweep.records]
    return rows, rounds_series, messages_series


def test_benchmark_single_sync_run(benchmark):
    result = benchmark.pedantic(
        lambda: run_aer_experiment(n=96, adversary_name="wrong_answer", seed=SEED),
        rounds=1, iterations=1,
    )
    assert result.agreement_reached


def test_round_count_constant_in_n(lemma8_rows):
    # A handful of nodes may decide one "cascade" later (a poll-list member that
    # first had to decide itself before flushing its deferred answer), so the
    # count fluctuates between ~5 and ~8 — but it must not grow with n.
    _, rounds_series, _ = lemma8_rows
    assert max(rounds_series) <= 9
    assert rounds_series[-1] <= rounds_series[0] + 2


def test_total_messages_quasi_linear(lemma8_rows):
    # Lemma 9: O~(n) messages in total, i.e. messages/node grows poly-logarithmically.
    _, _, messages_series = lemma8_rows
    assert growth_exponent(SIZES, messages_series) < 0.85


def test_essentially_everyone_decides(lemma8_rows):
    # The w.h.p. statement at finite n: allow single-node stragglers (bad poll
    # lists happen with small but non-zero probability at these sizes).
    rows, _, _ = lemma8_rows
    assert all(row["decided_fraction"] >= 0.97 for row in rows)
    assert sum(row["agreement"] for row in rows) >= len(rows) - 1


def test_report_table(lemma8_rows, record_table, benchmark):
    rows, _, _ = lemma8_rows
    record_table("lemma8_9_sync_end_to_end", rows,
                 "Lemmas 8-9 — synchronous non-rushing: constant rounds, O~(n) messages")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
