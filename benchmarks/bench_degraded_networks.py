"""Degraded networks — agreement under loss, churn and heavy-tailed delays.

Reproduction: run the ``degraded_networks`` report section's grid — message
loss and crash-recovery churn under the synchronous scheduler, loss crossed
with heavy-tailed (Pareto, lognormal) delay families under the asynchronous
one — and assert the qualitative shape the fault layer is built to expose:

* the fault-free corners of the grid still reach agreement everywhere (the
  injection layer is off by default and provably free when off — the golden
  matrix pins that byte-identically);
* sustained loss strictly erodes the decided fraction (AER has no
  retransmission layer, so dropped quorum traffic is never recovered);
* heavy-tailed delay families alone (no loss) preserve agreement — the
  asynchronous pull phase tolerates arbitrary finite delays.

The plan and the table rows come from the ``degraded_networks`` report
section, so this benchmark and the corresponding EXPERIMENTS.md section
share one row source.
"""

from __future__ import annotations

import pytest

from repro.experiments.plan import ExperimentSpec
from repro.report.sections import DEGRADED_NETWORKS

PLAN = DEGRADED_NETWORKS.plan(quick=True)


@pytest.fixture(scope="module")
def degraded_rows(run_plan):
    sweep = run_plan(PLAN)
    rows = [DEGRADED_NETWORKS.record_row(record) for record in sweep.records]
    return rows, list(sweep.records)


def test_benchmark_single_faulted_run(benchmark):
    spec = ExperimentSpec(n=32, mode="sync", seed=0, faults={"loss_rate": 0.05})
    result = benchmark.pedantic(spec.run, rounds=1, iterations=1)
    assert result.extras["fault_dropped_loss"] > 0


def test_fault_free_corners_agree(degraded_rows):
    rows, _ = degraded_rows
    clean = [row for row in rows if row["faults"] == "none"]
    assert clean, "the grid must include fault-free baseline corners"
    assert all(row["agreement"] == 1 for row in clean)


def test_loss_erodes_decided_fraction(degraded_rows):
    rows, _ = degraded_rows
    # per (mode, delay, seed): decided fraction at loss 0 vs the heaviest loss
    for mode, delay in {(row["mode"], row["delay"]) for row in rows}:
        cohort = [r for r in rows if r["mode"] == mode and r["delay"] == delay]
        for seed in {r["seed"] for r in cohort}:
            runs = [r for r in cohort if r["seed"] == seed]
            clean = [r for r in runs if r["faults"] == "none"]
            lossy = [r for r in runs if r["faults"].startswith("loss=")]
            if not clean or not lossy:
                continue
            worst = min(r["decided_fraction"] for r in lossy)
            assert worst <= max(r["decided_fraction"] for r in clean)


def test_heavy_tails_alone_preserve_agreement(degraded_rows):
    rows, _ = degraded_rows
    tails = [
        row for row in rows
        if row["delay"] in ("pareto", "lognormal") and row["faults"] == "none"
    ]
    assert tails, "the grid must include loss-free heavy-tail corners"
    assert all(row["agreement"] == 1 for row in tails)


def test_fault_counters_surface_in_extras(degraded_rows):
    _, records = degraded_rows
    for record in records:
        faults = record.spec.faults_dict()
        has_counters = any(k.startswith("fault_") for k in record.extras)
        assert has_counters == bool(faults), record.spec.key
        if faults.get("loss_rate"):
            assert record.extras["fault_dropped_loss"] > 0, record.spec.key


def test_report_table(degraded_rows, record_table, benchmark):
    rows, _ = degraded_rows
    record_table("degraded_networks", rows,
                 "Degraded networks — loss, churn and heavy-tailed delays")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
