"""Ablation — the quorum size d trades reliability against communication.

DESIGN.md (§5, item 2): the paper only prescribes ``d = Θ(log n)``; the
constant in front decides both the failure probability of the w.h.p. claims
and the (cubic-in-d) message cost of the pull phase.  This ablation sweeps
the quorum multiplier at fixed ``n`` and reports the fraction of correct
nodes that decide ``gstring`` and the amortized cost, showing why the default
multiplier of 2 is a sensible middle ground.

The grid runs through the ``ablation_quorum`` report section's plan, so this
benchmark and the EXPERIMENTS.md section share one row source.
"""

from __future__ import annotations

import pytest

from repro.report.sections import ABLATION_QUORUM

N = 64
MULTIPLIERS = [1.0, 2.0, 3.0]
SEEDS = [0, 1, 2]

PLAN = ABLATION_QUORUM.plan_for(N, seeds=SEEDS, multipliers=MULTIPLIERS)


@pytest.fixture(scope="module")
def ablation_rows(run_plan):
    sweep = run_plan(PLAN)
    per_record = [ABLATION_QUORUM.record_row(record) for record in sweep.records]
    means = []
    for multiplier in MULTIPLIERS:
        group = [row for row in per_record if row["quorum_multiplier"] == multiplier]
        means.append({
            "quorum_multiplier": multiplier,
            "mean_reach": round(sum(row["reach"] for row in group) / len(group), 4),
            "mean_amortized_bits": round(
                sum(row["amortized_bits"] for row in group) / len(group), 1
            ),
        })
    return per_record, means


def test_benchmark_default_multiplier(benchmark):
    spec = next(
        s for s in PLAN.specs() if s.quorum_multiplier == 2.0 and s.seed == SEEDS[0]
    )
    result = benchmark.pedantic(spec.run, rounds=1, iterations=1)
    assert result.extras["decided_gstring"] > 0.95


def test_bigger_quorums_cost_more(ablation_rows):
    _, means = ablation_rows
    costs = [row["mean_amortized_bits"] for row in means]
    assert costs == sorted(costs)
    assert costs[-1] > 2 * costs[0]


def test_default_multiplier_reaches_everyone(ablation_rows):
    _, means = ablation_rows
    by_multiplier = {row["quorum_multiplier"]: row for row in means}
    assert by_multiplier[2.0]["mean_reach"] >= 0.99
    assert by_multiplier[3.0]["mean_reach"] >= 0.99
    # the small-quorum configuration is allowed to degrade (that is the point)
    assert by_multiplier[1.0]["mean_reach"] <= by_multiplier[2.0]["mean_reach"] + 1e-9


def test_report_table(ablation_rows, record_table, benchmark):
    _, means = ablation_rows
    record_table("ablation_quorum_size", means,
                 "Ablation — quorum size multiplier vs reach and cost (n=64)")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
