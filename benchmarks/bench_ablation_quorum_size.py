"""Ablation — the quorum size d trades reliability against communication.

DESIGN.md (§5, item 2): the paper only prescribes ``d = Θ(log n)``; the
constant in front decides both the failure probability of the w.h.p. claims
and the (cubic-in-d) message cost of the pull phase.  This ablation sweeps
the quorum multiplier at fixed ``n`` and reports the fraction of correct
nodes that decide ``gstring`` and the amortized cost, showing why the default
multiplier of 2 is a sensible middle ground.
"""

from __future__ import annotations

import pytest

from repro.runner import run_aer_experiment

N = 64
MULTIPLIERS = [1.0, 2.0, 3.0]
SEEDS = [0, 1, 2]


def reach_and_cost(multiplier: float):
    reach_total, cost_total = 0.0, 0.0
    for seed in SEEDS:
        result = run_aer_experiment(
            n=N, adversary_name="wrong_answer", seed=seed, quorum_multiplier=multiplier
        )
        values = list(result.decisions.values())
        gstring = max(set(values), key=values.count) if values else None
        reach_total += result.fraction_decided(gstring) if gstring else 0.0
        cost_total += result.metrics.amortized_bits
    return reach_total / len(SEEDS), cost_total / len(SEEDS)


@pytest.fixture(scope="module")
def ablation_rows():
    rows = []
    for multiplier in MULTIPLIERS:
        reach, cost = reach_and_cost(multiplier)
        rows.append({
            "quorum_multiplier": multiplier,
            "mean_reach": round(reach, 4),
            "mean_amortized_bits": round(cost, 1),
        })
    return rows


def test_benchmark_default_multiplier(benchmark):
    reach, cost = benchmark.pedantic(lambda: reach_and_cost(2.0), rounds=1, iterations=1)
    assert reach > 0.95


def test_bigger_quorums_cost_more(ablation_rows):
    costs = [row["mean_amortized_bits"] for row in ablation_rows]
    assert costs == sorted(costs)
    assert costs[-1] > 2 * costs[0]


def test_default_multiplier_reaches_everyone(ablation_rows):
    by_multiplier = {row["quorum_multiplier"]: row for row in ablation_rows}
    assert by_multiplier[2.0]["mean_reach"] >= 0.99
    assert by_multiplier[3.0]["mean_reach"] >= 0.99
    # the small-quorum configuration is allowed to degrade (that is the point)
    assert by_multiplier[1.0]["mean_reach"] <= by_multiplier[2.0]["mean_reach"] + 1e-9


def test_report_table(ablation_rows, record_table, benchmark):
    record_table("ablation_quorum_size", ablation_rows,
                 "Ablation — quorum size multiplier vs reach and cost (n=64)")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
