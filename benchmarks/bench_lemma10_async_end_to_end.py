"""Lemma 10 — asynchronous end-to-end: O(log n / log log n) time, O~(n) messages.

Reproduction: sweep ``n`` under the asynchronous scheduler with the
delay-maximising (but traffic-free) adversary `slow_knowledgeable` and with a
benign random-delay network, and report the normalized completion time and
the total messages per node.  Shape assertions: the span grows far slower
than ``n`` and stays within a small constant of the ``log n / log log n``
reference; messages per node grow sub-linearly.

The sweep runs as an :class:`repro.experiments.ExperimentPlan` on the
parallel sweep subsystem (one worker per grid point); the plan and the table
rows come from the ``lemma10`` report section, so this benchmark and the
corresponding EXPERIMENTS.md section share one row source.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.complexity import growth_exponent
from repro.report.sections import LEMMA10
from repro.runner import run_aer_experiment

SIZES = [32, 64, 96]
SEED = 8

PLAN = LEMMA10.plan_for(SIZES, seeds=(SEED,))


@pytest.fixture(scope="module")
def lemma10_rows(run_plan):
    sweep = run_plan(PLAN)
    rows = [LEMMA10.record_row(record) for record in sweep.records]
    spans = [record.span or 0.0 for record in sweep.records]
    messages = [record.total_messages / record.spec.n for record in sweep.records]
    return rows, spans, messages


def test_benchmark_single_async_run(benchmark):
    result = benchmark.pedantic(
        lambda: run_aer_experiment(n=64, adversary_name="slow_knowledgeable", mode="async", seed=SEED),
        rounds=1, iterations=1,
    )
    assert result.span is not None


def test_span_grows_slowly(lemma10_rows):
    _, spans, _ = lemma10_rows
    assert growth_exponent(SIZES, spans) < 0.5
    assert max(spans) <= 5 * (math.log2(SIZES[-1]) / math.log2(math.log2(SIZES[-1])))


def test_messages_per_node_sublinear(lemma10_rows):
    _, _, messages = lemma10_rows
    assert growth_exponent(SIZES, messages) < 0.85


def test_essentially_everyone_decides(lemma10_rows):
    rows, _, _ = lemma10_rows
    assert all(row["decided_fraction"] >= 0.95 for row in rows)


def test_report_table(lemma10_rows, record_table, benchmark):
    rows, _, _ = lemma10_rows
    record_table("lemma10_async_end_to_end", rows,
                 "Lemma 10 — asynchronous end-to-end time and messages")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
