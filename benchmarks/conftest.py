"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table, figure or quantitative lemma of
the paper (see DESIGN.md's per-experiment index).  The pattern is always the
same:

* a module-scoped fixture runs the sweep once and builds the rows;
* the ``test_*`` functions assert the qualitative *shape* the paper claims
  (who wins, how quantities grow) — never absolute numbers;
* one of them times a representative single run through the ``benchmark``
  fixture so ``pytest benchmarks/ --benchmark-only`` also yields wall-clock
  numbers;
* the formatted table is appended to ``benchmarks/results/`` and echoed to
  stdout; the claims also covered by a report section print rows built by
  that section's ``record_row``, so the pytest output and the generated
  EXPERIMENTS.md (``python -m repro report``) share one row source.

Grid-shaped benchmarks (one run per point of an ``n × adversary × mode ×
seed`` grid) declare an :class:`repro.experiments.ExperimentPlan` and run it
through the ``run_plan`` fixture, which fans the grid across worker
processes via :class:`repro.experiments.SweepRunner` — set ``BENCH_JOBS=1``
to force serial execution (e.g. when profiling a benchmark).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.analysis.experiments import format_table
from repro.experiments import ExperimentPlan, SweepResult, SweepRunner

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory collecting the printed tables of every benchmark run."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def run_plan():
    """Return a helper running an :class:`ExperimentPlan` on the sweep subsystem.

    ``BENCH_JOBS`` (env) pins the worker count; the default lets the runner
    pick ``min(cpu_count, len(plan))``.
    """

    def _run(plan: ExperimentPlan, jobs=None) -> SweepResult:
        if jobs is None:
            env_jobs = int(os.environ.get("BENCH_JOBS", "0"))
            jobs = env_jobs or None
        return SweepRunner(plan, jobs=jobs).run()

    return _run


@pytest.fixture(scope="session")
def record_table(results_dir):
    """Return a helper that prints a table and appends it to the results directory."""

    def _record(name: str, rows, title: str) -> str:
        text = format_table(rows, title=title)
        print("\n" + text)
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return text

    return _record
