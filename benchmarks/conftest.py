"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table, figure or quantitative lemma of
the paper (see DESIGN.md's per-experiment index).  The pattern is always the
same:

* a module-scoped fixture runs the sweep once and builds the rows;
* the ``test_*`` functions assert the qualitative *shape* the paper claims
  (who wins, how quantities grow) — never absolute numbers;
* one of them times a representative single run through the ``benchmark``
  fixture so ``pytest benchmarks/ --benchmark-only`` also yields wall-clock
  numbers;
* the formatted table is appended to ``benchmarks/results/`` and echoed to
  stdout so it can be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.experiments import format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory collecting the printed tables of every benchmark run."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record_table(results_dir):
    """Return a helper that prints a table and appends it to the results directory."""

    def _record(name: str, rows, title: str) -> str:
        text = format_table(rows, title=title)
        print("\n" + text)
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return text

    return _record
