"""Ablation — how much of the asynchronous slowdown is scheduling vs Byzantine traffic.

DESIGN.md (§5, item 1): the asynchronous bound of Lemma 6 combines two
adversarial powers — message scheduling (delays) and Byzantine traffic
(overload).  This ablation runs the same scenario under four regimes to
attribute the slowdown:

* benign random delays, no adversary;
* worst-case delays only (`slow_knowledgeable`, no Byzantine traffic);
* overload traffic only (cornering with delays disabled);
* the full cornering attack (traffic + delays).
"""

from __future__ import annotations

import pytest

from repro.adversary.cornering import CorneringAdversary
from repro.adversary.base import AdversaryKnowledge
from repro.core.config import AERConfig
from repro.core.scenario import make_scenario
from repro.runner import make_adversary, run_aer

N = 64
SEED = 12


@pytest.fixture(scope="module")
def scheduler_rows():
    config = AERConfig.for_system(N, sampler_seed=SEED)
    scenario = make_scenario(N, config=config, t=N // 6, knowledge_fraction=0.78, seed=SEED)
    samplers = config.build_samplers()
    knowledge = AdversaryKnowledge(config=config, samplers=samplers, scenario=scenario)

    regimes = {
        "random delays, no adversary": None,
        "worst-case delays only": make_adversary("slow_knowledgeable", scenario, config, samplers),
        "overload traffic only": CorneringAdversary(
            scenario.byzantine_ids, knowledge, delay_honest=False
        ),
        "overload + worst-case delays": make_adversary("cornering", scenario, config, samplers),
    }
    rows = []
    for label, adversary in regimes.items():
        result = run_aer(
            scenario, config=config, adversary=adversary, mode="async", seed=SEED, samplers=samplers
        )
        rows.append({
            "regime": label,
            "span": round(result.span or -1, 2),
            "amortized_bits": round(result.metrics.amortized_bits, 1),
            "reach": round(result.fraction_decided(scenario.gstring), 4),
        })
    return rows


def test_benchmark_full_attack(benchmark):
    result = benchmark.pedantic(
        lambda: run_aer(
            make_scenario(N, config=AERConfig.for_system(N, sampler_seed=SEED),
                          t=N // 6, knowledge_fraction=0.78, seed=SEED),
            config=AERConfig.for_system(N, sampler_seed=SEED),
            adversary_name="cornering", mode="async", seed=SEED,
        ),
        rounds=1, iterations=1,
    )
    assert result.span is not None


def test_delays_dominate_the_slowdown(scheduler_rows):
    by_regime = {row["regime"]: row for row in scheduler_rows}
    benign = by_regime["random delays, no adversary"]["span"]
    delays_only = by_regime["worst-case delays only"]["span"]
    full = by_regime["overload + worst-case delays"]["span"]
    assert delays_only >= benign
    assert full >= delays_only * 0.9  # the full attack is at least as slow as delays alone


def test_traffic_only_regime_adds_bits_not_time(scheduler_rows):
    by_regime = {row["regime"]: row for row in scheduler_rows}
    assert (
        by_regime["overload traffic only"]["amortized_bits"]
        > by_regime["random delays, no adversary"]["amortized_bits"]
    )


def test_reach_stays_high_everywhere(scheduler_rows):
    assert all(row["reach"] >= 0.9 for row in scheduler_rows)


def test_report_table(scheduler_rows, record_table, benchmark):
    record_table("ablation_scheduler", scheduler_rows,
                 "Ablation — scheduling power vs Byzantine traffic (n=64, async)")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
