"""Ablation — how much of the asynchronous slowdown is scheduling vs Byzantine traffic.

DESIGN.md (§5, item 1): the asynchronous bound of Lemma 6 combines two
adversarial powers — message scheduling (delays) and Byzantine traffic
(overload).  This ablation runs the same scenario under four regimes to
attribute the slowdown:

* benign random delays, no adversary;
* worst-case delays only (`slow_knowledgeable`, no Byzantine traffic);
* overload traffic only (`cornering_nodelay`: cornering with delays disabled);
* the full cornering attack (traffic + delays).

Every regime is addressable by adversary registry name, so the grid runs
through the ``ablation_scheduler`` report section's plan — one row source
with EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.report.sections import ABLATION_SCHEDULER

N = 64
SEED = 12

PLAN = ABLATION_SCHEDULER.plan_for(N, seeds=(SEED,))


@pytest.fixture(scope="module")
def scheduler_rows(run_plan):
    sweep = run_plan(PLAN)
    return [ABLATION_SCHEDULER.record_row(record) for record in sweep.records]


def test_benchmark_full_attack(benchmark):
    spec = next(s for s in PLAN.specs() if s.adversary == "cornering")
    result = benchmark.pedantic(spec.run, rounds=1, iterations=1)
    assert result.span is not None


def test_delays_dominate_the_slowdown(scheduler_rows):
    by_regime = {row["regime"]: row for row in scheduler_rows}
    benign = by_regime["random delays, no adversary"]["span"]
    delays_only = by_regime["worst-case delays only"]["span"]
    full = by_regime["overload + worst-case delays"]["span"]
    assert delays_only >= benign
    assert full >= delays_only * 0.9  # the full attack is at least as slow as delays alone


def test_traffic_only_regime_adds_bits_not_time(scheduler_rows):
    by_regime = {row["regime"]: row for row in scheduler_rows}
    assert (
        by_regime["overload traffic only"]["amortized_bits"]
        > by_regime["random delays, no adversary"]["amortized_bits"]
    )


def test_reach_stays_high_everywhere(scheduler_rows):
    assert all(row["reach"] >= 0.9 for row in scheduler_rows)


def test_report_table(scheduler_rows, record_table, benchmark):
    record_table("ablation_scheduler", scheduler_rows,
                 "Ablation — scheduling power vs Byzantine traffic (n=64, async)")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
