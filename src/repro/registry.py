"""A tiny named-registry primitive shared by every pluggable surface.

The public API of the repo is organised around *registries*: protocols,
adversary strategies, delay policies and scenario generators are all
addressable by name, and all of them register through the same mechanism so
that user extensions look exactly like the built-ins::

    from repro.adversary.registry import register_adversary

    @register_adversary("my_attack")
    class MyAttack(Adversary):
        ...

A :class:`Registry` is deliberately dumb — a named dict with decorator
support and helpful error messages.  It lives at the very bottom of the
layer stack (it imports nothing from the package) so every layer may use it
without creating import cycles.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple, TypeVar

T = TypeVar("T")


class Registry:
    """A mapping from names to registered objects, with decorator support.

    Parameters
    ----------
    kind:
        Human-readable description of what is being registered (``"protocol"``,
        ``"adversary"``, ...), used in error messages.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._items: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self, name: str, obj: Optional[T] = None, *, replace: bool = False
    ) -> Callable[[T], T]:
        """Register ``obj`` under ``name``; usable directly or as a decorator.

        Direct form: ``registry.register("none", factory)``.
        Decorator form::

            @registry.register("silent")
            class SilentAdversary: ...

        Registering a name twice raises ``ValueError`` unless ``replace=True``
        (tests use ``replace`` to shadow a built-in temporarily).
        """

        def _add(value: T) -> T:
            if not replace and name in self._items:
                raise ValueError(
                    f"{self.kind} {name!r} is already registered; "
                    f"pass replace=True to override it"
                )
            self._items[name] = value
            return value

        if obj is None:
            return _add
        return _add(obj)  # type: ignore[return-value]

    def unregister(self, name: str) -> None:
        """Remove a registration (primarily for test isolation)."""
        self._items.pop(name, None)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> object:
        """Return the object registered under ``name`` or raise ``ValueError``."""
        try:
            return self._items[name]
        except KeyError:
            known = ", ".join(sorted(self._items)) or "(nothing registered)"
            raise ValueError(
                f"unknown {self.kind} {name!r}; registered: {known}"
            ) from None

    def names(self) -> List[str]:
        """Sorted list of registered names."""
        return sorted(self._items)

    def items(self) -> List[Tuple[str, object]]:
        """``(name, object)`` pairs, sorted by name."""
        return sorted(self._items.items())

    @property
    def mapping(self) -> Mapping[str, object]:
        """A read-only live view of the registry (for legacy dict-style access)."""
        return MappingProxyType(self._items)

    def __contains__(self, name: object) -> bool:
        return name in self._items

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {self.names()})"
