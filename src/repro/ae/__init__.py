"""Almost-everywhere agreement substrate (in the style of [KSSV06]).

The paper uses the protocol of King, Saia, Sanwalani and Vee (FOCS'06) as a
black box: it brings *most* correct nodes (all but a ``O(1/log n)`` fraction)
to share a common, mostly random string ``gstring`` of length ``c log n``,
at poly-logarithmic communication cost per node.  AER then finishes the job,
turning almost-everywhere knowledge into everywhere knowledge.

This package provides a simplified but runnable committee-tree protocol with
the same interface guarantee (see DESIGN.md, "Substitutions"):

* nodes are partitioned into leaf committees of size ``Θ(log n)`` and a
  binary committee tree is built above them, with internal committees drawn
  by a public sampler;
* the *root committee* generates the random string with a two-round
  contribute-and-echo coin protocol (each member contributes private random
  bits; echo + coordinate-wise majority makes every correct member compute
  the same XOR even under equivocation);
* the string is then disseminated down the tree, each committee relaying to
  its children and each node adopting the value reported by a majority of
  the relaying committee.

Per-node cost is ``O(log² n)`` strings of ``O(log n)`` bits — poly-log — and
a node fails to learn ``gstring`` only if some committee on its leaf-to-root
path has a corrupt majority, which for random corruption of ``t < n/3`` nodes
affects a vanishing fraction of nodes.  The benchmarks measure both claims.
"""

from repro.ae.committees import Committee, CommitteeTree
from repro.ae.config import AEConfig
from repro.ae.protocol import AENode, build_ae_nodes, scenario_from_ae_run
from repro.ae.coin import combine_contributions, majority_string

__all__ = [
    "Committee",
    "CommitteeTree",
    "AEConfig",
    "AENode",
    "build_ae_nodes",
    "scenario_from_ae_run",
    "combine_contributions",
    "majority_string",
]
