"""Committee tree construction.

Nodes are partitioned into leaf committees of (roughly) ``committee_size``
members each; a balanced binary tree is built above the leaves, and each
internal tree node is assigned a committee of ``committee_size`` nodes drawn
by a public keyed hash from the whole population.  Every node can therefore
compute every committee locally, which mirrors the shared-sampler assumption
the rest of the system already makes.

The tree provides two things to the protocol in :mod:`repro.ae.protocol`:

* the *root committee*, which generates the random string;
* the *dissemination structure*: each committee relays the string to its two
  children, so a node's knowledge only depends on the committees along its
  leaf-to-root path having correct majorities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ae.config import AEConfig
from repro.net.rng import stable_hash


@dataclass(frozen=True)
class Committee:
    """One committee in the tree.

    Attributes
    ----------
    index:
        Position in the heap-style numbering of the tree (0 is the root).
    members:
        The node identities forming the committee.
    depth:
        Distance from the root (root has depth 0).
    """

    index: int
    members: Tuple[int, ...]
    depth: int

    @property
    def size(self) -> int:
        """Number of members."""
        return len(self.members)

    def majority_threshold(self) -> int:
        """Smallest count that is "more than half" of the committee."""
        return self.size // 2 + 1


class CommitteeTree:
    """The full committee tree for a system of ``n`` nodes.

    The tree is heap-numbered: committee ``i`` has children ``2i + 1`` and
    ``2i + 2``; leaves occupy the last ``leaf_count`` indices.  Leaf
    committees partition ``[0, n)``; internal committees are sampled with the
    public keyed hash, so they may overlap each other and the leaves.
    """

    def __init__(self, config: AEConfig) -> None:
        self.config = config
        n, k = config.n, config.committee_size
        self.leaf_count = max(1, (n + k - 1) // k)
        # Round the leaf count down to keep the tree a complete binary tree
        # shape: internal nodes are every index < leaf_count - 1.
        self.total_committees = 2 * self.leaf_count - 1
        self._committees: Dict[int, Committee] = {}
        self._memberships: Optional[Dict[int, List[int]]] = None

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def is_leaf(self, index: int) -> bool:
        """Whether committee ``index`` is a leaf of the tree."""
        return index >= self.leaf_count - 1

    def children(self, index: int) -> Tuple[int, ...]:
        """Indices of the children committees (empty for leaves)."""
        if self.is_leaf(index):
            return ()
        left, right = 2 * index + 1, 2 * index + 2
        return tuple(child for child in (left, right) if child < self.total_committees)

    def parent(self, index: int) -> Optional[int]:
        """Index of the parent committee (``None`` for the root)."""
        if index == 0:
            return None
        return (index - 1) // 2

    def depth(self, index: int) -> int:
        """Distance of committee ``index`` from the root."""
        depth = 0
        while index != 0:
            index = (index - 1) // 2
            depth += 1
        return depth

    @property
    def height(self) -> int:
        """Depth of the deepest committee."""
        return self.depth(self.total_committees - 1)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def committee(self, index: int) -> Committee:
        """Return committee ``index`` (leaf partition slice or sampled internal committee)."""
        if not 0 <= index < self.total_committees:
            raise ValueError(f"committee index {index} out of range")
        cached = self._committees.get(index)
        if cached is not None:
            return cached

        n, k = self.config.n, self.config.committee_size
        if self.is_leaf(index):
            leaf_rank = index - (self.leaf_count - 1)
            members = tuple(
                node for node in range(leaf_rank * k, min(n, (leaf_rank + 1) * k))
            )
            if not members:  # can only happen when n < leaf_count * k with tiny n
                members = (n - 1,)
        else:
            members_list: List[int] = []
            seen = set()
            counter = 0
            while len(members_list) < min(k, n):
                candidate = stable_hash(self.config.seed, "ae-committee", index, counter) % n
                counter += 1
                if candidate not in seen:
                    seen.add(candidate)
                    members_list.append(candidate)
            members = tuple(sorted(members_list))

        committee = Committee(index=index, members=members, depth=self.depth(index))
        self._committees[index] = committee
        return committee

    @property
    def root(self) -> Committee:
        """The root committee — the one that generates the random string."""
        return self.committee(0)

    def memberships_of(self, node_id: int) -> List[int]:
        """Indices of all committees the node belongs to (at most a handful)."""
        if self._memberships is None:
            table: Dict[int, List[int]] = {i: [] for i in range(self.config.n)}
            for index in range(self.total_committees):
                for member in self.committee(index).members:
                    table[member].append(index)
            self._memberships = table
        return self._memberships.get(node_id, [])

    def leaf_of(self, node_id: int) -> int:
        """Index of the leaf committee containing ``node_id``."""
        leaf_rank = min(node_id // self.config.committee_size, self.leaf_count - 1)
        return (self.leaf_count - 1) + leaf_rank

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    def bad_committees(self, byzantine_ids) -> List[int]:
        """Committees in which the corrupt members are not a minority."""
        byz = set(byzantine_ids)
        bad = []
        for index in range(self.total_committees):
            committee = self.committee(index)
            corrupt = sum(1 for member in committee.members if member in byz)
            if corrupt * 2 >= committee.size:
                bad.append(index)
        return bad
