"""The almost-everywhere agreement protocol itself.

Synchronous round schedule (messages sent in round ``r`` arrive in ``r + 1``):

========= ====================================================================
round 0   root-committee members send their private random *contributions*
          to the rest of the root committee
round 2   root-committee members *echo* the contribution vector they received
round 4   root-committee members combine the majority-echoed contributions
          into ``gstring`` (XOR) and start *relaying* it to the root's child
          committees
round ≥5  dissemination cascades reactively: a node that sees the same value
          relayed by a majority of a parent committee adopts it and relays it
          to the children of its own committee(s)
========= ====================================================================

The protocol is synchronous by design — the paper itself notes that no
efficient *asynchronous* almost-everywhere agreement protocol is known
(Section 5), and its BA composition implicitly runs this phase synchronously.

The outcome of a run is read off the node objects (:attr:`AENode.learned`)
and converted into an :class:`~repro.core.scenario.AERScenario` by
:func:`scenario_from_ae_run`, which is exactly the composition performed by
:class:`repro.core.ba.BAProtocol`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Set, Tuple

from repro.ae.coin import combine_contributions, majority_string
from repro.ae.committees import CommitteeTree
from repro.ae.config import AEConfig
from repro.ae.messages import ContributionMessage, EchoMessage, RelayMessage
from repro.core.scenario import AERScenario
from repro.net.messages import Message
from repro.net.node import Node
from repro.net.rng import random_bitstring

#: round at which root members echo the contributions they received
ECHO_ROUND = 2
#: round at which root members finalise the string and start disseminating
FINALIZE_ROUND = 4


class AENode(Node):
    """A correct participant of the committee-tree almost-everywhere protocol."""

    def __init__(self, node_id: int, config: AEConfig, tree: CommitteeTree) -> None:
        super().__init__(node_id)
        self.config = config
        self.tree = tree
        #: the string this node has learned, or ``None``
        self.learned: Optional[str] = None

        self._is_root_member = node_id in tree.root.members
        self._own_contribution: Optional[str] = None
        #: contributions received directly (origin -> bits)
        self._contributions: Dict[int, str] = {}
        #: echoed views received (echoer -> {origin: bits})
        self._echoes: Dict[int, Dict[int, str]] = {}
        #: relay votes: (parent committee index, value) -> set of senders
        self._relay_votes: Dict[Tuple[int, str], Set[int]] = {}
        #: committees this node has already relayed for
        self._relayed_for: Set[int] = set()

    # ------------------------------------------------------------------
    # coin protocol (root committee only)
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        if not self._is_root_member:
            return
        self._own_contribution = random_bitstring(self.context.rng, self.config.string_length)
        self._contributions[self.node_id] = self._own_contribution
        message = ContributionMessage(bits_value=self._own_contribution)
        for member in self.tree.root.members:
            if member != self.node_id:
                self.send(member, message)

    def on_round(self, round_no: int) -> None:
        if not self._is_root_member:
            return
        if round_no == ECHO_ROUND:
            view = tuple(sorted(self._contributions.items()))
            message = EchoMessage(view=view)
            for member in self.tree.root.members:
                if member != self.node_id:
                    self.send(member, message)
        elif round_no == FINALIZE_ROUND:
            self._finalize_coin()

    def _finalize_coin(self) -> None:
        """Combine majority-echoed contributions into the committee string and relay it."""
        root = self.tree.root
        threshold = root.majority_threshold()
        # Every member's own view counts as one echo.
        views: List[Dict[int, str]] = [dict(self._contributions)]
        views.extend(self._echoes.values())

        agreed: Dict[int, str] = {}
        for origin in root.members:
            reported = [view.get(origin) for view in views if view.get(origin) is not None]
            value = majority_string(reported, threshold=threshold)
            if value is not None:
                agreed[origin] = value
        gstring = combine_contributions(agreed, self.config.string_length)
        self._adopt(gstring)
        self._relay_from(0, gstring)

    # ------------------------------------------------------------------
    # dissemination
    # ------------------------------------------------------------------
    def _adopt(self, value: str) -> None:
        if self.learned is None:
            self.learned = value
            self.decide(value)

    def _relay_from(self, committee_index: int, value: str) -> None:
        """Relay ``value`` to the children of ``committee_index`` (once per committee)."""
        if committee_index in self._relayed_for:
            return
        if self.node_id not in self.tree.committee(committee_index).members:
            return
        self._relayed_for.add(committee_index)
        message = RelayMessage(committee_index=committee_index, value=value)
        for child_index in self.tree.children(committee_index):
            for member in self.tree.committee(child_index).members:
                if member != self.node_id:
                    self.send(member, message)
                else:
                    # A node sampled into both parent and child adopts directly.
                    self._on_relay_accepted(child_index, value)

    def _on_relay_accepted(self, committee_index: int, value: str) -> None:
        """The node, as a member of ``committee_index``, accepted ``value`` from its parent."""
        self._adopt(value)
        if not self.tree.is_leaf(committee_index):
            self._relay_from(committee_index, value)

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------
    def on_message(self, sender: int, message: Message) -> None:
        if isinstance(message, ContributionMessage):
            if self._is_root_member and sender in self.tree.root.members:
                # Only the first claim from each member is kept (authenticated channel).
                self._contributions.setdefault(sender, message.bits_value)
        elif isinstance(message, EchoMessage):
            if self._is_root_member and sender in self.tree.root.members:
                self._echoes.setdefault(sender, dict(message.view))
        elif isinstance(message, RelayMessage):
            self._on_relay(sender, message)

    def _on_relay(self, sender: int, message: RelayMessage) -> None:
        parent_index = message.committee_index
        parent = self.tree.committee(parent_index)
        if sender not in parent.members:
            return
        children = self.tree.children(parent_index)
        my_children = [
            child for child in children
            if self.node_id in self.tree.committee(child).members
        ]
        if not my_children:
            return
        key = (parent_index, message.value)
        votes = self._relay_votes.setdefault(key, set())
        votes.add(sender)
        if len(votes) >= parent.majority_threshold():
            for child_index in my_children:
                self._on_relay_accepted(child_index, message.value)


def build_ae_nodes(
    config: AEConfig,
    byzantine_ids,
    tree: Optional[CommitteeTree] = None,
) -> List[AENode]:
    """Construct the correct-node population for the almost-everywhere protocol."""
    if tree is None:
        tree = CommitteeTree(config)
    byz = set(byzantine_ids)
    return [
        AENode(node_id=node_id, config=config, tree=tree)
        for node_id in range(config.n)
        if node_id not in byz
    ]


def scenario_from_ae_run(
    nodes: List[AENode],
    n: int,
    byzantine_ids,
    string_length: int,
) -> AERScenario:
    """Convert a finished almost-everywhere run into an AER input scenario.

    ``gstring`` is taken to be the value learned by the plurality of correct
    nodes; nodes that learned nothing (their leaf-to-root path crossed a bad
    committee) start AER with the all-zeros default candidate, exactly the
    "set to a default value" case the paper allows for ``s_x``.

    The returned scenario is *not* validated here: whether the
    almost-everywhere phase achieved the ``> 1/2`` knowledge precondition is
    itself an experimental outcome that the BA benchmarks report.
    """
    learned_values = [node.learned for node in nodes if node.learned is not None]
    counter = Counter(learned_values)
    if counter:
        gstring = sorted(counter.items(), key=lambda item: (-item[1], item[0]))[0][0]
    else:
        gstring = "0" * string_length

    default = "0" * string_length
    candidates = {
        node.node_id: node.learned if node.learned is not None else default
        for node in nodes
    }
    return AERScenario(
        n=n,
        gstring=gstring,
        byzantine_ids=frozenset(byzantine_ids),
        candidates=candidates,
    )
