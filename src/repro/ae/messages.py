"""Wire messages of the almost-everywhere agreement substrate."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.net.messages import Message, SizeModel


@dataclass(frozen=True, slots=True)
class ContributionMessage(Message):
    """Round 0 of the root-committee coin protocol: a member's private random bits."""

    bits_value: str
    kind: str = "ae-contribution"

    def bits(self, size_model: SizeModel) -> int:
        return size_model.kind_bits + len(self.bits_value)


@dataclass(frozen=True, slots=True)
class EchoMessage(Message):
    """Round 2 of the coin protocol: the vector of contributions a member received.

    ``view`` is a tuple of ``(origin, bits)`` pairs; its wire cost is one node
    id plus one string per entry.
    """

    view: Tuple[Tuple[int, str], ...]
    kind: str = "ae-echo"

    def bits(self, size_model: SizeModel) -> int:
        payload = sum(size_model.id_bits + len(bits) for _, bits in self.view)
        return size_model.kind_bits + payload


@dataclass(frozen=True, slots=True)
class RelayMessage(Message):
    """Dissemination: a committee member relays the agreed string to a child committee."""

    committee_index: int
    value: str
    kind: str = "ae-relay"

    def bits(self, size_model: SizeModel) -> int:
        return size_model.kind_bits + size_model.id_bits + len(self.value)
