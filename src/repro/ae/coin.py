"""String-combination helpers used by the committee coin protocol.

The root committee's coin protocol (see :mod:`repro.ae.protocol`) needs two
operations: combining per-member random contributions into one string whose
bits the adversary cannot fully control (XOR), and collapsing conflicting
reports of the same value into the majority/plurality report.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Optional, Sequence


def xor_strings(a: str, b: str) -> str:
    """Bitwise XOR of two equal-length bit strings (``"0"``/``"1"`` characters)."""
    if len(a) != len(b):
        raise ValueError("cannot XOR bit strings of different lengths")
    return "".join("1" if bit_a != bit_b else "0" for bit_a, bit_b in zip(a, b))


def combine_contributions(contributions: Dict[int, str], length: int) -> str:
    """XOR all contributions together (missing/garbled ones are skipped).

    As long as *one* contributor was correct and its bits were uniformly
    random and unknown to the others when they chose theirs, the XOR has
    uniformly random bits — this is the standard argument for committee coin
    flipping, and the reason Lemma 5 only needs ``2/3 + ε`` of ``gstring``'s
    bits to be random (a rushing minority can correlate its own share).
    """
    result = "0" * length
    for origin in sorted(contributions):
        value = contributions[origin]
        if isinstance(value, str) and len(value) == length and set(value) <= {"0", "1"}:
            result = xor_strings(result, value)
    return result


def majority_string(values: Iterable[str], threshold: Optional[int] = None) -> Optional[str]:
    """Return the value reported by at least ``threshold`` reporters, if any.

    With ``threshold=None`` the plurality value is returned (ties broken by
    lexicographic order for determinism); with an explicit threshold the
    function returns ``None`` unless some value reaches it.
    """
    counter = Counter(v for v in values if v is not None)
    if not counter:
        return None
    best_count = max(counter.values())
    if threshold is not None and best_count < threshold:
        return None
    best_values = sorted(value for value, count in counter.items() if count == best_count)
    return best_values[0]


def fraction_agreeing(values: Sequence[str], target: str) -> float:
    """Fraction of the given values equal to ``target`` (0 for an empty sequence)."""
    if not values:
        return 0.0
    return sum(1 for value in values if value == target) / len(values)
