"""Parameters of the almost-everywhere agreement substrate."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.samplers.base import default_string_length


@dataclass(frozen=True)
class AEConfig:
    """Tunables of the committee-tree protocol.

    Attributes
    ----------
    n:
        System size.
    committee_size:
        Number of members per committee, ``Θ(log n)``; forced odd so that
        majority votes never tie.
    string_length:
        Length of the generated ``gstring`` (must match the AER configuration
        it will be composed with).
    seed:
        Public seed of the committee sampler.
    """

    n: int
    committee_size: int
    string_length: int
    seed: int = 0

    @staticmethod
    def for_system(
        n: int,
        seed: int = 0,
        committee_multiplier: float = 2.0,
        string_multiplier: int = 4,
    ) -> "AEConfig":
        """Default parameters: committees of ``≈ 2 log₂ n`` nodes, ``4 log₂ n``-bit strings."""
        size = max(5, int(math.ceil(committee_multiplier * math.log2(max(2, n)))))
        if size % 2 == 0:
            size += 1
        return AEConfig(
            n=n,
            committee_size=min(size, n),
            string_length=default_string_length(n, multiplier=string_multiplier),
            seed=seed,
        )
