"""Trace subsystem: typed probes in the kernel and engines, condensed per run.

The sixth registry-backed subsystem of the architecture (see ARCHITECTURE.md):
protocol engines and the event kernel emit *typed probe events*
(``phase_started``, ``push_sent``, ``candidate_added``, ``poll_answered``,
``budget_exhausted``, ...); a :class:`TraceCollector` attached to the
:class:`~repro.net.kernel.EventKernel` aggregates them with the same batched,
no-per-message-object discipline as the metrics collector, and condenses them
into a JSON-friendly :class:`TraceSummary` that rides along on
``RunResult.trace`` / ``ExperimentRecord.trace`` through sweep files and into
the report sections for Lemmas 3-5 and the ablations.

Tracing is opt-in per experiment spec (``trace="off" | "summary" | "full"``,
default ``"off"``) and the disabled path is guaranteed free: no collector is
constructed, every probe site is a ``None`` check, and the golden-seed
equivalence tests pin byte-identical results.
"""

from repro.trace.collector import (
    TRACE_MODES,
    TraceCollector,
    TraceSummary,
    collector_for_spec,
)
from repro.trace.probes import PROBE_POINTS, ProbePoint, get_probe, register_probe

__all__ = [
    "TRACE_MODES",
    "TraceCollector",
    "TraceSummary",
    "collector_for_spec",
    "PROBE_POINTS",
    "ProbePoint",
    "get_probe",
    "register_probe",
]
