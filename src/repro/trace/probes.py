"""The typed probe points of the trace subsystem.

A *probe point* is a named event site inside the protocol engines or the
event kernel.  The set of probe points is closed and typed: every probe has
a declared field tuple, and :meth:`repro.trace.collector.TraceCollector.emit`
rejects names that are not registered here — a typo'd probe fails loudly at
the emission site instead of silently producing an empty report column.

The built-in probe points and who emits them:

=================== ======================================================
``phase_started``    :class:`~repro.core.aer.AERNode` — a node entered the
                     push or pull phase (``phase`` is ``"push"``/``"pull"``)
``push_sent``        :class:`~repro.core.aer.AERNode` — the node multicast
                     its candidate to its ``I⁻¹`` targets (Lemma 3)
``push_ignored``     :class:`~repro.core.push.PushEngine` — an incoming push
                     was dropped by the Section 3.1.1 filter
``candidate_added``  :class:`~repro.core.push.PushEngine` — a quorum
                     majority completed and a string entered ``L_x``
                     (Lemma 4/5)
``poll_started``     :class:`~repro.core.pull.PullEngine` — Algorithm 1
                     launched the verification of a candidate
``quorum_contacted`` :class:`~repro.core.pull.PullEngine` — the poller
                     multicast its ``Pull`` to the pull quorum ``H(s, x)``
``poll_answered``    :class:`~repro.core.pull.PullEngine` — a poll-list
                     member sent an ``Answer`` (Algorithm 3)
``budget_exhausted`` :class:`~repro.core.pull.PullEngine` and the
                     sampled-majority baseline — an answer/reply was
                     deferred or refused because the per-node budget was
                     spent (the Lemma 6 filter)
``message_dispatched`` the event kernel — a (multicast) send entered the
                     network, with its kind and per-message bit cost
``node_decided``     the event kernel — a correct node decided
``fault_crashed``    :class:`~repro.faults.FaultInjector` — churn crashed a
                     correct node at a time boundary
``fault_recovered``  :class:`~repro.faults.FaultInjector` — a crashed node
                     recovered (crash-recovery churn)
``fault_dropped``    :class:`~repro.faults.FaultInjector` — a delivery was
                     vetoed (``reason`` is ``down``/``partition``/``loss``)
=================== ======================================================

Custom engines may emit any of these through
:meth:`~repro.trace.collector.TraceCollector.emit`; registering *new* probe
points is done with :func:`register_probe` (see the README extension guide).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class ProbePoint:
    """Declaration of one probe: its name, meaning and payload fields."""

    name: str
    description: str
    fields: Tuple[str, ...] = ()


#: the registry of known probe points, keyed by name
PROBE_POINTS: Dict[str, ProbePoint] = {}


def register_probe(probe: ProbePoint, replace: bool = False) -> ProbePoint:
    """Register a probe point (``ValueError`` on duplicate names).

    Extensions declare their probe before emitting it::

        from repro.trace import ProbePoint, register_probe

        register_probe(ProbePoint("echo_replied", "my protocol replied", ("node",)))
        ...
        trace.emit("echo_replied", node=self.node_id)
    """
    if probe.name in PROBE_POINTS and not replace:
        raise ValueError(f"probe point {probe.name!r} is already registered")
    PROBE_POINTS[probe.name] = probe
    return probe


def get_probe(name: str) -> ProbePoint:
    """Return the probe registered under ``name`` (``ValueError`` if unknown)."""
    probe = PROBE_POINTS.get(name)
    if probe is None:
        known = ", ".join(sorted(PROBE_POINTS))
        raise ValueError(f"unknown probe point {name!r} (known: {known})")
    return probe


for _probe in (
    ProbePoint("phase_started", "a node entered a protocol phase", ("node", "phase")),
    ProbePoint("push_sent", "a node multicast its candidate to its push targets",
               ("node", "targets")),
    ProbePoint("push_ignored", "an incoming push was dropped by the quorum filter",
               ("node",)),
    ProbePoint("candidate_added", "a string entered a node's candidate list L_x",
               ("node", "candidate")),
    ProbePoint("poll_started", "Algorithm 1 launched the verification of a candidate",
               ("node", "poll_list", "quorum")),
    ProbePoint("quorum_contacted", "a poller contacted its pull quorum H(s, x)",
               ("node", "size")),
    ProbePoint("poll_answered", "a poll-list member sent an Answer", ("node", "origin")),
    ProbePoint("budget_exhausted", "an answer was deferred/refused: budget spent",
               ("node",)),
    ProbePoint("message_dispatched", "a (multicast) send entered the network",
               ("sender", "kind", "count", "bits")),
    ProbePoint("node_decided", "a correct node decided", ("node", "time")),
    ProbePoint("fault_crashed", "churn crashed a correct node", ("node", "time")),
    ProbePoint("fault_recovered", "a crashed node recovered", ("node", "time")),
    ProbePoint("fault_dropped", "fault injection vetoed a delivery",
               ("sender", "dest", "reason")),
):
    register_probe(_probe)
