"""TraceCollector — batched aggregation of probe events, and its summary.

The collector follows the same discipline as
:class:`~repro.net.metrics.MetricsCollector`: flat ``{node: int}`` counter
dicts, no per-message object churn, everything derived lazily in
:meth:`TraceCollector.summary`.  The hot kernel probe
(:meth:`TraceCollector.on_dispatch`) fires once per *grouped multicast
record*, not once per message, so enabling ``summary`` tracing costs a
handful of dict updates per dispatch.

Disabled tracing is **free**: nothing in the engine or kernel code paths
constructs a collector unless a spec asks for one (``trace="summary"`` /
``"full"``); the disabled path is a ``None`` check at the probe sites and
the golden-seed equivalence tests pin that the results are byte-identical.

``full`` mode additionally records every probe event — streamed as JSONL to
``$REPRO_TRACE_DIR/<spec key>.jsonl`` when that directory is configured
(``python -m repro run/sweep --trace full --trace-dir DIR``), and kept in a
bounded in-memory buffer otherwise.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.trace.probes import get_probe

#: the accepted values of the ``trace`` experiment knob
TRACE_MODES = ("off", "summary", "full")

#: message kinds accounted to the AER push phase
PUSH_PHASE_KINDS = frozenset({"push"})

#: message kinds accounted to the AER pull phase; kinds in neither set (e.g.
#: the committee-tree AE stage's traffic, the sampled-majority baseline's
#: queries) land in the summary's "other" bucket instead of polluting the
#: push-vs-pull split of a multi-stage composition
PULL_PHASE_KINDS = frozenset({"pull", "poll", "fw1", "fw2", "answer"})

#: default cap on the in-memory event buffer of ``full`` mode (events beyond
#: the cap are counted but not kept; the JSONL stream, when configured, is
#: never truncated)
DEFAULT_MAX_BUFFERED_EVENTS = 100_000


def _stat_block(values: Sequence[float]) -> Dict[str, float]:
    """min/mean/max of a latency-like series (empty → zeros with count 0)."""
    values = list(values)
    if not values:
        return {"count": 0, "min": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "count": len(values),
        "min": min(values),
        "mean": sum(values) / len(values),
        "max": max(values),
    }


@dataclass(frozen=True)
class TraceSummary:
    """JSON-friendly condensation of one traced run.

    Attributes
    ----------
    mode:
        ``"summary"`` or ``"full"``.
    events:
        ``{probe name: total count}`` over every probe that fired.
    message_kinds / byzantine_message_kinds:
        Per message kind ``{"messages": count, "bits": total bits}``, split
        by whether the *sender* was correct or Byzantine.
    phase_bits:
        Correct-sender bits attributed to the AER push phase, the AER pull
        phase, and ``other`` (message kinds belonging to neither — e.g. a
        composition's AE-stage traffic or a baseline's queries).
    push:
        Per-correct-node push-phase send cost: ``max_node_bits`` /
        ``mean_node_bits`` / ``total_bits`` / ``max_node_messages`` — the
        Lemma 3 quantities.
    candidates:
        Candidate-list totals (``total`` = ``Σ|L_x|``, ``max``, ``mean``,
        ``added``) over the registered holders — the Lemma 4 quantities;
        ``None`` for protocols without candidate lists.
    polls:
        Poll/answer accounting: polls started, answers sent, budget events,
        distinct budget-limited nodes, and the poll-latency distribution
        (first poll to decision, in scheduler time units).
    marked:
        Per marked string (see :meth:`TraceCollector.mark_string`):
        ``initial`` holders, ``accepted`` via push majorities, and their sum
        ``holders`` — the Lemma 5 reach numerator.
    full:
        Present in ``full`` mode only: events captured/dropped and the JSONL
        path, if any.
    """

    mode: str
    events: Dict[str, int]
    message_kinds: Dict[str, Dict[str, int]]
    byzantine_message_kinds: Dict[str, Dict[str, int]]
    phase_bits: Dict[str, int]
    push: Dict[str, float]
    candidates: Optional[Dict[str, float]]
    polls: Dict[str, object]
    marked: Dict[str, Dict[str, int]] = field(default_factory=dict)
    full: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (what ``RunResult.trace`` carries through JSON)."""
        data: Dict[str, object] = {
            "mode": self.mode,
            "events": dict(self.events),
            "message_kinds": {k: dict(v) for k, v in self.message_kinds.items()},
            "byzantine_message_kinds": {
                k: dict(v) for k, v in self.byzantine_message_kinds.items()
            },
            "phase_bits": dict(self.phase_bits),
            "push": dict(self.push),
            "candidates": dict(self.candidates) if self.candidates is not None else None,
            "polls": dict(self.polls),
            "marked": {k: dict(v) for k, v in self.marked.items()},
        }
        if self.full is not None:
            data["full"] = dict(self.full)
        return data

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "TraceSummary":
        return TraceSummary(
            mode=str(data["mode"]),
            events=dict(data.get("events", {})),  # type: ignore[arg-type]
            message_kinds=dict(data.get("message_kinds", {})),  # type: ignore[arg-type]
            byzantine_message_kinds=dict(
                data.get("byzantine_message_kinds", {})  # type: ignore[arg-type]
            ),
            phase_bits=dict(data.get("phase_bits", {})),  # type: ignore[arg-type]
            push=dict(data.get("push", {})),  # type: ignore[arg-type]
            candidates=(
                dict(data["candidates"])  # type: ignore[arg-type]
                if data.get("candidates") is not None
                else None
            ),
            polls=dict(data.get("polls", {})),  # type: ignore[arg-type]
            marked=dict(data.get("marked", {})),  # type: ignore[arg-type]
            full=dict(data["full"]) if data.get("full") is not None else None,  # type: ignore[arg-type]
        )


class TraceCollector:
    """Aggregates probe events during one simulation run.

    One collector serves one run (a multi-stage composition shares a single
    collector across its stages).  The kernel binds the population and its
    clock at construction time; engines hold a reference and call the probe
    methods at their event sites — or :meth:`emit` for extension probes,
    which validates the probe name against the registry.
    """

    def __init__(
        self,
        mode: str = "summary",
        jsonl_path: Optional[str] = None,
        max_buffered_events: int = DEFAULT_MAX_BUFFERED_EVENTS,
    ) -> None:
        if mode == "off" or mode not in TRACE_MODES:
            raise ValueError(f"unknown trace mode {mode!r} (expected 'summary' or 'full')")
        self.mode = mode
        self.jsonl_path = jsonl_path
        self.max_buffered_events = max_buffered_events
        self._full = mode == "full"
        self._sink = None
        if self._full and jsonl_path is not None:
            self._sink = open(jsonl_path, "w", encoding="utf-8")

        self._counts: Dict[str, int] = {}
        self._correct: frozenset = frozenset()
        self._byzantine: frozenset = frozenset()
        self._now: Callable[[], float] = lambda: 0.0

        # kernel-level accounting (correct vs Byzantine senders)
        self._kind_msgs: Dict[str, int] = {}
        self._kind_bits: Dict[str, int] = {}
        self._byz_kind_msgs: Dict[str, int] = {}
        self._byz_kind_bits: Dict[str, int] = {}
        self._push_bits: Dict[int, int] = {}
        self._push_msgs: Dict[int, int] = {}

        # engine-level accounting
        self._holders: Set[int] = set()
        self._candidate_adds: Dict[int, int] = {}
        self._poll_first: Dict[int, float] = {}
        self._decide_time: Dict[int, float] = {}
        self._budget_nodes: Set[int] = set()
        self._marked: Dict[str, Dict[str, object]] = {}

        # full-mode event capture
        self._events: List[Dict[str, object]] = []
        self._events_total = 0
        self._events_dropped = 0

    # ------------------------------------------------------------------
    # wiring (called by the kernel / the protocol adapters)
    # ------------------------------------------------------------------
    def bind_population(self, correct_ids, byzantine_ids) -> None:
        """Attach the run's identity partition (kernel construction time)."""
        self._correct = frozenset(correct_ids)
        self._byzantine = frozenset(byzantine_ids)

    def bind_clock(self, now: Callable[[], float]) -> None:
        """Attach the scheduler's clock, used to timestamp events."""
        self._now = now

    def mark_string(self, alias: str, value: str) -> None:
        """Track acceptance of one specific string under a stable alias.

        Summaries must stay JSON-small, so arbitrary candidate strings are
        never stored; a *marked* string (e.g. the scenario's ``gstring``) is
        counted by alias: how many holders start with it and how many accept
        it through a push majority — the Lemma 5 reach, without shipping the
        string itself through every record.
        """
        self._marked[alias] = {"value": value, "initial": 0, "accepted": 0}

    def candidate_holder(self, node_id: int, initial_candidate: str) -> None:
        """Register a node that maintains a candidate list (engine construction)."""
        self._holders.add(node_id)
        for marked in self._marked.values():
            if marked["value"] == initial_candidate:
                marked["initial"] += 1  # type: ignore[operator]

    def stage_boundary(self) -> None:
        """Start a new stage of a multi-stage composition.

        Event counters and message-kind totals keep accumulating across
        stages, but the per-node decision/poll timing maps are reset so the
        poll-latency distribution is computed within the current stage (a
        stage-1 decision time paired with a stage-2 poll would be garbage).
        """
        self._decide_time.clear()
        self._poll_first.clear()

    # ------------------------------------------------------------------
    # probe sites (dedicated methods — the hot paths)
    # ------------------------------------------------------------------
    def _count(self, name: str, increment: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + increment

    def _record(self, name: str, fields: Dict[str, object]) -> None:
        event = {"probe": name, "t": self._now(), **fields}
        self._events_total += 1
        if self._sink is not None:
            # Streaming: the JSONL file is the event store; buffering the
            # same dicts in memory would cost tens of MB per run for data
            # nothing reads (the sweep pipeline only keeps the summary).
            self._sink.write(json.dumps(event, sort_keys=True) + "\n")
        elif len(self._events) < self.max_buffered_events:
            self._events.append(event)
        else:
            self._events_dropped += 1

    def on_dispatch(self, sender: int, count: int, kind: str, bits: int) -> None:
        """A grouped ``(sender, dests, message)`` record entered the network.

        ``bits`` is the per-message cost; the kernel calls this once per
        multicast record, so the per-message fan-out stays off this path.
        """
        self._count("message_dispatched")
        if sender in self._correct:
            self._kind_msgs[kind] = self._kind_msgs.get(kind, 0) + count
            self._kind_bits[kind] = self._kind_bits.get(kind, 0) + count * bits
            if kind in PUSH_PHASE_KINDS:
                self._push_msgs[sender] = self._push_msgs.get(sender, 0) + count
                self._push_bits[sender] = self._push_bits.get(sender, 0) + count * bits
        else:
            self._byz_kind_msgs[kind] = self._byz_kind_msgs.get(kind, 0) + count
            self._byz_kind_bits[kind] = self._byz_kind_bits.get(kind, 0) + count * bits
        if self._full:
            self._record(
                "message_dispatched",
                {"sender": sender, "kind": kind, "count": count, "bits": bits},
            )

    def on_decided(self, node_id: int, time: float) -> None:
        """A correct node decided (kernel decision tracking)."""
        self._count("node_decided")
        self._decide_time.setdefault(node_id, time)
        if self._full:
            self._record("node_decided", {"node": node_id, "time": time})

    # ------------------------------------------------------------------
    # probe sites (engine-level)
    # ------------------------------------------------------------------
    def phase_started(self, node: int, phase: str) -> None:
        self._count("phase_started")
        if self._full:
            self._record("phase_started", {"node": node, "phase": phase})

    def push_sent(self, node: int, targets: int) -> None:
        self._count("push_sent")
        if self._full:
            self._record("push_sent", {"node": node, "targets": targets})

    def push_ignored(self, node: int) -> None:
        self._count("push_ignored")
        if self._full:
            self._record("push_ignored", {"node": node})

    def candidate_added(self, node: int, candidate: str) -> None:
        self._count("candidate_added")
        self._candidate_adds[node] = self._candidate_adds.get(node, 0) + 1
        for marked in self._marked.values():
            if marked["value"] == candidate:
                marked["accepted"] += 1  # type: ignore[operator]
        if self._full:
            self._record("candidate_added", {"node": node})

    def poll_started(self, node: int, poll_list: int, quorum: int) -> None:
        self._count("poll_started")
        self._poll_first.setdefault(node, self._now())
        if self._full:
            self._record(
                "poll_started", {"node": node, "poll_list": poll_list, "quorum": quorum}
            )

    def quorum_contacted(self, node: int, size: int) -> None:
        self._count("quorum_contacted")
        if self._full:
            self._record("quorum_contacted", {"node": node, "size": size})

    def poll_answered(self, node: int, origin: int) -> None:
        self._count("poll_answered")
        if self._full:
            self._record("poll_answered", {"node": node, "origin": origin})

    def budget_exhausted(self, node: int) -> None:
        self._count("budget_exhausted")
        self._budget_nodes.add(node)
        if self._full:
            self._record("budget_exhausted", {"node": node})

    # ------------------------------------------------------------------
    # generic, validated emission (extension probes)
    # ------------------------------------------------------------------
    def emit(self, probe: str, **fields) -> None:
        """Emit a probe by name; unknown probe names are rejected.

        The dedicated methods above are the hot-path spellings of the
        built-in probes; ``emit`` is the generic entry point.  Emitting a
        *built-in* probe through here dispatches to its dedicated method, so
        the specialized accounting (budget-limited node sets, candidate
        totals, latency maps, message-kind histograms) stays consistent no
        matter which spelling an engine uses.  Registered extension probes
        (see :func:`repro.trace.probes.register_probe`) get the generic
        count-and-record treatment.
        """
        point = get_probe(probe)
        unknown = sorted(set(fields) - set(point.fields))
        if unknown:
            raise ValueError(
                f"probe {probe!r} does not declare field(s) {', '.join(unknown)} "
                f"(declared: {', '.join(point.fields) or 'none'})"
            )
        handler = self._BUILTIN_HANDLERS.get(probe)
        if handler is not None:
            try:
                handler(self, **fields)
            except TypeError:
                raise ValueError(
                    f"built-in probe {probe!r} requires all of its declared "
                    f"field(s): {', '.join(point.fields)}"
                ) from None
            return
        self._count(probe)
        if self._full:
            self._record(probe, fields)

    #: built-in probe name → dedicated method, so the generic :meth:`emit`
    #: spelling feeds the same specialized accounting as the hot-path one
    #: (message_dispatched/node_decided adapt the declared field names to
    #: their methods' argument orders)
    _BUILTIN_HANDLERS: Dict[str, Callable] = {
        "phase_started": phase_started,
        "push_sent": push_sent,
        "push_ignored": push_ignored,
        "candidate_added": candidate_added,
        "poll_started": poll_started,
        "quorum_contacted": quorum_contacted,
        "poll_answered": poll_answered,
        "budget_exhausted": budget_exhausted,
        "message_dispatched": lambda self, sender, kind, count, bits: self.on_dispatch(
            sender, count, kind, bits
        ),
        "node_decided": lambda self, node, time: self.on_decided(node, time),
    }

    # ------------------------------------------------------------------
    # condensation
    # ------------------------------------------------------------------
    def summary(self) -> TraceSummary:
        """Condense everything recorded so far into a :class:`TraceSummary`."""
        push_population = sorted(self._correct) if self._correct else sorted(self._push_bits)
        push_bits = [self._push_bits.get(i, 0) for i in push_population]
        push_msgs = [self._push_msgs.get(i, 0) for i in push_population]
        push = {
            "total_bits": sum(push_bits),
            "max_node_bits": max(push_bits) if push_bits else 0,
            "mean_node_bits": (sum(push_bits) / len(push_bits)) if push_bits else 0.0,
            "max_node_messages": max(push_msgs) if push_msgs else 0,
        }

        candidates: Optional[Dict[str, float]] = None
        if self._holders:
            sizes = [1 + self._candidate_adds.get(i, 0) for i in sorted(self._holders)]
            candidates = {
                "total": sum(sizes),
                "max": max(sizes),
                "mean": sum(sizes) / len(sizes),
                "added": sum(self._candidate_adds.values()),
            }

        latencies = [
            self._decide_time[node] - started
            for node, started in self._poll_first.items()
            if node in self._decide_time
        ]
        polls: Dict[str, object] = {
            "started": self._counts.get("poll_started", 0),
            "answered": self._counts.get("poll_answered", 0),
            "budget_exhausted_events": self._counts.get("budget_exhausted", 0),
            "budget_exhausted_nodes": len(self._budget_nodes),
            "decided": len(self._decide_time),
            "latency": _stat_block(latencies),
        }

        marked = {
            alias: {
                "initial": int(entry["initial"]),  # type: ignore[arg-type]
                "accepted": int(entry["accepted"]),  # type: ignore[arg-type]
                "holders": int(entry["initial"]) + int(entry["accepted"]),  # type: ignore[arg-type]
            }
            for alias, entry in sorted(self._marked.items())
        }

        kinds = {
            kind: {"messages": self._kind_msgs[kind], "bits": self._kind_bits.get(kind, 0)}
            for kind in sorted(self._kind_msgs)
        }
        byz_kinds = {
            kind: {
                "messages": self._byz_kind_msgs[kind],
                "bits": self._byz_kind_bits.get(kind, 0),
            }
            for kind in sorted(self._byz_kind_msgs)
        }
        phase_bits = {
            "push": sum(b for k, b in self._kind_bits.items() if k in PUSH_PHASE_KINDS),
            "pull": sum(b for k, b in self._kind_bits.items() if k in PULL_PHASE_KINDS),
            "other": sum(
                b
                for k, b in self._kind_bits.items()
                if k not in PUSH_PHASE_KINDS and k not in PULL_PHASE_KINDS
            ),
        }

        full: Optional[Dict[str, object]] = None
        if self._full:
            full = {
                "events_captured": self._events_total,
                "events_dropped": self._events_dropped,
                "jsonl_path": self.jsonl_path,
            }

        return TraceSummary(
            mode=self.mode,
            events={name: self._counts[name] for name in sorted(self._counts)},
            message_kinds=kinds,
            byzantine_message_kinds=byz_kinds,
            phase_bits=phase_bits,
            push=push,
            candidates=candidates,
            polls=polls,
            marked=marked,
            full=full,
        )

    @property
    def events(self) -> List[Dict[str, object]]:
        """The buffered per-event records (``full`` mode without a JSONL sink).

        With a sink open the stream *is* the event store and this buffer
        stays empty; read the JSONL file instead.
        """
        return self._events

    def close(self) -> None:
        """Flush and close the JSONL sink, if one is open."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def finalize(self) -> Dict[str, object]:
        """Summary as a plain dict, closing the JSONL sink — the adapters' one call."""
        try:
            return self.summary().to_dict()
        finally:
            self.close()


def collector_for_spec(spec) -> Optional[TraceCollector]:
    """Build the collector an :class:`~repro.experiments.plan.ExperimentSpec` asks for.

    ``spec.trace == "off"`` returns ``None`` (the zero-cost path).  In
    ``full`` mode the JSONL stream lands in ``$REPRO_TRACE_DIR`` (one file
    per spec) when that directory is set — the CLI's ``--trace-dir`` exports
    it so multiprocessing sweep workers inherit the destination.  The file
    name is the spec key plus a digest of the *whole* spec: two specs of one
    plan may share a key while differing in params/label/knobs (e.g. the
    answer-budget ablation), and each must get its own stream.
    """
    mode = getattr(spec, "trace", "off")
    if mode == "off":
        return None
    jsonl_path = None
    if mode == "full":
        trace_dir = os.environ.get("REPRO_TRACE_DIR")
        if trace_dir:
            os.makedirs(trace_dir, exist_ok=True)
            safe_key = spec.key.replace(":", "_").replace("/", "_")
            spec_json = json.dumps(spec.to_dict(), sort_keys=True, default=str)
            digest = hashlib.sha1(spec_json.encode("utf-8")).hexdigest()[:8]
            jsonl_path = os.path.join(trace_dir, f"{safe_key}-{digest}.jsonl")
    return TraceCollector(mode=mode, jsonl_path=jsonl_path)
