"""Content-addressing keys: canonical spec/plan hashes and the code fingerprint.

The store's keying invariant (pinned by ``tests/test_store.py``):

* ``spec_key(spec)`` hashes the spec's **canonical JSON** — the same
  normalization :class:`~repro.experiments.plan.ExperimentSpec` applies to
  its ``params`` field (sorted keys, no whitespace), extended to the whole
  spec dict.  Two spellings of one experiment (``params={"b":1,"a":2}`` vs
  ``params='{"a":2,"b":1}'``) therefore produce one key, and every field
  that changes what a run computes (``backend``, ``trace``, scenario knobs)
  is part of the hash.
* ``code_fingerprint()`` reuses the bench provenance helper: the short git
  commit with a ``+dirty`` marker for uncommitted trees, so records measured
  on different code never serve each other.  ``$REPRO_CODE_FINGERPRINT``
  overrides it (tests, and deployments without a git checkout).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.plan import ExperimentPlan, ExperimentSpec

#: digest size of the blake2b spec/plan hashes (hex length = 2x)
_DIGEST_BYTES = 16

_fingerprint_cache: Optional[str] = None


def _canonical_digest(data: object) -> str:
    text = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(text.encode("utf-8"), digest_size=_DIGEST_BYTES).hexdigest()


def spec_key(spec: "ExperimentSpec") -> str:
    """Stable content hash of one spec's canonical JSON."""
    return _canonical_digest(spec.to_dict())


def plan_key(plan: "ExperimentPlan") -> str:
    """Stable content hash of a whole plan (the service's coalescing key)."""
    return _canonical_digest(plan.to_dict())


def code_fingerprint(refresh: bool = False) -> str:
    """The code identity records are stamped with.

    ``$REPRO_CODE_FINGERPRINT`` wins when set (checked on every call, so
    tests can flip it); otherwise the bench helper's ``git rev-parse`` +
    dirty marker, cached per process (two subprocess calls are too slow for
    per-record use).
    """
    override = os.environ.get("REPRO_CODE_FINGERPRINT")
    if override:
        return override
    global _fingerprint_cache
    if _fingerprint_cache is None or refresh:
        from repro.experiments.bench import _git_commit

        _fingerprint_cache = _git_commit()
    return _fingerprint_cache
