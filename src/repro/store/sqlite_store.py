"""SQLite-backed ResultStore: WAL-mode persistence of experiment records.

One table, one invariant: a row is the finished
:class:`~repro.experiments.sweep.ExperimentRecord` of exactly one
``(spec_key, code_fingerprint)`` pair.  ``get_many`` answers a whole plan's
lookup in one query; ``put_many`` upserts inside one transaction (WAL mode
plus a generous busy timeout make concurrent writer *processes* safe — the
two-process test in ``tests/test_store.py`` pins this).  The schema carries
a version header: opening a store written by a **newer** schema refuses
loudly instead of misreading it, and a file that is not a SQLite database at
all produces a recovery message naming the path.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.store.keys import code_fingerprint, spec_key

#: bump when the table layout changes; older code refuses newer stores
SCHEMA_VERSION = 1

#: default store location (overridable via $REPRO_STORE and the CLI flags)
DEFAULT_STORE_FILENAME = ".repro-store.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS records (
    spec_key    TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    protocol    TEXT NOT NULL,
    spec_json   TEXT NOT NULL,
    record_json TEXT NOT NULL,
    created_at  REAL NOT NULL,
    PRIMARY KEY (spec_key, fingerprint)
);
CREATE INDEX IF NOT EXISTS idx_records_fingerprint ON records (fingerprint);
CREATE INDEX IF NOT EXISTS idx_records_protocol ON records (protocol);
"""


class StoreError(RuntimeError):
    """A result store could not be opened or refused the running code."""


def default_store_path() -> str:
    """``$REPRO_STORE`` when set, else ``.repro-store.sqlite`` in the CWD."""
    return os.environ.get("REPRO_STORE") or DEFAULT_STORE_FILENAME


def resolve_store(
    store: Optional[str], no_store: bool = False
) -> Optional["ResultStore"]:
    """CLI flag resolution: ``--no-store`` wins; ``--store`` (``""`` = "use
    the default path") next; then ``$REPRO_STORE``; with neither flag nor
    env var set there is no store."""
    if no_store:
        return None
    if store is not None:
        return ResultStore(store or default_store_path())
    env = os.environ.get("REPRO_STORE")
    return ResultStore(env) if env else None


class ResultStore:
    """Content-addressed persistence of experiment records.

    Parameters
    ----------
    path:
        SQLite database file; created (with parent directories) on first
        open.  ``":memory:"`` gives a process-private ephemeral store.
    fingerprint:
        The code identity new records are stamped with and lookups are
        matched against; defaults to :func:`repro.store.keys.code_fingerprint`.

    The instance is safe to share across threads (one connection guarded by
    a lock — the service's request threads and its background worker all go
    through one store), and separate *processes* each open their own
    instance against the same file (WAL mode).
    """

    def __init__(self, path: str, fingerprint: Optional[str] = None) -> None:
        self.path = str(path)
        self.fingerprint = fingerprint or code_fingerprint()
        parent = os.path.dirname(os.path.abspath(self.path))
        if self.path != ":memory:" and parent:
            os.makedirs(parent, exist_ok=True)
        self._lock = threading.Lock()
        try:
            self._conn = sqlite3.connect(
                self.path, timeout=30.0, check_same_thread=False
            )
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA busy_timeout=30000")
            with self._conn:
                self._conn.executescript(_SCHEMA)
                self._check_schema_version()
        except sqlite3.DatabaseError as exc:
            raise StoreError(
                f"result store at {self.path!r} is not a readable SQLite "
                f"database ({exc}); if it is corrupted, delete the file to "
                f"start a fresh store (records are re-computable from specs)"
            ) from exc

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _check_schema_version(self) -> None:
        row = self._conn.execute(
            "SELECT value FROM store_meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO store_meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            return
        found = int(row[0])
        if found > SCHEMA_VERSION:
            raise StoreError(
                f"result store at {self.path!r} uses schema version {found}, "
                f"newer than this code's version {SCHEMA_VERSION}; refusing "
                f"to read it — upgrade the package (or point --store at a "
                f"fresh path)"
            )

    def close(self) -> None:
        """Close the connection (idempotent)."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None  # type: ignore[assignment]

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get_many(self, specs: Sequence) -> List[Optional[object]]:
        """Records for ``specs`` under the current fingerprint, aligned with
        the input (``None`` per miss) — one query for the whole plan."""
        from repro.experiments.sweep import ExperimentRecord

        keys = [spec_key(spec) for spec in specs]
        if not keys:
            return []
        found: Dict[str, str] = {}
        with self._lock:
            # chunked IN (...) lookup: SQLite's default variable limit is 999
            for start in range(0, len(keys), 500):
                chunk = sorted(set(keys[start : start + 500]))
                marks = ",".join("?" * len(chunk))
                rows = self._conn.execute(
                    f"SELECT spec_key, record_json FROM records "
                    f"WHERE fingerprint = ? AND spec_key IN ({marks})",
                    [self.fingerprint, *chunk],
                ).fetchall()
                found.update(rows)
        return [
            ExperimentRecord.from_dict(json.loads(found[key])) if key in found else None
            for key in keys
        ]

    def get(self, spec) -> Optional[object]:
        """The record for one spec, or ``None`` on a miss."""
        return self.get_many([spec])[0]

    def query(
        self,
        protocol: Optional[str] = None,
        fingerprint: Optional[str] = None,
        limit: int = 100,
    ) -> List[Dict[str, object]]:
        """Record dicts matching the filters, newest first (service queries)."""
        clauses, args = [], []
        if protocol is not None:
            clauses.append("protocol = ?")
            args.append(protocol)
        if fingerprint is not None:
            clauses.append("fingerprint = ?")
            args.append(fingerprint)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._lock:
            rows = self._conn.execute(
                f"SELECT record_json FROM records {where} "
                f"ORDER BY created_at DESC, spec_key LIMIT ?",
                [*args, max(0, int(limit))],
            ).fetchall()
        return [json.loads(row[0]) for row in rows]

    def stats(self) -> Dict[str, object]:
        """Store summary: totals, per-fingerprint and per-protocol counts."""
        with self._lock:
            total = self._conn.execute("SELECT COUNT(*) FROM records").fetchone()[0]
            by_fingerprint = dict(
                self._conn.execute(
                    "SELECT fingerprint, COUNT(*) FROM records "
                    "GROUP BY fingerprint ORDER BY fingerprint"
                ).fetchall()
            )
            by_protocol = dict(
                self._conn.execute(
                    "SELECT protocol, COUNT(*) FROM records "
                    "GROUP BY protocol ORDER BY protocol"
                ).fetchall()
            )
        try:
            size = os.path.getsize(self.path)
        except OSError:
            size = 0
        return {
            "path": self.path,
            "schema_version": SCHEMA_VERSION,
            "records": total,
            "current_fingerprint": self.fingerprint,
            "current_fingerprint_records": by_fingerprint.get(self.fingerprint, 0),
            "by_fingerprint": by_fingerprint,
            "by_protocol": by_protocol,
            "size_bytes": size,
        }

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def put_many(self, records: Iterable) -> int:
        """Upsert records under the current fingerprint; returns the count.

        Records are stamped with the store's fingerprint regardless of where
        they were computed — callers are expected to hand over records they
        just ran under this code identity.
        """
        now = time.time()
        rows = []
        for record in records:
            # Natural (insertion) key order, NOT sort_keys: a served record
            # must re-serialize byte-identically to the freshly computed one,
            # and dict order (e.g. protocol extras) survives the round trip
            # only if stored as produced.
            data = record.to_dict()
            rows.append(
                (
                    spec_key(record.spec),
                    self.fingerprint,
                    record.spec.protocol,
                    json.dumps(data["spec"], separators=(",", ":")),
                    json.dumps(data, separators=(",", ":")),
                    now,
                )
            )
        if not rows:
            return 0
        with self._lock, self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO records "
                "(spec_key, fingerprint, protocol, spec_json, record_json, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                rows,
            )
        return len(rows)

    def put(self, record) -> None:
        """Upsert one record (the sweep runner's incremental flush)."""
        self.put_many([record])

    def prune(
        self, fingerprint: Optional[str] = None, keep_current: bool = False
    ) -> int:
        """Delete records by fingerprint; returns the number removed.

        ``fingerprint`` deletes exactly that code identity's records;
        ``keep_current=True`` deletes everything *except* the store's own
        fingerprint (the "garbage-collect stale code" mode).  Exactly one of
        the two must be given.
        """
        if (fingerprint is None) == (not keep_current):
            raise ValueError(
                "prune needs exactly one of fingerprint=... or keep_current=True"
            )
        with self._lock, self._conn:
            if keep_current:
                cursor = self._conn.execute(
                    "DELETE FROM records WHERE fingerprint != ?", (self.fingerprint,)
                )
            else:
                cursor = self._conn.execute(
                    "DELETE FROM records WHERE fingerprint = ?", (fingerprint,)
                )
        return cursor.rowcount
