"""Content-addressed experiment result store (the sixth subsystem's core).

A :class:`~repro.store.sqlite_store.ResultStore` persists
:class:`~repro.experiments.sweep.ExperimentRecord`\\ s keyed by
``(spec_key, code_fingerprint)``:

* ``spec_key`` — a stable hash of the spec's **canonical JSON** (the PR-2
  canonicalization guarantees equivalent spellings of one experiment produce
  one key, and the backend/trace fields are part of the JSON, so a
  vectorized run never masquerades as a message-kernel run);
* ``code_fingerprint`` — the bench provenance helper's git commit with its
  ``+dirty`` marker, so results measured on different code never collide.

Any sweep or report run against a warm store is *incremental*: records
already computed are served from SQLite, only the delta executes — see
``SweepRunner.run(store=...)`` and ``ReportBuilder(store_path=...)``.  The
storage engine is SQLite in WAL mode, so many reader processes (and the
FastAPI service's request threads) can query while a sweep writes.
"""

from repro.store.keys import code_fingerprint, plan_key, spec_key
from repro.store.sqlite_store import (
    SCHEMA_VERSION,
    ResultStore,
    StoreError,
    default_store_path,
    resolve_store,
)

__all__ = [
    "ResultStore",
    "StoreError",
    "SCHEMA_VERSION",
    "spec_key",
    "plan_key",
    "code_fingerprint",
    "default_store_path",
    "resolve_store",
]
