"""Localhost orchestration: one coordinator plus N workers, supervised.

:func:`run_distributed_sweep` is what ``python -m repro sweep
--distributed N`` calls: it starts a :class:`~repro.dist.coordinator.
DistCoordinator` on an ephemeral port, launches ``N`` worker subprocesses
(``python -m repro dist-worker``) against it, supervises them (a dead
worker whose shards still matter is respawned — its lease expires and the
shard is re-issued), and reassembles the plan-ordered
:class:`~repro.experiments.sweep.SweepResult`.

``in_process=True`` swaps subprocesses for threads running the same
:func:`~repro.dist.worker.run_worker` loop over the same TCP socket —
identical protocol traffic, but cheap enough for unit tests and coverage.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from typing import Callable, List, Mapping, Optional, TYPE_CHECKING

import repro
from repro.dist.board import DEFAULT_LEASE_TIMEOUT
from repro.dist.coordinator import DistCoordinator
from repro.dist.worker import run_worker
from repro.experiments.plan import ExperimentPlan
from repro.experiments.sweep import ExperimentRecord, SweepResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store import ResultStore


class DistributedSweepError(RuntimeError):
    """A distributed sweep cannot make progress (workers kept dying)."""


def spawn_worker(
    address: str,
    index: int = 0,
    poll: float = 0.2,
    fingerprint: Optional[str] = None,
) -> subprocess.Popen:
    """Launch one ``python -m repro dist-worker`` subprocess.

    The child inherits our environment with the ``repro`` package's parent
    directory prepended to ``PYTHONPATH`` (so a source checkout works
    without installation) and — when given — the coordinator's fingerprint
    pinned via ``REPRO_CODE_FINGERPRINT`` so the handshake cannot flap on
    a dirty working tree.
    """
    env = dict(os.environ)
    package_parent = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    parts = [package_parent] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    if fingerprint is not None:
        env["REPRO_CODE_FINGERPRINT"] = fingerprint
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "dist-worker",
            address,
            "--poll",
            str(poll),
            "--id",
            f"dist-w{index}",
        ],
        env=env,
        stdout=subprocess.DEVNULL,  # worker chatter; stderr stays visible
    )


def run_distributed_sweep(
    plan: ExperimentPlan,
    workers: int = 2,
    store: Optional["ResultStore"] = None,
    seed_records: Optional[Mapping[str, ExperimentRecord]] = None,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    host: str = "127.0.0.1",
    port: int = 0,
    worker_poll: float = 0.2,
    on_record: Optional[Callable[[int, ExperimentRecord, bool], None]] = None,
    in_process: bool = False,
    max_respawns: Optional[int] = None,
) -> SweepResult:
    """Run ``plan`` through a coordinator and ``workers`` local workers.

    Store and resume hits are served before any worker starts; a fully
    warm plan launches zero workers.  Worker subprocesses that die are
    respawned (bounded by ``max_respawns``, default ``workers``) as long
    as unfinished shards remain; if every worker is dead and the respawn
    budget is spent, raises :class:`DistributedSweepError` instead of
    hanging.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    coordinator = DistCoordinator(
        plan,
        store=store,
        seed_records=seed_records,
        lease_timeout=lease_timeout,
        host=host,
        port=port,
        on_record=on_record,
    )
    procs: List[subprocess.Popen] = []
    threads: List[threading.Thread] = []
    try:
        if coordinator.board.finished:
            # Every record came from the store/resume file: no server, no
            # workers, and jobs=1 so the result matches a serial warm run.
            return coordinator.result(timeout=0.1, jobs=1)
        bind_host, bind_port = coordinator.start()
        address = f"{bind_host}:{bind_port}"
        if in_process:
            for index in range(workers):
                thread = threading.Thread(
                    target=run_worker,
                    args=(address,),
                    kwargs={
                        "worker_id": f"dist-t{index}",
                        "fingerprint": coordinator.fingerprint,
                        "poll_interval": worker_poll,
                    },
                    name=f"repro-dist-worker-{index}",
                    daemon=True,
                )
                thread.start()
                threads.append(thread)
            coordinator.wait()
        else:
            respawn_budget = workers if max_respawns is None else max_respawns
            spawned = 0
            for index in range(workers):
                procs.append(
                    spawn_worker(
                        address,
                        index=spawned,
                        poll=worker_poll,
                        fingerprint=coordinator.fingerprint,
                    )
                )
                spawned += 1
            while not coordinator.wait(timeout=0.1):
                live = [p for p in procs if p.poll() is None]
                if live:
                    continue
                if respawn_budget <= 0:
                    exitcodes = sorted({p.returncode for p in procs})
                    raise DistributedSweepError(
                        f"all {len(procs)} dist workers exited "
                        f"(exit codes {exitcodes}) with unfinished shards and "
                        f"the respawn budget is spent: "
                        f"{coordinator.board.counts()}"
                    )
                respawn_budget -= 1
                procs.append(
                    spawn_worker(
                        address,
                        index=spawned,
                        poll=worker_poll,
                        fingerprint=coordinator.fingerprint,
                    )
                )
                spawned += 1
        return coordinator.result(timeout=10.0, jobs=workers)
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
        for proc in procs:
            proc.wait(timeout=10.0)
        coordinator.close()
        for thread in threads:
            thread.join(timeout=10.0)
