"""Wire protocol of the distributed sweep executor.

One frame per line: a JSON object terminated by ``\\n``, written over a
plain TCP stream.  Every exchange is strict request/response, so a
connection is a sequence of RPCs; the coordinator handles many concurrent
connections (one thread each, ``ThreadingTCPServer``).

Frame types (worker → coordinator, with the coordinator's replies):

====================  =====================================================
``hello``             fingerprint handshake; replied with ``welcome`` (plan
                      size, lease timeout) or ``reject`` (reason names both
                      fingerprints) — required before ``claim``/
                      ``heartbeat``/``complete`` on that connection.
``claim``             request a shard; replied with ``lease`` (index, spec,
                      spec_key, lease id, deadline), ``wait`` (everything
                      is leased; retry_after seconds) or ``drained`` (all
                      shards done — the worker exits).
``heartbeat``         extend a lease; replied ``ok`` while the lease is
                      live, ``expired`` once it lapsed (the shard may have
                      been re-issued).
``complete``          deliver a finished record; replied ``ok`` with
                      ``accepted: false`` for duplicate completions.
``status``            progress snapshot; needs no handshake (monitoring).
====================  =====================================================

Everything here is stdlib-only on purpose — the executor must run anywhere
the store runs.
"""

from __future__ import annotations

import json
import os
import socket
from typing import Dict, Optional, Tuple, Union

Address = Union[str, Tuple[str, int]]


class ProtocolError(RuntimeError):
    """A malformed frame, an unexpected reply, or a dropped connection."""


class WorkerRejectedError(RuntimeError):
    """The coordinator refused this worker (fingerprint mismatch, by name)."""


def parse_address(address: Address) -> Tuple[str, int]:
    """``"HOST:PORT"`` (or an already-split tuple) → ``(host, port)``."""
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    host, sep, port = str(address).rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"coordinator address must look like HOST:PORT, got {address!r}"
        )
    return host, int(port)


def write_frame(wfile, payload: Dict[str, object]) -> None:
    """Serialize one frame (compact JSON + newline) and flush it."""
    wfile.write(json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n")
    wfile.flush()


def read_frame(rfile) -> Optional[Dict[str, object]]:
    """Read one frame; ``None`` on a cleanly closed connection."""
    line = rfile.readline()
    if not line:
        return None
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed frame {line[:80]!r}: {exc}") from None
    if not isinstance(frame, dict) or "type" not in frame:
        raise ProtocolError(f"frame without a type: {frame!r}")
    return frame


def default_worker_id() -> str:
    """``hostname-pid`` — unique enough to tell workers apart in status."""
    return f"{socket.gethostname()}-{os.getpid()}"


class CoordinatorClient:
    """One worker-side connection to a coordinator (strict request/response).

    Cheap to construct: the heartbeat thread opens a fresh client per beat
    rather than interleaving frames with an in-flight ``claim`` on the main
    connection.  Use as a context manager or call :meth:`close`.
    """

    def __init__(
        self,
        address: Address,
        worker: str = "",
        fingerprint: Optional[str] = None,
        timeout: float = 30.0,
    ) -> None:
        self.host, self.port = parse_address(address)
        self.worker = worker or default_worker_id()
        if fingerprint is None:
            from repro.store.keys import code_fingerprint

            fingerprint = code_fingerprint()
        self.fingerprint = fingerprint
        self._sock = socket.create_connection((self.host, self.port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _rpc(self, payload: Dict[str, object]) -> Dict[str, object]:
        write_frame(self._wfile, payload)
        reply = read_frame(self._rfile)
        if reply is None:
            raise ProtocolError(
                f"coordinator at {self.host}:{self.port} closed the connection "
                f"mid-exchange (request type {payload.get('type')!r})"
            )
        if reply.get("type") == "error":
            raise ProtocolError(str(reply.get("reason", "unspecified protocol error")))
        return reply

    def close(self) -> None:
        for closer in (self._rfile.close, self._wfile.close, self._sock.close):
            try:
                closer()
            except OSError:  # pragma: no cover - teardown races only
                pass

    def __enter__(self) -> "CoordinatorClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # RPCs
    # ------------------------------------------------------------------
    def hello(self) -> Dict[str, object]:
        """Fingerprint handshake; raises :class:`WorkerRejectedError` on reject."""
        reply = self._rpc(
            {"type": "hello", "worker": self.worker, "fingerprint": self.fingerprint}
        )
        if reply.get("type") == "reject":
            raise WorkerRejectedError(str(reply.get("reason", "rejected")))
        if reply.get("type") != "welcome":
            raise ProtocolError(f"expected welcome, got {reply!r}")
        return reply

    def claim(self) -> Dict[str, object]:
        """Ask for a shard: a ``lease``, ``wait`` or ``drained`` reply."""
        reply = self._rpc({"type": "claim", "worker": self.worker})
        if reply.get("type") not in ("lease", "wait", "drained"):
            raise ProtocolError(f"unexpected claim reply {reply!r}")
        return reply

    def heartbeat(self, lease: str) -> bool:
        """Extend a lease; ``False`` once it expired (shard may be re-issued)."""
        reply = self._rpc({"type": "heartbeat", "worker": self.worker, "lease": lease})
        return reply.get("type") == "ok"

    def complete(self, lease: str, index: int, record: Dict[str, object]) -> bool:
        """Deliver a finished record; ``False`` marks a duplicate completion."""
        reply = self._rpc(
            {
                "type": "complete",
                "worker": self.worker,
                "lease": lease,
                "index": index,
                "record": record,
            }
        )
        return bool(reply.get("accepted"))

    def status(self) -> Dict[str, object]:
        """The coordinator's progress snapshot (no handshake required)."""
        return self._rpc({"type": "status"})


def coordinator_status(address: Address, timeout: float = 10.0) -> Dict[str, object]:
    """One-shot status query against a running coordinator."""
    with CoordinatorClient(address, worker="status-probe", timeout=timeout) as client:
        return client.status()
