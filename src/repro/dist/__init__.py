"""Distributed sweep executor: multi-host shard claiming over the result store.

The eighth subsystem generalizes the sweep runner beyond one host.  A
:class:`~repro.dist.coordinator.DistCoordinator` shards an
:class:`~repro.experiments.plan.ExperimentPlan` into **spec-keyed work
units** — the same content-addressed keys the result store uses — and serves
them to workers over a small TCP protocol (stdlib ``socketserver``,
newline-delimited JSON frames; no new dependency).  A worker
(``python -m repro dist-worker HOST:PORT``) claims a lease, runs the spec
through the existing :func:`~repro.experiments.sweep.execute_spec` path and
streams the finished :class:`~repro.experiments.sweep.ExperimentRecord`
back for incremental store flush.

Correctness contract (pinned by ``tests/test_dist.py`` and the CI
``dist-smoke`` job):

* **Leases, not assignments** — a claimed shard carries a lease with a
  heartbeat deadline; a crashed or partitioned worker's lease expires and
  the shard is re-issued to the next claimer (*at-least-once execution*).
* **Exactly-once persistence** — completions are accepted first-wins per
  shard; duplicates from expired leases are acknowledged but discarded, and
  the store's ``(spec_key, fingerprint)`` upsert makes even a racing flush
  idempotent.
* **Fingerprint handshake** — a worker running different code than the
  coordinator is rejected *by name* (both fingerprints in the message)
  before it can claim anything.
* **Store hits first** — records already in the result store (or a
  ``--resume`` file) are served before any shard is issued, so a warm
  distributed sweep spawns zero workers.
* **Plan-order reassembly** — the coordinator's
  :class:`~repro.experiments.sweep.SweepResult` is index-reassembled, so
  ``sweep --distributed N --canonical`` output is byte-identical to a
  serial run of the same plan.

:func:`run_distributed_sweep` is the localhost proof-of-contract behind
``python -m repro sweep --distributed N``: one in-process coordinator plus
``N`` worker subprocesses (or in-process threads for tests).
"""

from repro.dist.board import DEFAULT_LEASE_TIMEOUT, ShardBoard
from repro.dist.coordinator import DistCoordinator, active_coordinators
from repro.dist.launch import DistributedSweepError, run_distributed_sweep, spawn_worker
from repro.dist.protocol import (
    CoordinatorClient,
    ProtocolError,
    WorkerRejectedError,
    coordinator_status,
    parse_address,
)
from repro.dist.worker import run_worker

__all__ = [
    "DEFAULT_LEASE_TIMEOUT",
    "ShardBoard",
    "DistCoordinator",
    "active_coordinators",
    "DistributedSweepError",
    "run_distributed_sweep",
    "spawn_worker",
    "CoordinatorClient",
    "ProtocolError",
    "WorkerRejectedError",
    "coordinator_status",
    "parse_address",
    "run_worker",
]
