"""The sweep coordinator: a TCP server issuing spec-keyed shard leases.

A :class:`DistCoordinator` wraps a :class:`~repro.dist.board.ShardBoard` in
a ``ThreadingTCPServer`` speaking the newline-delimited JSON protocol of
:mod:`repro.dist.protocol`.  Construction order encodes the contract:

1. the plan is validated and sharded in **plan order**;
2. result-store hits (then ``--resume`` seed records) are served
   immediately — *before the server even listens*, so a fully warm plan
   never issues a shard;
3. :meth:`start` binds the socket (port ``0`` = ephemeral) and worker
   connections claim/heartbeat/complete against the board;
4. every accepted completion is flushed to the store incrementally
   (idempotent ``(spec_key, fingerprint)`` upsert — duplicate completions
   are discarded *before* the store, so no duplicate rows either way);
5. :meth:`result` blocks for the last shard and reassembles the
   plan-ordered :class:`~repro.experiments.sweep.SweepResult`.

Live coordinators register themselves in a process-local registry so the
experiment service can surface their status (``GET /dist/coordinators``)
without holding references.
"""

from __future__ import annotations

import socketserver
import threading
import time
from typing import Callable, Dict, List, Mapping, Optional, Tuple, TYPE_CHECKING

from repro.dist.board import DEFAULT_LEASE_TIMEOUT, ShardBoard
from repro.dist.protocol import read_frame, write_frame
from repro.experiments.plan import ExperimentPlan
from repro.experiments.sweep import ExperimentRecord, SweepResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store import ResultStore

#: process-local registry of live coordinators (service status endpoint)
_ACTIVE: Dict[int, "DistCoordinator"] = {}
_ACTIVE_LOCK = threading.Lock()


def active_coordinators() -> List[Dict[str, object]]:
    """Status snapshots of every live coordinator in this process."""
    with _ACTIVE_LOCK:
        coordinators = list(_ACTIVE.values())
    return [coordinator.status() for coordinator in coordinators]


class _CoordinatorServer(socketserver.ThreadingTCPServer):
    """One thread per worker connection; daemonic so close() never hangs."""

    allow_reuse_address = True
    daemon_threads = True
    coordinator: "DistCoordinator"


class _ShardHandler(socketserver.StreamRequestHandler):
    """Frame dispatch for one connection (see repro.dist.protocol)."""

    def handle(self) -> None:  # noqa: C901 - flat dispatch table
        coordinator = self.server.coordinator  # type: ignore[attr-defined]
        welcomed = False
        while True:
            try:
                frame = read_frame(self.rfile)
            except Exception:  # malformed frame: drop the connection
                return
            if frame is None:
                return
            kind = frame.get("type")
            if kind == "status":
                write_frame(self.wfile, {"type": "status", **coordinator.status()})
            elif kind == "hello":
                reply = coordinator.handshake(
                    str(frame.get("worker", "?")), str(frame.get("fingerprint", ""))
                )
                write_frame(self.wfile, reply)
                if reply["type"] == "reject":
                    return  # a stale-code worker gets nothing else
                welcomed = True
            elif not welcomed:
                write_frame(
                    self.wfile,
                    {
                        "type": "error",
                        "reason": f"handshake required before {kind!r} "
                                  f"(send a hello frame first)",
                    },
                )
            elif kind == "claim":
                write_frame(
                    self.wfile, coordinator.claim(str(frame.get("worker", "?")))
                )
            elif kind == "heartbeat":
                alive = coordinator.board.heartbeat(str(frame.get("lease", "")))
                write_frame(self.wfile, {"type": "ok" if alive else "expired"})
            elif kind == "complete":
                accepted = coordinator.complete(
                    int(frame["index"]),
                    frame["record"],  # type: ignore[arg-type]
                    worker=str(frame.get("worker", "?")),
                )
                write_frame(self.wfile, {"type": "ok", "accepted": accepted})
            else:
                write_frame(
                    self.wfile,
                    {"type": "error", "reason": f"unknown frame type {kind!r}"},
                )


class DistCoordinator:
    """Shard an experiment plan and serve it to TCP workers under leases.

    Parameters
    ----------
    plan:
        The grid to run; validated up front (bad specs fail before any
        worker connects).
    store:
        Optional :class:`~repro.store.ResultStore` — hits are served before
        any shard is issued, fresh records are flushed incrementally.
    seed_records:
        ``spec_key → record`` mapping (the ``--resume`` file); served after
        store hits, re-persisted to the store when one is given.
    lease_timeout:
        Seconds before an unheartbeated lease expires and its shard is
        re-issued.
    clock:
        Injectable monotonic clock for the lease state machine (tests).
    fingerprint:
        Code identity workers must match; defaults to
        :func:`repro.store.keys.code_fingerprint`.
    on_record:
        ``(index, record, served_from_store)`` callback in completion
        order — same hook :class:`~repro.experiments.sweep.SweepRunner`
        exposes, so the service can stream distributed jobs too.
    """

    def __init__(
        self,
        plan: ExperimentPlan,
        store: Optional["ResultStore"] = None,
        seed_records: Optional[Mapping[str, ExperimentRecord]] = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        host: str = "127.0.0.1",
        port: int = 0,
        clock: Optional[Callable[[], float]] = None,
        fingerprint: Optional[str] = None,
        on_record: Optional[Callable[[int, ExperimentRecord, bool], None]] = None,
    ) -> None:
        from repro.store.keys import code_fingerprint

        self.plan = plan
        self.store = store
        self.fingerprint = fingerprint or code_fingerprint()
        self._on_record = on_record
        self._host, self._port = host, port
        self._server: Optional[_CoordinatorServer] = None
        self._server_thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self._workers_seen: Dict[str, int] = {}
        self._lock = threading.Lock()

        specs = plan.specs()
        for spec in specs:
            spec.validate()
        self.board = ShardBoard(specs, lease_timeout=lease_timeout, clock=clock)
        # Store hits (then resume seeds) are served before the server ever
        # listens: a warm plan issues zero shards and needs zero workers.
        if store is not None:
            for index, hit in enumerate(store.get_many(specs)):
                if hit is not None:
                    self._serve(index, hit, "store")
        if seed_records:
            from repro.store.keys import spec_key

            for index, spec in enumerate(specs):
                shard = self.board.shards[index]
                if shard.state != "done":
                    hit = seed_records.get(spec_key(spec))
                    if hit is not None:
                        self._serve(index, hit, "resume")
                        if store is not None:
                            store.put(hit)

    def _serve(self, index: int, record: ExperimentRecord, source: str) -> None:
        self.board.serve(index, record, source)
        if self._on_record is not None:
            self._on_record(index, record, True)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Bind the socket and serve claims; returns ``(host, port)``."""
        if self._server is not None:
            return self.address
        server = _CoordinatorServer((self._host, self._port), _ShardHandler)
        server.coordinator = self
        self._server = server
        self._started_at = time.perf_counter()
        self._server_thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-dist-coordinator",
            daemon=True,
        )
        self._server_thread.start()
        with _ACTIVE_LOCK:
            _ACTIVE[id(self)] = self
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise RuntimeError("coordinator is not started")
        return self._server.server_address[0], self._server.server_address[1]

    def close(self) -> None:
        """Stop serving (idempotent); leases and records stay readable."""
        with _ACTIVE_LOCK:
            _ACTIVE.pop(id(self), None)
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if self._server_thread is not None:
            self._server_thread.join(timeout=10.0)
            self._server_thread = None

    def __enter__(self) -> "DistCoordinator":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # frame-level operations (called by handler threads)
    # ------------------------------------------------------------------
    def handshake(self, worker: str, fingerprint: str) -> Dict[str, object]:
        if fingerprint != self.fingerprint:
            return {
                "type": "reject",
                "reason": (
                    f"code fingerprint mismatch: worker {worker!r} runs "
                    f"{fingerprint!r} but the coordinator expects "
                    f"{self.fingerprint!r} — update the worker's checkout to "
                    f"the coordinator's code before claiming shards"
                ),
            }
        with self._lock:
            self._workers_seen[worker] = self._workers_seen.get(worker, 0) + 1
        return {
            "type": "welcome",
            "worker": worker,
            "total": len(self.board.shards),
            "lease_timeout": self.board.lease_timeout,
        }

    def claim(self, worker: str) -> Dict[str, object]:
        claim = self.board.claim(worker)
        if claim.kind == "drained":
            return {"type": "drained"}
        if claim.kind == "wait":
            return {"type": "wait", "retry_after": claim.retry_after}
        shard = claim.shard
        assert shard is not None
        return {
            "type": "lease",
            "lease": shard.lease_id,
            "index": shard.index,
            "spec_key": shard.spec_key,
            "spec": shard.spec.to_dict(),
            "lease_timeout": self.board.lease_timeout,
            "attempt": shard.attempts,
        }

    def complete(
        self, index: int, record_data: Dict[str, object], worker: str = "?"
    ) -> bool:
        record = ExperimentRecord.from_dict(record_data)
        accepted = self.board.complete(index, record, worker=worker)
        if accepted:
            if self.store is not None:
                self.store.put(record)
            if self._on_record is not None:
                self._on_record(index, record, False)
        return accepted

    # ------------------------------------------------------------------
    # progress and results
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, object]:
        """JSON-safe progress snapshot (the service's ``/dist`` payload)."""
        counts = self.board.counts()
        with self._lock:
            workers = dict(self._workers_seen)
        address = None
        if self._server is not None:
            host, port = self.address
            address = f"{host}:{port}"
        return {
            "address": address,
            "fingerprint": self.fingerprint,
            "lease_timeout": self.board.lease_timeout,
            "finished": self.board.finished,
            "workers": workers,
            "expired_leases": self.board.counters.expired_leases,
            "duplicate_completions": self.board.counters.duplicate_completions,
            "completed_by": dict(self.board.counters.completed_by),
            **counts,
        }

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every shard is done (or the timeout elapses)."""
        return self.board.wait(timeout=timeout)

    def result(
        self, timeout: Optional[float] = None, jobs: Optional[int] = None
    ) -> SweepResult:
        """The plan-ordered sweep result; blocks until the board drains.

        ``jobs`` labels the result (the worker count the caller launched);
        it defaults to the number of distinct workers that completed a
        shard, or 1 for a fully served plan.
        """
        if not self.board.wait(timeout=timeout):
            counts = self.board.counts()
            raise TimeoutError(
                f"distributed sweep incomplete after {timeout}s: "
                f"{counts['done']}/{counts['total']} shards done "
                f"({counts['leased']} leased, {counts['pending']} pending)"
            )
        records, served_store, served_resume = self.board.records()
        total_seconds = (
            time.perf_counter() - self._started_at if self._started_at else 0.0
        )
        if jobs is None:
            jobs = max(1, len(self.board.counters.completed_by))
        return SweepResult(
            plan=self.plan,
            records=records,
            total_seconds=total_seconds,
            jobs=jobs,
            served_from_store=served_store + served_resume,
            served_from_resume=served_resume,
        )
