"""The worker loop: claim a lease, run the spec, stream the record back.

:func:`run_worker` is the client half of the distributed executor — what
``python -m repro dist-worker HOST:PORT`` runs, and what the in-process
worker threads of :func:`~repro.dist.launch.run_distributed_sweep` run for
tests.  The loop is deliberately dumb:

1. connect and ``hello`` (the coordinator rejects stale code by name);
2. ``claim`` — on ``wait`` sleep and retry, on ``drained`` exit;
3. execute the spec through the exact same
   :func:`~repro.experiments.sweep.execute_spec` path a local sweep uses
   (so a distributed record is byte-for-byte a local record), while a
   background thread heartbeats the lease;
4. ``complete`` and go to 2.

A worker keeps running after its lease expired mid-spec (a long spec on a
slow host): the completion is still submitted, and the coordinator's
first-wins rule decides whether it counts or is a discarded duplicate.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.dist.protocol import (
    Address,
    CoordinatorClient,
    ProtocolError,
    default_worker_id,
)
from repro.experiments.plan import ExperimentSpec
from repro.experiments.sweep import execute_spec


class _LeaseHeartbeat:
    """Background heartbeats for one lease (fresh connection per beat).

    A separate connection keeps heartbeats off the main socket, which is
    idle-blocked inside the spec execution; per-beat connections also make
    a half-dead coordinator a non-event (the beat just fails and the main
    loop finds out on ``complete``).
    """

    def __init__(
        self,
        address: Address,
        worker: str,
        fingerprint: str,
        lease: str,
        interval: float,
    ) -> None:
        self._address = address
        self._worker = worker
        self._fingerprint = fingerprint
        self._lease = lease
        self._interval = max(0.05, interval)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name=f"repro-dist-heartbeat-{lease}", daemon=True
        )
        #: becomes True if the coordinator reported the lease expired
        self.expired = False

    def start(self) -> "_LeaseHeartbeat":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                with CoordinatorClient(
                    self._address, worker=self._worker, fingerprint=self._fingerprint
                ) as client:
                    client.hello()
                    if not client.heartbeat(self._lease):
                        self.expired = True
                        return  # re-issued elsewhere; finishing is best-effort now
            except (OSError, ProtocolError):
                return  # coordinator unreachable; the main loop will notice


def run_worker(
    address: Address,
    worker_id: Optional[str] = None,
    fingerprint: Optional[str] = None,
    poll_interval: float = 0.5,
    heartbeat_interval: Optional[float] = None,
    max_claims: Optional[int] = None,
) -> int:
    """Claim and execute shards until the coordinator drains; returns the
    number of specs this worker executed.

    ``poll_interval`` caps how long the worker sleeps on a ``wait`` reply;
    ``heartbeat_interval`` defaults to a third of the coordinator's lease
    timeout; ``max_claims`` bounds the loop (tests and scale-down).

    Raises :class:`~repro.dist.protocol.WorkerRejectedError` when the
    fingerprint handshake fails — a stale-code worker must never compute
    records for a coordinator running different code.
    """
    worker = worker_id or default_worker_id()
    client = CoordinatorClient(address, worker=worker, fingerprint=fingerprint)
    executed = 0
    try:
        welcome = client.hello()
        if heartbeat_interval is None:
            heartbeat_interval = float(welcome.get("lease_timeout", 30.0)) / 3.0
        while max_claims is None or executed < max_claims:
            try:
                reply = client.claim()
            except (OSError, ProtocolError):
                break  # coordinator gone (drained and closed); we are done
            if reply["type"] == "drained":
                break
            if reply["type"] == "wait":
                time.sleep(
                    min(float(reply.get("retry_after", poll_interval)), poll_interval)
                )
                continue
            spec = ExperimentSpec.from_dict(reply["spec"])  # type: ignore[arg-type]
            lease = str(reply["lease"])
            heartbeat = _LeaseHeartbeat(
                address,
                worker,
                client.fingerprint,
                lease,
                interval=heartbeat_interval,
            ).start()
            try:
                record = execute_spec(spec)
            finally:
                heartbeat.stop()
            executed += 1
            try:
                client.complete(lease, int(reply["index"]), record.to_dict())
            except (OSError, ProtocolError):
                break  # coordinator closed between our claim and completion
    finally:
        client.close()
    return executed
