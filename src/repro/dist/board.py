"""The lease state machine behind the coordinator: spec-keyed shard claiming.

A :class:`ShardBoard` owns a plan's specs as indexed shards and hands them
out under **leases**: a claim moves a shard ``pending → leased`` with a
deadline; heartbeats push the deadline forward; a shard whose deadline
lapses is re-issued to the next claimer (at-least-once execution).
Completions are first-wins per shard — a late completion from an expired
lease is still accepted if nobody else finished the shard first, and a
*second* completion is acknowledged but discarded (exactly-once results).

The board is pure bookkeeping — no sockets, no store — and takes an
injectable ``clock``, so every lease race (expiry, re-issue, duplicate
completion) is testable deterministically without sleeping.  All methods
are thread-safe; the TCP handler threads of
:class:`~repro.dist.coordinator.DistCoordinator` call straight into it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.plan import ExperimentSpec
from repro.experiments.sweep import ExperimentRecord

#: default lease lifetime; heartbeats are expected every third of this
DEFAULT_LEASE_TIMEOUT = 30.0

#: shard lifecycle states
PENDING, LEASED, DONE = "pending", "leased", "done"


@dataclass
class Shard:
    """One unit of claimable work: a plan slot, its spec and its lease."""

    index: int
    spec: ExperimentSpec
    spec_key: str
    state: str = PENDING
    lease_id: Optional[str] = None
    worker: Optional[str] = None
    deadline: float = 0.0
    #: how many times this shard has been issued (>1 means re-issue)
    attempts: int = 0
    record: Optional[ExperimentRecord] = None
    #: "store"/"resume" when the record was served instead of executed
    served_from: Optional[str] = None


@dataclass
class ClaimResult:
    """What :meth:`ShardBoard.claim` returns: one of three outcomes."""

    kind: str  # "lease" | "wait" | "drained"
    shard: Optional[Shard] = None
    retry_after: float = 0.0


@dataclass
class BoardCounters:
    """Race bookkeeping surfaced through the coordinator's status."""

    expired_leases: int = 0
    duplicate_completions: int = 0
    #: accepted fresh completions per worker id
    completed_by: Dict[str, int] = field(default_factory=dict)


class ShardBoard:
    """Thread-safe lease-based claiming over a plan's indexed specs."""

    def __init__(
        self,
        specs: Sequence[ExperimentSpec],
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        from repro.store.keys import spec_key

        self.lease_timeout = float(lease_timeout)
        self.clock = clock or time.monotonic
        self.shards: List[Shard] = [
            Shard(index=i, spec=spec, spec_key=spec_key(spec))
            for i, spec in enumerate(specs)
        ]
        self.counters = BoardCounters()
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._lease_seq = 0
        if not self.shards:
            self._done.set()

    # ------------------------------------------------------------------
    # serving (store/resume hits — before any shard is issued)
    # ------------------------------------------------------------------
    def serve(self, index: int, record: ExperimentRecord, source: str) -> None:
        """Mark a shard done with an already-known record (store/resume hit)."""
        with self._lock:
            shard = self.shards[index]
            if shard.state == DONE:
                return
            shard.state = DONE
            shard.record = record
            shard.served_from = source
            self._check_done()

    # ------------------------------------------------------------------
    # the lease protocol
    # ------------------------------------------------------------------
    def claim(self, worker: str) -> ClaimResult:
        """Issue the first pending (or expired-lease) shard, in plan order."""
        with self._lock:
            now = self.clock()
            earliest: Optional[float] = None
            for shard in self.shards:
                if shard.state == PENDING or (
                    shard.state == LEASED and shard.deadline <= now
                ):
                    if shard.state == LEASED:
                        self.counters.expired_leases += 1
                    self._lease_seq += 1
                    shard.state = LEASED
                    shard.lease_id = f"L{self._lease_seq:05d}"
                    shard.worker = worker
                    shard.deadline = now + self.lease_timeout
                    shard.attempts += 1
                    return ClaimResult(kind="lease", shard=shard)
                if shard.state == LEASED:
                    earliest = (
                        shard.deadline
                        if earliest is None
                        else min(earliest, shard.deadline)
                    )
            if earliest is None:  # nothing pending, nothing leased
                return ClaimResult(kind="drained")
            retry = max(0.05, min(earliest - now, 1.0))
            return ClaimResult(kind="wait", retry_after=retry)

    def heartbeat(self, lease_id: str) -> bool:
        """Extend a live lease's deadline; ``False`` once it already lapsed."""
        with self._lock:
            now = self.clock()
            for shard in self.shards:
                if shard.state == LEASED and shard.lease_id == lease_id:
                    if shard.deadline <= now:
                        return False
                    shard.deadline = now + self.lease_timeout
                    return True
            return False

    def complete(
        self, index: int, record: ExperimentRecord, worker: str = "?"
    ) -> bool:
        """Accept a finished record (first-wins); ``False`` for duplicates.

        A completion from an *expired* lease is still accepted when the
        shard is not yet done — the record is a pure function of the spec,
        so whichever attempt finishes first is as good as any other
        (at-least-once execution, exactly-once results).
        """
        with self._lock:
            shard = self.shards[index]
            if shard.state == DONE:
                self.counters.duplicate_completions += 1
                return False
            shard.state = DONE
            shard.record = record
            shard.worker = worker
            self.counters.completed_by[worker] = (
                self.counters.completed_by.get(worker, 0) + 1
            )
            self._check_done()
            return True

    # ------------------------------------------------------------------
    # progress
    # ------------------------------------------------------------------
    def _check_done(self) -> None:
        if all(shard.state == DONE for shard in self.shards):
            self._done.set()

    @property
    def finished(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every shard is done (or the timeout elapses)."""
        return self._done.wait(timeout=timeout)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            by_state = {PENDING: 0, LEASED: 0, DONE: 0}
            served = {"store": 0, "resume": 0}
            for shard in self.shards:
                by_state[shard.state] += 1
                if shard.served_from:
                    served[shard.served_from] += 1
            return {
                "total": len(self.shards),
                "pending": by_state[PENDING],
                "leased": by_state[LEASED],
                "done": by_state[DONE],
                "served_from_store": served["store"],
                "served_from_resume": served["resume"],
                "executed": by_state[DONE] - served["store"] - served["resume"],
            }

    def records(self) -> Tuple[List[ExperimentRecord], int, int]:
        """Plan-ordered records plus (store, resume) served counts.

        Only valid once :attr:`finished`; raises otherwise, because a
        partial list would silently break plan-order reassembly.
        """
        with self._lock:
            missing = [s.index for s in self.shards if s.record is None]
            if missing:
                raise RuntimeError(
                    f"board is not finished: {len(missing)} shard(s) without a "
                    f"record (first missing index {missing[0]})"
                )
            served_store = sum(1 for s in self.shards if s.served_from == "store")
            served_resume = sum(1 for s in self.shards if s.served_from == "resume")
            return [s.record for s in self.shards], served_store, served_resume
