"""ReportBuilder — assemble report sections into EXPERIMENTS.md.

The builder resolves the requested sections (document order), runs each
section's :class:`~repro.experiments.plan.ExperimentPlan` through
:class:`~repro.experiments.sweep.SweepRunner` (or reloads a cached
:class:`~repro.experiments.sweep.SweepResult` whose plan still matches), and
renders the provenance header, the claim-inventory table and every section's
Markdown.

Determinism contract
--------------------
The default document is **byte-identical across runs** on the same
platform/python with the same grids — that is what lets CI regenerate
EXPERIMENTS.md and ``git diff --exit-code`` it against the committed copy.
Consequently the default provenance header carries only stable facts
(platform, python, grid mode, seeds, section list, run counts); the volatile
ones — git commit and wall-clock — are emitted only with
``include_volatile=True`` (CLI ``--timings``), which is meant for ad-hoc
local reports, not for the committed artifact.
"""

from __future__ import annotations

import platform
import subprocess
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.sweep import SweepResult, SweepRunner, WorkerPool
from repro.store import ResultStore
from repro.report.base import (
    ReportSection,
    get_report_section,
    list_report_sections,
    markdown_table,
)

#: format version of the generated document (bump on layout changes)
REPORT_FORMAT = "1"


@dataclass(frozen=True)
class BuiltSection:
    """One section's finished product: the sweep it ran and its Markdown.

    ``from_cache`` is true when *every* record of the section's sweep was
    served from the result store (zero protocol executions).
    """

    section: ReportSection
    sweep: SweepResult
    markdown: str
    from_cache: bool


def _git_commit() -> str:
    """Short HEAD commit, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False,
        )
    except (OSError, subprocess.SubprocessError):  # pragma: no cover - git missing/hung
        return "unknown"
    return out.stdout.strip() or "unknown"


class ReportBuilder:
    """Run the report sections and assemble the Markdown document.

    Parameters
    ----------
    sections:
        Section names to include, in the given order; ``None`` means every
        registered section in document order.
    quick:
        ``True`` runs the small CI-sized grids, ``False`` the full grids.
    jobs:
        Worker processes per sweep (``None`` lets the runner pick).
    store_path:
        When set, every section's sweep runs against the content-addressed
        :class:`~repro.store.ResultStore` at that path: records already
        stored under the current code fingerprint are served **per spec**
        (changing one grid point re-runs only that point), the delta is
        executed and flushed back.  The rendered document is byte-identical
        with or without the store — records carry their original
        measurements.
    cache_dir:
        Deprecated (whole-plan JSON caching).  Forwards to the store path
        ``<cache_dir>/report-store.sqlite`` with a ``DeprecationWarning``;
        use ``store_path`` instead.
    include_volatile:
        Add git commit and wall-clock lines to the provenance header (breaks
        the byte-identical contract; see the module docstring).
    """

    def __init__(
        self,
        sections: Optional[Sequence[str]] = None,
        quick: bool = True,
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
        include_volatile: bool = False,
        store_path: Optional[str] = None,
    ) -> None:
        names = list(sections) if sections is not None else list_report_sections()
        self.sections: List[ReportSection] = [get_report_section(name) for name in names]
        self.quick = quick
        self.jobs = jobs
        if cache_dir is not None and store_path is None:
            warnings.warn(
                "ReportBuilder(cache_dir=...) / report --cache are deprecated: "
                "the whole-plan JSON cache was replaced by the per-spec result "
                "store; forwarding to store_path="
                f"{str(Path(cache_dir) / 'report-store.sqlite')!r} "
                "(use --store / store_path directly)",
                DeprecationWarning,
                stacklevel=2,
            )
            store_path = str(Path(cache_dir) / "report-store.sqlite")
        self.store_path = store_path
        self.include_volatile = include_volatile

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _run_section(
        self,
        section: ReportSection,
        pool: Optional[WorkerPool],
        store: Optional[ResultStore],
    ) -> Tuple[SweepResult, bool]:
        plan = section.plan(quick=self.quick)
        sweep = SweepRunner(plan, jobs=self.jobs).run(pool=pool, store=store)
        fully_served = bool(sweep.records) and sweep.served_from_store == len(sweep.records)
        return sweep, fully_served

    def build_sections(self) -> List[BuiltSection]:
        """Run (or serve from the store) every requested section.

        All sections share one :class:`~repro.experiments.sweep.WorkerPool`:
        the pool spins up lazily for the first section that actually needs
        workers and its warm (sampler-prewarmed) processes are reused by
        every following section, instead of paying pool startup per plan.
        ``jobs=1`` keeps the fully serial in-process path.  They likewise
        share one :class:`~repro.store.ResultStore` when ``store_path`` is
        set, so each spec is looked up and flushed exactly once.
        """
        built = []
        serial = self.jobs is not None and self.jobs <= 1
        store = ResultStore(self.store_path) if self.store_path else None
        try:
            with WorkerPool(processes=self.jobs) as pool:
                shared_pool = None if serial else pool
                for section in self.sections:
                    sweep, from_cache = self._run_section(section, shared_pool, store)
                    markdown = section.render(sweep.records, quick=self.quick)
                    built.append(
                        BuiltSection(
                            section=section, sweep=sweep, markdown=markdown,
                            from_cache=from_cache,
                        )
                    )
        finally:
            if store is not None:
                store.close()
        return built

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def _provenance(self, built: Sequence[BuiltSection], seconds: float) -> str:
        seeds = sorted(
            {record.spec.seed for b in built for record in b.sweep.records}
        )
        rows: List[Dict[str, object]] = [
            {"provenance": "grid", "value": "quick (CI-sized)" if self.quick else "full"},
            {"provenance": "sections", "value": ", ".join(b.section.name for b in built)},
            {"provenance": "seeds", "value": ", ".join(map(str, seeds))},
            {
                "provenance": "experiments",
                "value": sum(len(b.sweep.records) for b in built),
            },
            {
                "provenance": "platform",
                "value": f"{platform.system()} {platform.machine()}",
            },
            # major.minor only: patch releases do not change simulation output,
            # and the CI freshness diff must not depend on them
            {
                "provenance": "python",
                "value": ".".join(platform.python_version_tuple()[:2]),
            },
            {"provenance": "format", "value": REPORT_FORMAT},
        ]
        if self.include_volatile:
            rows.append({"provenance": "git commit", "value": _git_commit()})
            rows.append({"provenance": "wall-time", "value": f"{seconds:.1f}s"})
        return markdown_table(rows)

    def _claim_inventory(self, built: Sequence[BuiltSection]) -> str:
        rows = [
            {
                "section": f"[{b.section.name}](#{_anchor(b.section.title)})",
                "paper claim": b.section.title.split("—", 1)[-1].strip(),
                "benchmark": f"`{b.section.benchmark}`" if b.section.benchmark else "-",
            }
            for b in built
        ]
        return markdown_table(rows)

    def build(self) -> str:
        """The full document as one Markdown string."""
        start = time.perf_counter()
        built = self.build_sections()
        seconds = time.perf_counter() - start
        regen_flag = "--quick" if self.quick else "--full"
        parts = [
            "# EXPERIMENTS — paper claims vs. measurements",
            "",
            "Reproduction evidence for **Braud-Santoni, Guerraoui, Huc — *Fast "
            "Byzantine Agreement* (PODC 2013)**: every section runs one claim's "
            "experiment grid through the sweep subsystem, aggregates across "
            "seeds (mean ±95% CI; `rate` columns are observed frequencies) and "
            "quotes the paper's expectation next to the measurement.",
            "",
            f"*Generated by `python -m repro report {regen_flag}` — do not edit "
            "by hand; CI regenerates this file and fails if it drifts from the "
            "code.  See PAPER.md for the claim inventory and ARCHITECTURE.md "
            "for the report-section contract.*",
            "",
            self._provenance(built, seconds),
            "",
            "## Claim inventory",
            "",
            self._claim_inventory(built),
            "",
        ]
        parts += [b.markdown for b in built]
        return "\n".join(parts).rstrip() + "\n"

    def write(self, path: str) -> str:
        """Build and write the document; returns the rendered text."""
        text = self.build()
        Path(path).write_text(text, encoding="utf-8")
        return text


def _anchor(title: str) -> str:
    """GitHub heading anchor for an intra-document link."""
    keep = [c for c in title.lower() if c.isalnum() or c in " -"]
    return "".join(keep).replace(" ", "-")


def build_report(
    sections: Optional[Sequence[str]] = None,
    quick: bool = True,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    out: Optional[str] = None,
    include_volatile: bool = False,
    store_path: Optional[str] = None,
) -> str:
    """Convenience wrapper: build the document, optionally writing it to ``out``."""
    builder = ReportBuilder(
        sections=sections,
        quick=quick,
        jobs=jobs,
        cache_dir=cache_dir,
        include_volatile=include_volatile,
        store_path=store_path,
    )
    if out is not None:
        return builder.write(out)
    return builder.build()
