"""Built-in report sections: Figures 1a/1b, Lemmas 3-10, Property 2, ablations.

Each section pins the claim of the paper it measures, the experiment grid
that measures it (``--quick`` and ``--full`` variants) and the row-building
code.  The corresponding benchmark modules import the section instances
(``FIGURE1A``, ``LEMMA8``, ...) and print the very same ``record_row``
output, so the pytest tables and EXPERIMENTS.md are two renderings of one
row source.

Grid sizes are laptop-scale on purpose: the ``--quick`` grids regenerate the
committed EXPERIMENTS.md in well under five minutes on one core; ``--full``
extends the sweeps to the sizes the benchmarks use and adds seeds.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.analysis.complexity import growth_exponent
from repro.analysis.statistics import mean_ci, success_estimate_from_outcomes
from repro.experiments.plan import ExperimentPlan, ExperimentSpec
from repro.experiments.sweep import ExperimentRecord
from repro.report.base import ReportSection, register_report_section


def _round_opt(value, digits: int = 2):
    """Round a float, passing ``None`` through as the table's ``"-"`` cell."""
    return round(value, digits) if value is not None else "-"


def regime_mean(rows: Sequence[Dict[str, object]], regime: object, column: str) -> float:
    """Mean of a numeric column over one regime's rows (``"-"`` cells skipped).

    Shared by the ablation sections, whose commentaries compare per-regime
    averages of the same ``record_row`` output.
    """
    values = [
        float(row[column])  # type: ignore[arg-type]
        for row in rows
        if row.get("regime") == regime and row.get(column) != "-"
    ]
    return sum(values) / len(values) if values else 0.0


def _trace_block(record: ExperimentRecord, key: str) -> Dict[str, object]:
    """Fetch one block of the record's condensed trace, failing helpfully.

    The Lemma 3-5 and ablation sections measure protocol *internals*, which
    only exist on records produced with ``trace="summary"`` (the sections'
    own plans set it); a record swept without tracing cannot fill their
    columns.
    """
    trace = record.trace
    if trace is None:
        raise ValueError(
            f"record {record.spec.key!r} carries no trace block; this section "
            "needs records swept with trace='summary' (use the section's plan)"
        )
    block = trace.get(key)
    if block is None:
        raise ValueError(f"trace block {key!r} missing from record {record.spec.key!r}")
    return block  # type: ignore[return-value]


def label_series(records: Sequence[ExperimentRecord], label: str, value) -> List[float]:
    """Metric curve of one labelled series, in plan (n-major) order.

    The Figure-1 sections tag each spec with a series label; this extracts
    one series' values for growth fits (shared with the benchmarks).
    """
    return [value(r) for r in records if r.spec.label == label]


def mean_series_by_n(
    records: Sequence[ExperimentRecord], value
) -> Tuple[List[int], List[float]]:
    """Seed-averaged metric curve: sorted ``ns`` and the per-``n`` means.

    ``value`` maps a record to a float (or ``None`` to skip it); this is what
    the growth-fit commentary feeds to
    :func:`repro.analysis.complexity.growth_exponent`.
    """
    by_n: Dict[int, List[float]] = {}
    for record in records:
        v = value(record)
        if v is not None:
            by_n.setdefault(record.spec.n, []).append(float(v))
    ns = sorted(by_n)
    return ns, [mean_ci(by_n[n]).mean for n in ns]


def fitted_exponent(records: Sequence[ExperimentRecord], value):
    """Power-law exponent of the seed-averaged curve (``cost ≈ a·n^b``).

    Returns ``"n/a"`` when the records span fewer than two positive points
    (a single-size grid cannot pin a growth law), so commentary stays
    renderable for any grid a user sweeps.
    """
    ns, means = mean_series_by_n(records, value)
    try:
        return round(growth_exponent(ns, means), 3)
    except ValueError:
        return "n/a"


def _reach(record: ExperimentRecord) -> float:
    """Fraction of correct nodes that decided the scenario's true gstring."""
    value = record.extras.get("decided_gstring")
    return float(value) if value is not None else record.decided_fraction


# ----------------------------------------------------------------------
# Figure 1a — almost-everywhere to everywhere
# ----------------------------------------------------------------------
@register_report_section
class Figure1aSection(ReportSection):
    """AE→E comparison: KLST-style baseline vs AER, sync and async."""

    name = "figure1a"
    title = "Figure 1a — almost-everywhere to everywhere"
    claim = (
        "AER completes in O(1) synchronous rounds (O(log n / log log n) time "
        "asynchronously) with O(log² n) amortized bits per node, but is not "
        "load-balanced; the KLST-style sampled-majority baseline needs "
        "O~(√n) bits per node yet stays load-balanced."
    )
    benchmark = "benchmarks/bench_figure1a_ae_to_e.py"
    order = 10

    group_by = ("protocol", "model", "n")
    ci_columns = ("rounds", "span", "amortized_bits", "load_imbalance", "decided_fraction")
    rate_columns = ("agreement",)
    max_columns = ("max_node_bits",)

    #: label → (display protocol, display model) used by record_row
    SERIES = {
        "klst": ("KLST-style (sampled majority)", "sync"),
        "aer-sync": ("AER", "sync non-rushing"),
        "aer-flood": ("AER (quorum-flood attack)", "sync non-rushing"),
        "aer-async": ("AER", "async (cornering)"),
    }

    @staticmethod
    def specs(
        sync_ns: Sequence[int], async_ns: Sequence[int], seeds: Sequence[int]
    ) -> Tuple[ExperimentSpec, ...]:
        """The irregular Figure-1a grid as explicit specs (n-major, seed-minor)."""
        specs: List[ExperimentSpec] = []
        for n in sync_ns:
            for seed in seeds:
                specs.append(
                    ExperimentSpec(n=n, protocol="sample_majority", seed=seed, label="klst")
                )
                specs.append(
                    ExperimentSpec(n=n, adversary="wrong_answer", seed=seed, label="aer-sync")
                )
                specs.append(
                    ExperimentSpec(n=n, adversary="quorum_flood", seed=seed, label="aer-flood")
                )
        for n in async_ns:
            for seed in seeds:
                specs.append(
                    ExperimentSpec(
                        n=n, adversary="cornering", mode="async", seed=seed, label="aer-async"
                    )
                )
        return tuple(specs)

    def plan_for(
        self, sync_ns: Sequence[int], async_ns: Sequence[int], seeds: Sequence[int]
    ) -> ExperimentPlan:
        return ExperimentPlan(ns=(), extra_specs=self.specs(sync_ns, async_ns, seeds))

    def plan(self, quick: bool = True) -> ExperimentPlan:
        # Doubling sizes on purpose: quorum sizes step with ⌈log₂ n⌉, so a
        # grid with same-⌈log⌉ sizes (e.g. 48 and 64) exaggerates the fitted
        # growth exponents the commentary quotes.
        if quick:
            return self.plan_for((32, 64, 128), (32, 64), seeds=(0, 1, 2))
        return self.plan_for((32, 64, 128, 192), (32, 64, 96), seeds=(0, 1, 2, 3, 4))

    def record_row(self, record: ExperimentRecord) -> Dict[str, object]:
        protocol, model = self.SERIES[record.spec.label]
        return {
            "protocol": protocol,
            "model": model,
            "n": record.spec.n,
            "seed": record.spec.seed,
            "decided_fraction": round(record.decided_fraction, 4),
            "agreement": int(record.agreement),
            "rounds": _round_opt(record.rounds),
            "span": _round_opt(record.span),
            "amortized_bits": round(record.amortized_bits, 1),
            "max_node_bits": record.max_node_bits,
            "load_imbalance": round(record.load_imbalance, 2),
        }

    def commentary(self, records: Sequence[ExperimentRecord]) -> List[str]:
        klst = [r for r in records if r.spec.label == "klst"]
        aer = [r for r in records if r.spec.label == "aer-sync"]
        flood = [r for r in records if r.spec.label == "aer-flood"]
        aer_exp = fitted_exponent(aer, lambda r: r.amortized_bits)
        klst_exp = fitted_exponent(klst, lambda r: r.amortized_bits)
        remarks = [
            "Bits per node: paper says AER is O(log² n), the baseline O~(√n) — "
            f"fitted power exponents over this grid: AER {aer_exp}, "
            f"KLST-style {klst_exp} (0 ≈ polylog, 0.5 ≈ √n, 1 ≈ linear).  "
            "Log factors inflate both exponents over a finite range; the "
            "asymptotic separation is the growth gap, while absolute "
            "constants at laptop scale favor the baseline.",
            "Time: AER's synchronous round count stays essentially flat in n "
            f"(fitted exponent {fitted_exponent(aer, lambda r: r.rounds)}), "
            "against the baseline's fixed 2-round query/answer pattern.",
        ]
        if klst and flood:
            klst_imbalance = max(r.load_imbalance for r in klst)
            flood_imbalance = max(r.load_imbalance for r in flood)
            remarks.append(
                "Load balance: worst max/median per-node bits is "
                f"{klst_imbalance:.2f} for the baseline vs {flood_imbalance:.2f} for AER "
                "under the quorum-flood attack — AER is not load-balanced, as the paper states."
            )
        remarks.append(f"Outcome: {self.agreement_summary(records)}.")
        return remarks


# ----------------------------------------------------------------------
# Figure 1a at scale — the vectorized backend up to n = 10⁶
# ----------------------------------------------------------------------
@register_report_section
class Figure1aScaleSection(ReportSection):
    """AER growth laws measured where they start to bind: n = 10³ … 10⁶."""

    name = "figure1a_scale"
    title = "Figure 1a at scale — AER growth laws up to n = 10⁶ (vectorized backend)"
    claim = (
        "AER's O(log² n) amortized bits and O(1) synchronous rounds are "
        "asymptotic statements; the laptop-scale grids of Figure 1a cannot "
        "separate polylog from small polynomial growth.  The vectorized "
        "whole-round engine runs the identical protocol three orders of "
        "magnitude further, where the fitted exponents visibly flatten."
    )
    # No benchmark counterpart: the backend-equivalence gates live in
    # tests/test_backend_equivalence.py and `python -m repro equivalence`.
    benchmark = ""
    order = 12

    group_by = ("n",)
    ci_columns = ("rounds", "amortized_bits", "decided_fraction")
    max_columns = ("max_node_bits",)

    def plan_for(self, ns: Sequence[int], seeds: Sequence[int]) -> ExperimentPlan:
        return ExperimentPlan(
            ns=tuple(ns),
            adversaries=("none",),
            modes=("sync",),
            seeds=tuple(seeds),
            wrong_candidate_mode="common_wrong",
            label="figure1a_scale",
            backend="vectorized",
        )

    def plan(self, quick: bool = True) -> ExperimentPlan:
        # Decade-spaced sizes: the growth fit needs leverage in log n, not
        # sample count.  Quick keeps the committed EXPERIMENTS.md plan at
        # n ≤ 10⁵ (~1 min on one core); the full document extends the fit to
        # n = 10⁶, the memory-budgeted engine's headline case (tens of
        # minutes, a few GB peak RSS under the default vec_memory_mb).
        if quick:
            return self.plan_for((1_000, 10_000, 100_000), seeds=(0,))
        return self.plan_for(
            (1_000, 4_096, 10_000, 100_000, 1_000_000), seeds=(0, 1)
        )

    def record_row(self, record: ExperimentRecord) -> Dict[str, object]:
        n = record.spec.n
        return {
            "n": n,
            "seed": record.spec.seed,
            "rounds": _round_opt(record.rounds),
            "decided_fraction": round(_reach(record), 5),
            "amortized_bits": round(record.amortized_bits, 1),
            "max_node_bits": record.max_node_bits,
            "messages_per_node": round(record.total_messages / n, 1),
            "log2_n_squared": round(math.log2(n) ** 2, 1),
        }

    def commentary(self, records: Sequence[ExperimentRecord]) -> List[str]:
        bits_exp = fitted_exponent(records, lambda r: r.amortized_bits)
        return [
            "Amortized bits per node: paper says O(log² n) — fitted power "
            f"exponent {bits_exp} over two decades of n (0 ≈ polylog; the "
            "log² n reference column grows by the same shape).  Compare the "
            "small-grid Figure 1a fit above, which log factors inflate.",
            "Rounds: fitted exponent "
            f"{fitted_exponent(records, lambda r: r.rounds)} — the O(1)-rounds "
            "claim holds unchanged at the grid's largest size.",
            "Reach below 1.0 at the largest sizes is the w.h.p. statement at "
            "work: a handful of nodes per hundred thousand draw poll lists "
            "bad enough to miss the cascade (decided_fraction quantifies it).",
            "Both engine backends produce bit-identical results on this "
            "failure-free grid (see tests/test_backend_equivalence.py); the "
            "vectorized engine is a reformulation, not an approximation.",
        ]


# ----------------------------------------------------------------------
# Figure 1b — Byzantine Agreement comparison
# ----------------------------------------------------------------------
@register_report_section
class Figure1bSection(ReportSection):
    """BA composition vs the KLST-style and quadratic compositions."""

    name = "figure1b"
    title = "Figure 1b — Byzantine Agreement"
    claim = (
        "The paper's BA (committee-tree almost-everywhere stage + AER) uses "
        "polylogarithmic time and amortized bits; composing the same "
        "ae-stage with a sampled-majority everywhere stage costs O~(√n) "
        "bits, and with all-to-all broadcast Θ(n) bits per node."
    )
    benchmark = "benchmarks/bench_figure1b_byzantine_agreement.py"
    order = 20

    group_by = ("protocol", "n")
    ci_columns = ("rounds", "amortized_bits", "knowledge_after_ae")
    rate_columns = ("agreement",)
    max_columns = ("max_node_bits",)

    SERIES = {
        "ba": "BA (ae + AER)",
        "klst": "ae + sampled majority (KLST-style)",
        "naive": "ae + all-to-all broadcast",
    }

    @staticmethod
    def specs(ns: Sequence[int], seeds: Sequence[int]) -> Tuple[ExperimentSpec, ...]:
        specs: List[ExperimentSpec] = []
        for n in ns:
            for seed in seeds:
                specs.append(ExperimentSpec(n=n, protocol="full_ba", seed=seed, label="ba"))
                specs.append(
                    ExperimentSpec(
                        n=n,
                        protocol="composed_ba",
                        seed=seed,
                        label="klst",
                        params={"strategy": "sample_majority"},
                    )
                )
                specs.append(
                    ExperimentSpec(
                        n=n,
                        protocol="composed_ba",
                        seed=seed,
                        label="naive",
                        params={"strategy": "naive"},
                    )
                )
        return tuple(specs)

    def plan_for(self, ns: Sequence[int], seeds: Sequence[int]) -> ExperimentPlan:
        return ExperimentPlan(ns=(), extra_specs=self.specs(ns, seeds))

    def plan(self, quick: bool = True) -> ExperimentPlan:
        if quick:
            return self.plan_for((48, 96, 144), seeds=(0, 1, 2))
        return self.plan_for((48, 96, 144, 192), seeds=(0, 1, 2, 3, 4))

    def record_row(self, record: ExperimentRecord) -> Dict[str, object]:
        return {
            "protocol": self.SERIES[record.spec.label],
            "n": record.spec.n,
            "seed": record.spec.seed,
            "agreement": int(record.agreement),
            "knowledge_after_ae": record.extras.get("knowledge_after_ae", "-"),
            "rounds": _round_opt(record.rounds),
            "amortized_bits": round(record.amortized_bits, 1),
            "max_node_bits": record.max_node_bits,
        }

    def commentary(self, records: Sequence[ExperimentRecord]) -> List[str]:
        by_label = {
            label: [r for r in records if r.spec.label == label] for label in self.SERIES
        }
        exponents = {
            label: fitted_exponent(group, lambda r: r.amortized_bits)
            for label, group in by_label.items()
            if group
        }
        remarks = [
            "Amortized bits, fitted power exponents: "
            + ", ".join(f"{self.SERIES[k]} {v}" for k, v in exponents.items())
            + " (0 ≈ polylog, 0.5 ≈ √n, 1 ≈ linear)."
        ]
        if "ba" in exponents and "naive" in exponents:
            gap = round(exponents["naive"] - exponents["ba"], 3)
            remarks.append(
                f"BA's bits grow slower than the all-to-all composition's "
                f"(exponent gap {gap}); the benchmark asserts this ordering "
                "over its larger grid."
            )
        ba = by_label.get("ba", [])
        if ba:
            remarks.append(
                "BA's total round count stays flat in n "
                f"(fitted exponent {fitted_exponent(ba, lambda r: r.rounds)})."
            )
        remarks.append(f"Outcome: {self.agreement_summary(records)}.")
        return remarks


# ----------------------------------------------------------------------
# Lemma 3 — push-phase cost per correct node (traced)
# ----------------------------------------------------------------------
@register_report_section
class Lemma3Section(ReportSection):
    """Push bits per correct node stay O(s · log n) under the push flood."""

    name = "lemma3"
    title = "Lemma 3 — push phase costs O(s · log n) bits per correct node"
    claim = (
        "Every correct node sends O(s · log n) bits during the push phase "
        "(s = |gstring| = O(log n)) — a negligible share of the total — and "
        "flooding cannot change that, because nodes never react to a push."
    )
    benchmark = "benchmarks/bench_lemma3_push_cost.py"
    order = 22

    group_by = ("n", "s_log_n_reference")
    ci_columns = ("push_bits_max", "push_bits_mean", "total_amortized_bits")
    rate_columns = ("agreement",)
    max_columns = ("push_msgs_max",)

    def plan_for(self, ns: Sequence[int], seeds: Sequence[int]) -> ExperimentPlan:
        return ExperimentPlan(
            ns=tuple(ns),
            adversaries=("push_flood",),
            modes=("sync",),
            seeds=tuple(seeds),
            label="lemma3",
            trace="summary",
        )

    def plan(self, quick: bool = True) -> ExperimentPlan:
        if quick:
            return self.plan_for((32, 64, 128), seeds=(3,))
        return self.plan_for((32, 64, 128, 192), seeds=(3, 4, 5))

    def record_row(self, record: ExperimentRecord) -> Dict[str, object]:
        from repro.core.config import AERConfig

        push = _trace_block(record, "push")
        n = record.spec.n
        config = AERConfig.for_system(n, quorum_multiplier=record.spec.quorum_multiplier)
        return {
            "n": n,
            "seed": record.spec.seed,
            "push_bits_max": push["max_node_bits"],
            "push_bits_mean": round(float(push["mean_node_bits"]), 1),  # type: ignore[arg-type]
            "push_msgs_max": push["max_node_messages"],
            "s_log_n_reference": config.string_length * config.quorum_size,
            "total_amortized_bits": round(record.amortized_bits, 1),
            "agreement": int(record.agreement),
        }

    def commentary(self, records: Sequence[ExperimentRecord]) -> List[str]:
        rows = [self.record_row(r) for r in records]
        worst_factor = max(
            row["push_bits_max"] / row["s_log_n_reference"] for row in rows  # type: ignore[operator]
        )
        worst_share = max(
            row["push_bits_mean"] / row["total_amortized_bits"] for row in rows  # type: ignore[operator]
        )
        return [
            "Push bits per node grow sub-linearly: fitted power exponent "
            f"{fitted_exponent(records, lambda r: _trace_block(r, 'push')['max_node_bits'])} "
            "(the s·d reference itself grows like log² n).",
            f"Worst max-push-bits / (s·d) factor observed: {worst_factor:.2f} — "
            "a small constant, matching the lemma's O(·) bound.",
            "The push phase is a negligible share of the total cost: at most "
            f"{100 * worst_share:.1f}% of the amortized per-node bits in any run.",
            f"Outcome: {self.agreement_summary(records)}.",
        ]


# ----------------------------------------------------------------------
# Lemma 4 — candidate lists sum to O(n) (traced)
# ----------------------------------------------------------------------
@register_report_section
class Lemma4Section(ReportSection):
    """Σ|L_x| stays linear under the strongest (quorum-targeted) flood."""

    name = "lemma4"
    title = "Lemma 4 — candidate lists of correct nodes sum to O(n)"
    claim = (
        "Even against the quorum-targeted flooding adversary — which forces "
        "strings into every victim whose push quorum it controls — the "
        "candidate lists of the correct nodes sum to O(n): amortized O(1) "
        "strings per node."
    )
    benchmark = "benchmarks/bench_lemma4_candidate_lists.py"
    order = 24

    group_by = ("n",)
    ci_columns = (
        "sum_candidate_lists",
        "sum_over_n",
        "strings_forced_by_adversary",
        "pushes_filtered",
    )
    rate_columns = ("agreement",)
    max_columns = ("largest_single_list",)

    def plan_for(self, ns: Sequence[int], seeds: Sequence[int]) -> ExperimentPlan:
        return ExperimentPlan(
            ns=tuple(ns),
            adversaries=("quorum_flood",),
            modes=("sync",),
            seeds=tuple(seeds),
            wrong_candidate_mode="common_wrong",
            label="lemma4",
            trace="summary",
        )

    def plan(self, quick: bool = True) -> ExperimentPlan:
        if quick:
            return self.plan_for((32, 64, 128), seeds=(4,))
        return self.plan_for((32, 64, 128, 192), seeds=(4, 5, 6))

    def record_row(self, record: ExperimentRecord) -> Dict[str, object]:
        candidates = _trace_block(record, "candidates")
        events = _trace_block(record, "events")
        n = record.spec.n
        return {
            "n": n,
            "seed": record.spec.seed,
            "sum_candidate_lists": candidates["total"],
            "sum_over_n": round(float(candidates["total"]) / n, 2),  # type: ignore[arg-type]
            "largest_single_list": candidates["max"],
            "strings_forced_by_adversary": record.extras.get("strings_forced", 0),
            "pushes_filtered": events.get("push_ignored", 0),
            "agreement": int(record.agreement),
        }

    def commentary(self, records: Sequence[ExperimentRecord]) -> List[str]:
        rows = [self.record_row(r) for r in records]
        ratios = [float(row["sum_over_n"]) for row in rows]  # type: ignore[arg-type]
        return [
            f"Σ|L_x| / n stays flat: between {min(ratios):.2f} and {max(ratios):.2f} "
            "over the grid — the amortized-O(1)-strings-per-node statement.",
            "The adversary does force strings (`strings_forced_by_adversary`), "
            "but the Section 3.1.1 filter drops the rest "
            "(`pushes_filtered` counts the discarded pushes), so the total "
            "damage stays linear while agreement survives.",
            f"Outcome: {self.agreement_summary(records)}.",
        ]


# ----------------------------------------------------------------------
# Lemma 5 — gstring reaches every candidate list (traced)
# ----------------------------------------------------------------------
@register_report_section
class Lemma5Section(ReportSection):
    """W.h.p. every correct node holds gstring after the push phase."""

    name = "lemma5"
    title = "Lemma 5 — w.h.p. gstring reaches every correct candidate list"
    claim = (
        "After the push phase, with probability 1 − n^{-c'}, every correct "
        "node has gstring in its candidate list L_x — the knowledgeable "
        "majority pushes it through a majority of every I(gstring, x)."
    )
    benchmark = "benchmarks/bench_lemma5_push_reach.py"
    order = 26

    group_by = ("n",)
    ci_columns = ("node_reach",)
    rate_columns = ("all_reached", "agreement")

    def plan_for(self, n: int, seeds: Sequence[int]) -> ExperimentPlan:
        return ExperimentPlan(
            ns=(n,),
            adversaries=("wrong_answer",),
            modes=("sync",),
            seeds=tuple(seeds),
            label="lemma5",
            trace="summary",
        )

    def plan(self, quick: bool = True) -> ExperimentPlan:
        if quick:
            return self.plan_for(64, seeds=tuple(range(8)))
        return self.plan_for(64, seeds=tuple(range(12)))

    def record_row(self, record: ExperimentRecord) -> Dict[str, object]:
        marked = _trace_block(record, "marked")
        gstring = marked.get("gstring")
        if gstring is None:
            raise ValueError(
                f"record {record.spec.key!r} has no marked 'gstring' trace entry"
            )
        holders = int(gstring["holders"])  # type: ignore[index]
        return {
            "n": record.spec.n,
            "seed": record.spec.seed,
            "initial_holders": gstring["initial"],  # type: ignore[index]
            "accepted_via_push": gstring["accepted"],  # type: ignore[index]
            "node_reach": round(holders / record.correct_count, 4),
            "all_reached": int(holders == record.correct_count),
            "agreement": int(record.agreement),
        }

    def commentary(self, records: Sequence[ExperimentRecord]) -> List[str]:
        rows = [self.record_row(r) for r in records]
        estimate = success_estimate_from_outcomes(bool(row["all_reached"]) for row in rows)
        mean_reach = mean_ci([float(row["node_reach"]) for row in rows])  # type: ignore[arg-type]
        return [
            f"Full reach (every correct node holds gstring) in "
            f"{estimate.successes}/{estimate.trials} independent instances "
            f"(rate {estimate.rate:.3f}, 95% CI [{estimate.low:.3f}, {estimate.high:.3f}]).",
            f"Node-level reach is {mean_reach.format(4)} — the w.h.p. statement "
            "at finite n: a straggler is a node whose push quorum drew "
            "unusually many corrupted members.",
        ]


# ----------------------------------------------------------------------
# Lemma 6 — asynchronous latency under the overload attack
# ----------------------------------------------------------------------
@register_report_section
class Lemma6Section(ReportSection):
    """Async pull latency vs the log n / log log n reference."""

    name = "lemma6"
    title = "Lemma 6 — asynchronous latency under the overload (cornering) attack"
    claim = (
        "Against the delay- and overload-maximising asynchronous adversary, "
        "every poll completes within O(log n / log log n) normalized time."
    )
    benchmark = "benchmarks/bench_lemma6_async_pull_latency.py"
    order = 30

    group_by = ("n",)
    ci_columns = ("span_normalized", "log_over_loglog", "span_over_reference", "decided_fraction")
    rate_columns = ("agreement",)

    def plan_for(self, ns: Sequence[int], seeds: Sequence[int]) -> ExperimentPlan:
        return ExperimentPlan(
            ns=tuple(ns),
            adversaries=("cornering",),
            modes=("async",),
            seeds=tuple(seeds),
            label="lemma6",
            params={"delay_policy": "constant", "delay_params": {"value": 1.0}},
        )

    def plan(self, quick: bool = True) -> ExperimentPlan:
        if quick:
            return self.plan_for((24, 32, 48), seeds=(0, 1, 2))
        return self.plan_for((32, 64, 96), seeds=(0, 1, 2, 3, 4))

    def record_row(self, record: ExperimentRecord) -> Dict[str, object]:
        n = record.spec.n
        reference = math.log2(n) / math.log2(math.log2(n))
        span = record.span if record.span is not None else 0.0
        return {
            "n": n,
            "seed": record.spec.seed,
            "span_normalized": round(span, 2),
            "log_over_loglog": round(reference, 2),
            "span_over_reference": round(span / reference, 2),
            "agreement": int(record.agreement),
            "decided_fraction": round(record.decided_fraction, 4),
        }

    def commentary(self, records: Sequence[ExperimentRecord]) -> List[str]:
        worst = max(self.record_row(r)["span_over_reference"] for r in records)
        return [
            "Span grows far slower than n "
            f"(fitted exponent {fitted_exponent(records, lambda r: r.span)}; "
            "the reference curve's own exponent over this range is ≈ 0.2).",
            f"Worst span / (log n / log log n) ratio observed: {worst:.2f} — "
            "a small constant, matching the lemma's O(·) bound.",
            f"Outcome: {self.agreement_summary(records)}.",
        ]


# ----------------------------------------------------------------------
# Lemma 7 — decision safety, w.h.p. reach
# ----------------------------------------------------------------------
@register_report_section
class Lemma7Section(ReportSection):
    """No wrong decisions ever; gstring decided essentially everywhere."""

    name = "lemma7"
    title = "Lemma 7 — decisions are gstring, w.h.p. everywhere"
    claim = (
        "With high probability every correct node decides, and any node that "
        "decides, decides gstring — a wrong decision would require a "
        "Byzantine-majority poll list for a freshly drawn random label."
    )
    benchmark = "benchmarks/bench_lemma7_decision_safety.py"
    order = 40

    def plan_for(self, n: int, seeds: Sequence[int]) -> ExperimentPlan:
        return ExperimentPlan(
            ns=(n,),
            adversaries=("wrong_answer",),
            modes=("sync",),
            seeds=tuple(seeds),
            label="lemma7",
        )

    def plan(self, quick: bool = True) -> ExperimentPlan:
        if quick:
            return self.plan_for(48, seeds=tuple(range(6)))
        return self.plan_for(64, seeds=tuple(range(10)))

    def record_row(self, record: ExperimentRecord) -> Dict[str, object]:
        reach = _reach(record)
        wrong = record.decided_count - round(reach * record.correct_count)
        return {
            "n": record.spec.n,
            "seed": record.spec.seed,
            "agreement": int(record.agreement),
            "reach": round(reach, 4),
            "wrong_decisions": wrong,
        }

    def rows(self, records: Sequence[ExperimentRecord]) -> List[Dict[str, object]]:
        """One Wilson-interval summary row per system size."""
        out: List[Dict[str, object]] = []
        for n in sorted({r.spec.n for r in records}):
            group = [self.record_row(r) for r in records if r.spec.n == n]
            estimate = success_estimate_from_outcomes(bool(row["agreement"]) for row in group)
            out.append(
                {
                    "n": n,
                    "trials": estimate.trials,
                    "full_agreement": estimate.successes,
                    "rate": round(estimate.rate, 4),
                    "ci_low": round(estimate.low, 4),
                    "ci_high": round(estimate.high, 4),
                    "wrong_decisions_total": sum(row["wrong_decisions"] for row in group),
                    "mean_reach": mean_ci([row["reach"] for row in group]).format(4),
                }
            )
        return out

    def commentary(self, records: Sequence[ExperimentRecord]) -> List[str]:
        wrong_total = sum(self.record_row(r)["wrong_decisions"] for r in records)
        return [
            f"Safety: {wrong_total} wrong decisions across all trials "
            "(the paper's argument makes a wrong decision essentially impossible).",
            "Reach is a w.h.p. statement at finite n: single-node stragglers "
            "(a correct node drawing a bad poll list) occur with small but "
            "non-zero probability at these sizes, which the Wilson interval quantifies.",
        ]


# ----------------------------------------------------------------------
# Lemmas 8-9 — synchronous constant time, O~(n) messages
# ----------------------------------------------------------------------
@register_report_section
class Lemma8Section(ReportSection):
    """Constant rounds and quasi-linear messages against a non-rushing adversary."""

    name = "lemma8"
    title = "Lemmas 8-9 — synchronous non-rushing: constant rounds, O~(n) messages"
    claim = (
        "Against a non-rushing synchronous adversary every poll is answered "
        "in a constant number of steps, the protocol finishes in O(1) rounds "
        "and the total number of messages is O~(n)."
    )
    benchmark = "benchmarks/bench_lemma8_sync_pull_latency.py"
    order = 50

    group_by = ("n",)
    ci_columns = ("rounds", "messages_per_node", "decided_fraction")
    rate_columns = ("agreement",)
    max_columns = ("latest_decision_round",)

    def plan_for(self, ns: Sequence[int], seeds: Sequence[int]) -> ExperimentPlan:
        return ExperimentPlan(
            ns=tuple(ns),
            adversaries=("wrong_answer",),
            modes=("sync",),
            seeds=tuple(seeds),
            label="lemma8",
        )

    def plan(self, quick: bool = True) -> ExperimentPlan:
        if quick:
            return self.plan_for((32, 48, 64, 96), seeds=(0, 1, 2))
        return self.plan_for((32, 64, 128, 192), seeds=(0, 1, 2, 3, 4))

    def record_row(self, record: ExperimentRecord) -> Dict[str, object]:
        return {
            "n": record.spec.n,
            "seed": record.spec.seed,
            "rounds": record.rounds,
            "latest_decision_round": (
                record.max_decision_time if record.max_decision_time is not None else -1
            ),
            "messages_per_node": round(record.total_messages / record.spec.n, 1),
            "agreement": int(record.agreement),
            "decided_fraction": round(record.decided_fraction, 4),
        }

    def commentary(self, records: Sequence[ExperimentRecord]) -> List[str]:
        return [
            "Rounds: paper says O(1) — fitted power exponent "
            f"{fitted_exponent(records, lambda r: r.rounds)} "
            "(a handful of nodes may decide one cascade later, so the count "
            "fluctuates but does not grow with n).",
            "Messages per node: paper says O~(n) total, i.e. polylog per node — "
            "fitted exponent "
            f"{fitted_exponent(records, lambda r: r.total_messages / r.spec.n)}.",
            f"Outcome: {self.agreement_summary(records)}.",
        ]


# ----------------------------------------------------------------------
# Lemma 10 — asynchronous end-to-end
# ----------------------------------------------------------------------
@register_report_section
class Lemma10Section(ReportSection):
    """Async end-to-end: O(log n / log log n) time, O~(n) messages."""

    name = "lemma10"
    title = "Lemma 10 — asynchronous end-to-end time and messages"
    claim = (
        "Under the asynchronous scheduler the protocol completes in "
        "O(log n / log log n) normalized time using O~(n) messages in total."
    )
    benchmark = "benchmarks/bench_lemma10_async_end_to_end.py"
    order = 60

    group_by = ("n",)
    ci_columns = ("span_normalized", "log_over_loglog", "messages_per_node", "decided_fraction")
    rate_columns = ("agreement",)

    def plan_for(self, ns: Sequence[int], seeds: Sequence[int]) -> ExperimentPlan:
        return ExperimentPlan(
            ns=tuple(ns),
            adversaries=("slow_knowledgeable",),
            modes=("async",),
            seeds=tuple(seeds),
            label="lemma10",
        )

    def plan(self, quick: bool = True) -> ExperimentPlan:
        if quick:
            return self.plan_for((32, 48, 64), seeds=(0, 1, 2))
        return self.plan_for((32, 64, 96), seeds=(0, 1, 2, 3, 4))

    def record_row(self, record: ExperimentRecord) -> Dict[str, object]:
        n = record.spec.n
        reference = math.log2(n) / math.log2(math.log2(n))
        return {
            "n": n,
            "seed": record.spec.seed,
            "span_normalized": round(record.span if record.span is not None else -1, 2),
            "log_over_loglog": round(reference, 2),
            "messages_per_node": round(record.total_messages / n, 1),
            "agreement": int(record.agreement),
            "decided_fraction": round(record.decided_fraction, 4),
        }

    def commentary(self, records: Sequence[ExperimentRecord]) -> List[str]:
        return [
            "Span: fitted power exponent "
            f"{fitted_exponent(records, lambda r: r.span)} — far below linear, "
            "tracking the log n / log log n reference printed next to it.",
            "Messages per node: fitted exponent "
            f"{fitted_exponent(records, lambda r: r.total_messages / r.spec.n)} "
            "(sub-linear, the O~(n)-total claim).",
            f"Outcome: {self.agreement_summary(records)}.",
        ]


# ----------------------------------------------------------------------
# Adversary matrix — coverage across every registered attack
# ----------------------------------------------------------------------
@register_report_section
class AdversaryMatrixSection(ReportSection):
    """Agreement under every built-in adversary, both schedulers."""

    name = "adversary_matrix"
    title = "Adversary matrix — agreement under every built-in attack"
    claim = (
        "Theorem 1 is adversary-agnostic: agreement must survive any "
        "t < (1/3 − ε)n Byzantine strategy, under both schedulers.  This "
        "matrix runs every registered attack strategy on the same scenarios."
    )
    # No benchmark counterpart: the per-adversary shape assertions live in
    # the tier-1 suite (tests/test_adversary.py), not in benchmarks/.
    benchmark = ""
    order = 70

    #: pinned to the built-ins so the committed document is stable; user
    #: registrations show up by passing their names to plan_for explicitly
    BUILTIN_ADVERSARIES = (
        "none",
        "silent",
        "noise",
        "equivocate",
        "wrong_answer",
        "push_flood",
        "quorum_flood",
        "cornering",
        "slow_knowledgeable",
    )

    group_by = ("adversary", "mode", "n")
    ci_columns = ("time", "amortized_bits", "decided_fraction")
    rate_columns = ("agreement",)

    def plan_for(
        self,
        n: int,
        seeds: Sequence[int],
        adversaries: Sequence[str] = BUILTIN_ADVERSARIES,
    ) -> ExperimentPlan:
        return ExperimentPlan(
            ns=(n,),
            adversaries=tuple(adversaries),
            modes=("sync", "async"),
            seeds=tuple(seeds),
            label="adversary_matrix",
        )

    def plan(self, quick: bool = True) -> ExperimentPlan:
        if quick:
            return self.plan_for(32, seeds=(0, 1))
        return self.plan_for(64, seeds=(0, 1, 2))

    def record_row(self, record: ExperimentRecord) -> Dict[str, object]:
        spec = record.spec
        time = record.rounds if record.rounds is not None else record.span
        return {
            "adversary": spec.adversary,
            "mode": spec.mode + ("-rushing" if spec.rushing else ""),
            "n": spec.n,
            "seed": spec.seed,
            "agreement": int(record.agreement),
            "decided_fraction": round(record.decided_fraction, 4),
            "time": _round_opt(time),
            "amortized_bits": round(record.amortized_bits, 1),
        }

    def commentary(self, records: Sequence[ExperimentRecord]) -> List[str]:
        failing = sorted(
            {r.spec.adversary for r in records if not r.agreement}
        )
        remarks = [f"Coverage: {self.agreement_summary(records)}."]
        if failing:
            remarks.append(
                "Strategies with at least one non-agreement run (finite-n "
                f"w.h.p. stragglers): {', '.join(failing)}."
            )
        else:
            remarks.append("Every strategy was defeated in every run at these sizes.")
        return remarks


# ----------------------------------------------------------------------
# Degraded networks — the fault-injection frontier (PR 8)
# ----------------------------------------------------------------------
@register_report_section
class DegradedNetworksSection(ReportSection):
    """Agreement under message loss, churn and heavy-tailed delays."""

    name = "degraded_networks"
    title = "Degraded networks — loss, churn and heavy-tailed delays"
    claim = (
        "The paper's guarantees assume reliable (if adversarially scheduled) "
        "delivery.  This grid measures how AER degrades when that assumption "
        "is broken by injected faults: probabilistic message loss and "
        "crash-recovery churn under the synchronous scheduler, and message "
        "loss combined with heavy-tailed (Pareto, lognormal) delay families "
        "under the asynchronous one.  The fault layer is off by default and "
        "provably free when off (the golden matrix is the oracle)."
    )
    benchmark = "benchmarks/bench_degraded_networks.py"
    order = 72

    #: (loss_rate, churn_rate) grid for the synchronous half
    SYNC_GRID = ((0.0, 0.0), (0.05, 0.0), (0.15, 0.0), (0.0, 0.02), (0.05, 0.02))
    #: (delay_policy, loss_rate) grid for the asynchronous half
    ASYNC_GRID = (
        ("random", 0.0), ("random", 0.1),
        ("pareto", 0.0), ("pareto", 0.1),
        ("lognormal", 0.0), ("lognormal", 0.1),
    )

    def plan_for(self, n: int, seeds: Sequence[int]) -> ExperimentPlan:
        specs = []
        for seed in seeds:
            for loss, churn in self.SYNC_GRID:
                faults: Dict[str, object] = {}
                if loss:
                    faults["loss_rate"] = loss
                if churn:
                    faults["churn_rate"] = churn
                specs.append(
                    ExperimentSpec(
                        n=n, mode="sync", seed=seed, faults=faults,
                        label="degraded_networks",
                    )
                )
            for policy, loss in self.ASYNC_GRID:
                specs.append(
                    ExperimentSpec(
                        n=n, mode="async", seed=seed,
                        params={"delay_policy": policy} if policy != "random" else {},
                        faults={"loss_rate": loss} if loss else {},
                        label="degraded_networks",
                    )
                )
        return ExperimentPlan(ns=(), extra_specs=tuple(specs))

    def plan(self, quick: bool = True) -> ExperimentPlan:
        if quick:
            return self.plan_for(32, seeds=(0, 1))
        return self.plan_for(64, seeds=(0, 1, 2))

    @staticmethod
    def _fault_label(spec: ExperimentSpec) -> str:
        faults = spec.faults_dict()
        if not faults:
            return "none"
        parts = []
        for key in ("loss_rate", "churn_rate"):
            if key in faults:
                parts.append(f"{key.split('_')[0]}={faults[key]}")
        return ",".join(parts) if parts else "custom"

    def record_row(self, record: ExperimentRecord) -> Dict[str, object]:
        spec = record.spec
        time = record.rounds if record.rounds is not None else record.span
        delay = dict(spec.params_dict()).get("delay_policy") or (
            "random" if spec.mode == "async" else "-"
        )
        return {
            "mode": spec.mode,
            "delay": delay,
            "faults": self._fault_label(spec),
            "n": spec.n,
            "seed": spec.seed,
            "agreement": int(record.agreement),
            "decided_fraction": round(record.decided_fraction, 4),
            "time": _round_opt(time),
            "amortized_bits": round(record.amortized_bits, 1),
        }

    group_by = ("mode", "delay", "faults", "n")
    ci_columns = ("time", "amortized_bits", "decided_fraction")
    rate_columns = ("agreement",)

    def commentary(self, records: Sequence[ExperimentRecord]) -> List[str]:
        clean = [r for r in records if not r.spec.faults_dict()]
        faulted = [r for r in records if r.spec.faults_dict()]
        remarks = [
            f"Fault-free baseline: {self.agreement_summary(clean)}.",
            f"Under injected faults: {self.agreement_summary(faulted)}.",
        ]
        degraded = sorted(
            {self._fault_label(r.spec) for r in faulted if not r.agreement}
        )
        if degraded:
            remarks.append(
                "Schedules with at least one non-agreement run: "
                f"{', '.join(degraded)} — AER has no retransmission layer, "
                "so sustained loss or churn directly erodes quorum coverage."
            )
        return remarks


# ----------------------------------------------------------------------
# Property 2 — expansion of the poll-list sampler J
# ----------------------------------------------------------------------
@register_report_section
class Property2Section(ReportSection):
    """No small family keeps more than a third of its poll-list edges internal."""

    name = "property2"
    title = "Property 2 — poll lists of small families expand"
    claim = (
        "W.h.p. no family L of ≤ n/log n labelled nodes keeps more than a "
        "third of its poll-list edges inside its own node set: "
        "P[|∂L| ≤ (2/3)·d·|L|] = o(2^{-n}) in the random digraph model of "
        "Section 4.1 — the property that stops the cornering adversary from "
        "confining honest polls to an overloaded region."
    )
    benchmark = "benchmarks/bench_property2_sampler_border.py"
    order = 65

    group_by = ("n", "family_size")
    ci_columns = (
        "worst_ratio_random_families",
        "worst_ratio_greedy_attack",
        "model_max_failure_probability",
    )
    rate_columns = ("random_families_expand",)

    def plan_for(self, ns: Sequence[int], seeds: Sequence[int]) -> ExperimentPlan:
        return ExperimentPlan(
            ns=tuple(ns),
            protocols=("sampler_border",),
            seeds=tuple(seeds),
            label="property2",
        )

    def plan(self, quick: bool = True) -> ExperimentPlan:
        if quick:
            return self.plan_for((64, 128), seeds=(9,))
        return self.plan_for((64, 128, 192), seeds=(9, 10, 11))

    def record_row(self, record: ExperimentRecord) -> Dict[str, object]:
        extras = record.extras
        return {
            "n": record.spec.n,
            "seed": record.spec.seed,
            "family_size": extras["family_size"],
            "worst_ratio_random_families": round(
                float(extras["worst_ratio_random_families"]), 3  # type: ignore[arg-type]
            ),
            "worst_ratio_greedy_attack": round(
                float(extras["worst_ratio_greedy_attack"]), 3  # type: ignore[arg-type]
            ),
            "property2_threshold": round(2 / 3, 3),
            "model_max_failure_probability": extras["model_max_failure_probability"],
            "random_families_expand": int(record.agreement),
        }

    def commentary(self, records: Sequence[ExperimentRecord]) -> List[str]:
        rows = [self.record_row(r) for r in records]
        worst_random = min(float(row["worst_ratio_random_families"]) for row in rows)  # type: ignore[arg-type]
        worst_greedy = min(float(row["worst_ratio_greedy_attack"]) for row in rows)  # type: ignore[arg-type]
        model_worst = max(
            float(row["model_max_failure_probability"]) for row in rows  # type: ignore[arg-type]
        )
        return [
            "Random digraph model (the Section 4.1 computation, Monte-Carlo): "
            f"worst observed failure probability {model_worst} against the "
            "paper's o(2^{-n}) bound — no failing family was ever sampled.",
            f"Concrete keyed-hash sampler J: random families expand to at worst "
            f"{worst_random:.3f} (threshold 2/3 ≈ 0.667); the greedy "
            f"label-shopping attack reaches {worst_greedy:.3f} — it can graze "
            "the threshold at these small n (d = O(log n) is asymptotic) but "
            "cannot collapse the expansion.",
        ]


# ----------------------------------------------------------------------
# Ablation — the Algorithm 3 answer budget (traced)
# ----------------------------------------------------------------------
@register_report_section
class AblationFiltersSection(ReportSection):
    """The log² n answer budget is what tames the overload attack."""

    name = "ablation_filters"
    title = "Ablation — the Algorithm 3 answer budget under the cornering attack"
    claim = (
        "A poll-list member answers at most log² n requests before deciding. "
        "The budget caps the overload adversary's damage; an aggressively "
        "small budget instead starves honest polls — which is exactly why "
        "the filter threshold is log² n and not a constant."
    )
    benchmark = "benchmarks/bench_ablation_filters.py"
    order = 80

    #: label → (display regime, budget resolver) for the three swept budgets
    REGIMES = ("tiny", "paper", "unlimited")

    group_by = ("regime", "answer_budget", "n")
    ci_columns = ("reach", "span", "amortized_bits", "answers_deferred")
    max_columns = ("max_node_bits",)

    @staticmethod
    def budgets_for(n: int) -> Dict[str, int]:
        """The swept budgets at size ``n``: tiny, the paper's log² n, unlimited."""
        from repro.core.config import AERConfig

        return {"tiny": 2, "paper": AERConfig.for_system(n).answer_budget, "unlimited": 10_000}

    def plan_for(self, n: int, seeds: Sequence[int]) -> ExperimentPlan:
        budgets = self.budgets_for(n)
        specs = tuple(
            ExperimentSpec(
                n=n,
                adversary="cornering",
                mode="async",
                seed=seed,
                label=f"budget-{regime}",
                trace="summary",
                params={"answer_budget": budgets[regime]},
            )
            for seed in seeds
            for regime in self.REGIMES
        )
        return ExperimentPlan(ns=(), extra_specs=specs)

    def plan(self, quick: bool = True) -> ExperimentPlan:
        if quick:
            return self.plan_for(64, seeds=(10,))
        return self.plan_for(64, seeds=(10, 11, 12))

    def record_row(self, record: ExperimentRecord) -> Dict[str, object]:
        polls = _trace_block(record, "polls")
        reach = record.extras.get("decided_gstring")
        return {
            "regime": record.spec.label.replace("budget-", ""),
            "answer_budget": record.spec.params_dict()["answer_budget"],
            "n": record.spec.n,
            "seed": record.spec.seed,
            "reach": round(float(reach), 4) if reach is not None else "-",
            "span": _round_opt(record.span),
            "amortized_bits": round(record.amortized_bits, 1),
            "max_node_bits": record.max_node_bits,
            "answers_deferred": polls["budget_exhausted_events"],
            "budget_limited_nodes": polls["budget_exhausted_nodes"],
        }

    def commentary(self, records: Sequence[ExperimentRecord]) -> List[str]:
        rows = [self.record_row(r) for r in records]

        def mean(regime: str, column: str) -> float:
            return regime_mean(rows, regime, column)

        return [
            "Liveness: the paper's log² n budget reaches "
            f"{mean('paper', 'reach'):.3f} of the correct nodes (unlimited: "
            f"{mean('unlimited', 'reach'):.3f}), while the tiny budget "
            f"collapses reach to {mean('tiny', 'reach'):.3f} — the filter "
            "must scale with the poll volume, not be a constant.",
            "Load: lifting the budget entirely does not reduce the worst "
            "per-node bits (the flood is absorbed either way); what the "
            "budget buys is bounded *answering work* before decision — "
            f"{mean('paper', 'answers_deferred'):.0f} deferred answers per "
            "run under the paper's budget.",
        ]


# ----------------------------------------------------------------------
# Ablation — quorum size multiplier
# ----------------------------------------------------------------------
@register_report_section
class AblationQuorumSection(ReportSection):
    """The d = Θ(log n) constant trades reliability against communication."""

    name = "ablation_quorum"
    title = "Ablation — quorum size multiplier vs reach and cost"
    claim = (
        "The paper prescribes d = Θ(log n) quorums; the constant decides "
        "both the failure probability of the w.h.p. claims and the "
        "(cubic-in-d) message cost of the pull phase.  The default "
        "multiplier 2 is a sensible middle ground."
    )
    benchmark = "benchmarks/bench_ablation_quorum_size.py"
    order = 82

    MULTIPLIERS = (1.0, 2.0, 3.0)

    group_by = ("n", "quorum_multiplier", "quorum_size")
    ci_columns = ("reach", "amortized_bits")
    rate_columns = ("agreement",)

    def plan_for(
        self, n: int, seeds: Sequence[int], multipliers: Sequence[float] = MULTIPLIERS
    ) -> ExperimentPlan:
        specs = tuple(
            ExperimentSpec(
                n=n,
                adversary="wrong_answer",
                seed=seed,
                quorum_multiplier=multiplier,
                label="ablation_quorum",
            )
            for multiplier in multipliers
            for seed in seeds
        )
        return ExperimentPlan(ns=(), extra_specs=specs)

    def plan(self, quick: bool = True) -> ExperimentPlan:
        if quick:
            return self.plan_for(64, seeds=(0, 1, 2))
        return self.plan_for(64, seeds=(0, 1, 2, 3, 4))

    def record_row(self, record: ExperimentRecord) -> Dict[str, object]:
        from repro.core.config import AERConfig

        spec = record.spec
        config = AERConfig.for_system(spec.n, quorum_multiplier=spec.quorum_multiplier)
        reach = record.extras.get("decided_gstring")
        return {
            "n": spec.n,
            "quorum_multiplier": spec.quorum_multiplier,
            "quorum_size": config.quorum_size,
            "seed": spec.seed,
            "reach": round(float(reach), 4) if reach is not None else "-",
            "amortized_bits": round(record.amortized_bits, 1),
            "agreement": int(record.agreement),
        }

    def commentary(self, records: Sequence[ExperimentRecord]) -> List[str]:
        rows = [self.record_row(r) for r in records]
        by_multiplier: Dict[float, List[float]] = {}
        for row in rows:
            by_multiplier.setdefault(float(row["quorum_multiplier"]), []).append(  # type: ignore[arg-type]
                float(row["amortized_bits"])  # type: ignore[arg-type]
            )
        means = {m: sum(v) / len(v) for m, v in sorted(by_multiplier.items())}
        smallest, largest = min(means), max(means)
        return [
            "Cost is steep in d (the pull phase is cubic in the quorum size): "
            + ", ".join(f"×{m:g} → {mean:.0f} bits/node" for m, mean in means.items())
            + f" — a {means[largest] / max(1.0, means[smallest]):.1f}× spread "
            "across the swept multipliers.",
            "Reliability buys the difference: the small-quorum configuration "
            "is the one allowed to degrade (its majorities are the easiest "
            "for the adversary's wrong answers to dent), which is why the "
            "default multiplier is 2 and not 1.",
        ]


# ----------------------------------------------------------------------
# Ablation — scheduling power vs Byzantine traffic (traced)
# ----------------------------------------------------------------------
@register_report_section
class AblationSchedulerSection(ReportSection):
    """Attribute the asynchronous slowdown: delays vs overload traffic."""

    name = "ablation_scheduler"
    title = "Ablation — asynchronous slowdown: scheduling power vs Byzantine traffic"
    claim = (
        "Lemma 6's asynchronous bound combines two adversarial powers — "
        "message scheduling (delays) and Byzantine traffic (overload).  "
        "Running the same scenario under four regimes attributes the "
        "slowdown: delays dominate the time cost, traffic dominates the "
        "bit cost."
    )
    benchmark = "benchmarks/bench_ablation_scheduler.py"
    order = 84

    #: spec label → (adversary registry name, display regime)
    REGIMES = {
        "benign": ("none", "random delays, no adversary"),
        "delays": ("slow_knowledgeable", "worst-case delays only"),
        "traffic": ("cornering_nodelay", "overload traffic only"),
        "full": ("cornering", "overload + worst-case delays"),
    }

    group_by = ("regime", "n")
    ci_columns = ("span", "amortized_bits", "reach", "answers_deferred")

    def plan_for(self, n: int, seeds: Sequence[int]) -> ExperimentPlan:
        specs = tuple(
            ExperimentSpec(
                n=n,
                adversary=adversary,
                mode="async",
                seed=seed,
                label=label,
                trace="summary",
            )
            for seed in seeds
            for label, (adversary, _display) in self.REGIMES.items()
        )
        return ExperimentPlan(ns=(), extra_specs=specs)

    def plan(self, quick: bool = True) -> ExperimentPlan:
        if quick:
            return self.plan_for(64, seeds=(12,))
        return self.plan_for(64, seeds=(12, 13, 14))

    def record_row(self, record: ExperimentRecord) -> Dict[str, object]:
        polls = _trace_block(record, "polls")
        reach = record.extras.get("decided_gstring")
        return {
            "regime": self.REGIMES[record.spec.label][1],
            "n": record.spec.n,
            "seed": record.spec.seed,
            "span": _round_opt(record.span),
            "amortized_bits": round(record.amortized_bits, 1),
            "reach": round(float(reach), 4) if reach is not None else "-",
            "answers_deferred": polls["budget_exhausted_events"],
        }

    def commentary(self, records: Sequence[ExperimentRecord]) -> List[str]:
        rows = [self.record_row(r) for r in records]

        def mean(regime_label: str, column: str) -> float:
            return regime_mean(rows, self.REGIMES[regime_label][1], column)

        return [
            "Time: span goes from "
            f"{mean('benign', 'span'):.2f} (benign) to "
            f"{mean('delays', 'span'):.2f} with worst-case delays alone, while "
            f"overload traffic alone leaves it at {mean('traffic', 'span'):.2f} "
            f"— and the full attack ({mean('full', 'span'):.2f}) adds little "
            "on top of the delays: scheduling power dominates the slowdown.",
            "Bits: overload traffic alone multiplies the per-node cost "
            f"({mean('benign', 'amortized_bits'):.0f} → "
            f"{mean('traffic', 'amortized_bits'):.0f} amortized bits) without "
            "slowing the protocol — the answer budget absorbs it "
            f"({mean('full', 'answers_deferred'):.0f} deferred answers under "
            "the full attack).",
        ]


#: the registered section instances, importable by the benchmarks (which
#: print exactly these sections' record_row output — one row source)
from repro.report.base import get_report_section as _get  # noqa: E402

FIGURE1A: Figure1aSection = _get("figure1a")  # type: ignore[assignment]
FIGURE1A_SCALE: Figure1aScaleSection = _get("figure1a_scale")  # type: ignore[assignment]
FIGURE1B: Figure1bSection = _get("figure1b")  # type: ignore[assignment]
LEMMA3: Lemma3Section = _get("lemma3")  # type: ignore[assignment]
LEMMA4: Lemma4Section = _get("lemma4")  # type: ignore[assignment]
LEMMA5: Lemma5Section = _get("lemma5")  # type: ignore[assignment]
LEMMA6: Lemma6Section = _get("lemma6")  # type: ignore[assignment]
LEMMA7: Lemma7Section = _get("lemma7")  # type: ignore[assignment]
LEMMA8: Lemma8Section = _get("lemma8")  # type: ignore[assignment]
LEMMA10: Lemma10Section = _get("lemma10")  # type: ignore[assignment]
PROPERTY2: Property2Section = _get("property2")  # type: ignore[assignment]
ADVERSARY_MATRIX: AdversaryMatrixSection = _get("adversary_matrix")  # type: ignore[assignment]
DEGRADED_NETWORKS: DegradedNetworksSection = _get("degraded_networks")  # type: ignore[assignment]
ABLATION_FILTERS: AblationFiltersSection = _get("ablation_filters")  # type: ignore[assignment]
ABLATION_QUORUM: AblationQuorumSection = _get("ablation_quorum")  # type: ignore[assignment]
ABLATION_SCHEDULER: AblationSchedulerSection = _get("ablation_scheduler")  # type: ignore[assignment]
