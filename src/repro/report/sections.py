"""Built-in report sections: Figure 1a/1b, Lemmas 6-10 and adversary coverage.

Each section pins the claim of the paper it measures, the experiment grid
that measures it (``--quick`` and ``--full`` variants) and the row-building
code.  The corresponding benchmark modules import the section instances
(``FIGURE1A``, ``LEMMA8``, ...) and print the very same ``record_row``
output, so the pytest tables and EXPERIMENTS.md are two renderings of one
row source.

Grid sizes are laptop-scale on purpose: the ``--quick`` grids regenerate the
committed EXPERIMENTS.md in well under five minutes on one core; ``--full``
extends the sweeps to the sizes the benchmarks use and adds seeds.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.analysis.complexity import growth_exponent
from repro.analysis.statistics import mean_ci, success_estimate_from_outcomes
from repro.experiments.plan import ExperimentPlan, ExperimentSpec
from repro.experiments.sweep import ExperimentRecord
from repro.report.base import ReportSection, register_report_section


def _round_opt(value, digits: int = 2):
    """Round a float, passing ``None`` through as the table's ``"-"`` cell."""
    return round(value, digits) if value is not None else "-"


def label_series(records: Sequence[ExperimentRecord], label: str, value) -> List[float]:
    """Metric curve of one labelled series, in plan (n-major) order.

    The Figure-1 sections tag each spec with a series label; this extracts
    one series' values for growth fits (shared with the benchmarks).
    """
    return [value(r) for r in records if r.spec.label == label]


def mean_series_by_n(
    records: Sequence[ExperimentRecord], value
) -> Tuple[List[int], List[float]]:
    """Seed-averaged metric curve: sorted ``ns`` and the per-``n`` means.

    ``value`` maps a record to a float (or ``None`` to skip it); this is what
    the growth-fit commentary feeds to
    :func:`repro.analysis.complexity.growth_exponent`.
    """
    by_n: Dict[int, List[float]] = {}
    for record in records:
        v = value(record)
        if v is not None:
            by_n.setdefault(record.spec.n, []).append(float(v))
    ns = sorted(by_n)
    return ns, [mean_ci(by_n[n]).mean for n in ns]


def fitted_exponent(records: Sequence[ExperimentRecord], value):
    """Power-law exponent of the seed-averaged curve (``cost ≈ a·n^b``).

    Returns ``"n/a"`` when the records span fewer than two positive points
    (a single-size grid cannot pin a growth law), so commentary stays
    renderable for any grid a user sweeps.
    """
    ns, means = mean_series_by_n(records, value)
    try:
        return round(growth_exponent(ns, means), 3)
    except ValueError:
        return "n/a"


def _reach(record: ExperimentRecord) -> float:
    """Fraction of correct nodes that decided the scenario's true gstring."""
    value = record.extras.get("decided_gstring")
    return float(value) if value is not None else record.decided_fraction


# ----------------------------------------------------------------------
# Figure 1a — almost-everywhere to everywhere
# ----------------------------------------------------------------------
@register_report_section
class Figure1aSection(ReportSection):
    """AE→E comparison: KLST-style baseline vs AER, sync and async."""

    name = "figure1a"
    title = "Figure 1a — almost-everywhere to everywhere"
    claim = (
        "AER completes in O(1) synchronous rounds (O(log n / log log n) time "
        "asynchronously) with O(log² n) amortized bits per node, but is not "
        "load-balanced; the KLST-style sampled-majority baseline needs "
        "O~(√n) bits per node yet stays load-balanced."
    )
    benchmark = "benchmarks/bench_figure1a_ae_to_e.py"
    order = 10

    group_by = ("protocol", "model", "n")
    ci_columns = ("rounds", "span", "amortized_bits", "load_imbalance", "decided_fraction")
    rate_columns = ("agreement",)
    max_columns = ("max_node_bits",)

    #: label → (display protocol, display model) used by record_row
    SERIES = {
        "klst": ("KLST-style (sampled majority)", "sync"),
        "aer-sync": ("AER", "sync non-rushing"),
        "aer-flood": ("AER (quorum-flood attack)", "sync non-rushing"),
        "aer-async": ("AER", "async (cornering)"),
    }

    @staticmethod
    def specs(
        sync_ns: Sequence[int], async_ns: Sequence[int], seeds: Sequence[int]
    ) -> Tuple[ExperimentSpec, ...]:
        """The irregular Figure-1a grid as explicit specs (n-major, seed-minor)."""
        specs: List[ExperimentSpec] = []
        for n in sync_ns:
            for seed in seeds:
                specs.append(
                    ExperimentSpec(n=n, protocol="sample_majority", seed=seed, label="klst")
                )
                specs.append(
                    ExperimentSpec(n=n, adversary="wrong_answer", seed=seed, label="aer-sync")
                )
                specs.append(
                    ExperimentSpec(n=n, adversary="quorum_flood", seed=seed, label="aer-flood")
                )
        for n in async_ns:
            for seed in seeds:
                specs.append(
                    ExperimentSpec(
                        n=n, adversary="cornering", mode="async", seed=seed, label="aer-async"
                    )
                )
        return tuple(specs)

    def plan_for(
        self, sync_ns: Sequence[int], async_ns: Sequence[int], seeds: Sequence[int]
    ) -> ExperimentPlan:
        return ExperimentPlan(ns=(), extra_specs=self.specs(sync_ns, async_ns, seeds))

    def plan(self, quick: bool = True) -> ExperimentPlan:
        # Doubling sizes on purpose: quorum sizes step with ⌈log₂ n⌉, so a
        # grid with same-⌈log⌉ sizes (e.g. 48 and 64) exaggerates the fitted
        # growth exponents the commentary quotes.
        if quick:
            return self.plan_for((32, 64, 128), (32, 64), seeds=(0, 1, 2))
        return self.plan_for((32, 64, 128, 192), (32, 64, 96), seeds=(0, 1, 2, 3, 4))

    def record_row(self, record: ExperimentRecord) -> Dict[str, object]:
        protocol, model = self.SERIES[record.spec.label]
        return {
            "protocol": protocol,
            "model": model,
            "n": record.spec.n,
            "seed": record.spec.seed,
            "decided_fraction": round(record.decided_fraction, 4),
            "agreement": int(record.agreement),
            "rounds": _round_opt(record.rounds),
            "span": _round_opt(record.span),
            "amortized_bits": round(record.amortized_bits, 1),
            "max_node_bits": record.max_node_bits,
            "load_imbalance": round(record.load_imbalance, 2),
        }

    def commentary(self, records: Sequence[ExperimentRecord]) -> List[str]:
        klst = [r for r in records if r.spec.label == "klst"]
        aer = [r for r in records if r.spec.label == "aer-sync"]
        flood = [r for r in records if r.spec.label == "aer-flood"]
        aer_exp = fitted_exponent(aer, lambda r: r.amortized_bits)
        klst_exp = fitted_exponent(klst, lambda r: r.amortized_bits)
        remarks = [
            "Bits per node: paper says AER is O(log² n), the baseline O~(√n) — "
            f"fitted power exponents over this grid: AER {aer_exp}, "
            f"KLST-style {klst_exp} (0 ≈ polylog, 0.5 ≈ √n, 1 ≈ linear).  "
            "Log factors inflate both exponents over a finite range; the "
            "asymptotic separation is the growth gap, while absolute "
            "constants at laptop scale favor the baseline.",
            "Time: AER's synchronous round count stays essentially flat in n "
            f"(fitted exponent {fitted_exponent(aer, lambda r: r.rounds)}), "
            "against the baseline's fixed 2-round query/answer pattern.",
        ]
        if klst and flood:
            klst_imbalance = max(r.load_imbalance for r in klst)
            flood_imbalance = max(r.load_imbalance for r in flood)
            remarks.append(
                "Load balance: worst max/median per-node bits is "
                f"{klst_imbalance:.2f} for the baseline vs {flood_imbalance:.2f} for AER "
                "under the quorum-flood attack — AER is not load-balanced, as the paper states."
            )
        remarks.append(f"Outcome: {self.agreement_summary(records)}.")
        return remarks


# ----------------------------------------------------------------------
# Figure 1b — Byzantine Agreement comparison
# ----------------------------------------------------------------------
@register_report_section
class Figure1bSection(ReportSection):
    """BA composition vs the KLST-style and quadratic compositions."""

    name = "figure1b"
    title = "Figure 1b — Byzantine Agreement"
    claim = (
        "The paper's BA (committee-tree almost-everywhere stage + AER) uses "
        "polylogarithmic time and amortized bits; composing the same "
        "ae-stage with a sampled-majority everywhere stage costs O~(√n) "
        "bits, and with all-to-all broadcast Θ(n) bits per node."
    )
    benchmark = "benchmarks/bench_figure1b_byzantine_agreement.py"
    order = 20

    group_by = ("protocol", "n")
    ci_columns = ("rounds", "amortized_bits", "knowledge_after_ae")
    rate_columns = ("agreement",)
    max_columns = ("max_node_bits",)

    SERIES = {
        "ba": "BA (ae + AER)",
        "klst": "ae + sampled majority (KLST-style)",
        "naive": "ae + all-to-all broadcast",
    }

    @staticmethod
    def specs(ns: Sequence[int], seeds: Sequence[int]) -> Tuple[ExperimentSpec, ...]:
        specs: List[ExperimentSpec] = []
        for n in ns:
            for seed in seeds:
                specs.append(ExperimentSpec(n=n, protocol="full_ba", seed=seed, label="ba"))
                specs.append(
                    ExperimentSpec(
                        n=n,
                        protocol="composed_ba",
                        seed=seed,
                        label="klst",
                        params={"strategy": "sample_majority"},
                    )
                )
                specs.append(
                    ExperimentSpec(
                        n=n,
                        protocol="composed_ba",
                        seed=seed,
                        label="naive",
                        params={"strategy": "naive"},
                    )
                )
        return tuple(specs)

    def plan_for(self, ns: Sequence[int], seeds: Sequence[int]) -> ExperimentPlan:
        return ExperimentPlan(ns=(), extra_specs=self.specs(ns, seeds))

    def plan(self, quick: bool = True) -> ExperimentPlan:
        if quick:
            return self.plan_for((48, 96, 144), seeds=(0, 1, 2))
        return self.plan_for((48, 96, 144, 192), seeds=(0, 1, 2, 3, 4))

    def record_row(self, record: ExperimentRecord) -> Dict[str, object]:
        return {
            "protocol": self.SERIES[record.spec.label],
            "n": record.spec.n,
            "seed": record.spec.seed,
            "agreement": int(record.agreement),
            "knowledge_after_ae": record.extras.get("knowledge_after_ae", "-"),
            "rounds": _round_opt(record.rounds),
            "amortized_bits": round(record.amortized_bits, 1),
            "max_node_bits": record.max_node_bits,
        }

    def commentary(self, records: Sequence[ExperimentRecord]) -> List[str]:
        by_label = {
            label: [r for r in records if r.spec.label == label] for label in self.SERIES
        }
        exponents = {
            label: fitted_exponent(group, lambda r: r.amortized_bits)
            for label, group in by_label.items()
            if group
        }
        remarks = [
            "Amortized bits, fitted power exponents: "
            + ", ".join(f"{self.SERIES[k]} {v}" for k, v in exponents.items())
            + " (0 ≈ polylog, 0.5 ≈ √n, 1 ≈ linear)."
        ]
        if "ba" in exponents and "naive" in exponents:
            gap = round(exponents["naive"] - exponents["ba"], 3)
            remarks.append(
                f"BA's bits grow slower than the all-to-all composition's "
                f"(exponent gap {gap}); the benchmark asserts this ordering "
                "over its larger grid."
            )
        ba = by_label.get("ba", [])
        if ba:
            remarks.append(
                "BA's total round count stays flat in n "
                f"(fitted exponent {fitted_exponent(ba, lambda r: r.rounds)})."
            )
        remarks.append(f"Outcome: {self.agreement_summary(records)}.")
        return remarks


# ----------------------------------------------------------------------
# Lemma 6 — asynchronous latency under the overload attack
# ----------------------------------------------------------------------
@register_report_section
class Lemma6Section(ReportSection):
    """Async pull latency vs the log n / log log n reference."""

    name = "lemma6"
    title = "Lemma 6 — asynchronous latency under the overload (cornering) attack"
    claim = (
        "Against the delay- and overload-maximising asynchronous adversary, "
        "every poll completes within O(log n / log log n) normalized time."
    )
    benchmark = "benchmarks/bench_lemma6_async_pull_latency.py"
    order = 30

    group_by = ("n",)
    ci_columns = ("span_normalized", "log_over_loglog", "span_over_reference", "decided_fraction")
    rate_columns = ("agreement",)

    def plan_for(self, ns: Sequence[int], seeds: Sequence[int]) -> ExperimentPlan:
        return ExperimentPlan(
            ns=tuple(ns),
            adversaries=("cornering",),
            modes=("async",),
            seeds=tuple(seeds),
            label="lemma6",
            params={"delay_policy": "constant", "delay_params": {"value": 1.0}},
        )

    def plan(self, quick: bool = True) -> ExperimentPlan:
        if quick:
            return self.plan_for((24, 32, 48), seeds=(0, 1, 2))
        return self.plan_for((32, 64, 96), seeds=(0, 1, 2, 3, 4))

    def record_row(self, record: ExperimentRecord) -> Dict[str, object]:
        n = record.spec.n
        reference = math.log2(n) / math.log2(math.log2(n))
        span = record.span if record.span is not None else 0.0
        return {
            "n": n,
            "seed": record.spec.seed,
            "span_normalized": round(span, 2),
            "log_over_loglog": round(reference, 2),
            "span_over_reference": round(span / reference, 2),
            "agreement": int(record.agreement),
            "decided_fraction": round(record.decided_fraction, 4),
        }

    def commentary(self, records: Sequence[ExperimentRecord]) -> List[str]:
        worst = max(self.record_row(r)["span_over_reference"] for r in records)
        return [
            "Span grows far slower than n "
            f"(fitted exponent {fitted_exponent(records, lambda r: r.span)}; "
            "the reference curve's own exponent over this range is ≈ 0.2).",
            f"Worst span / (log n / log log n) ratio observed: {worst:.2f} — "
            "a small constant, matching the lemma's O(·) bound.",
            f"Outcome: {self.agreement_summary(records)}.",
        ]


# ----------------------------------------------------------------------
# Lemma 7 — decision safety, w.h.p. reach
# ----------------------------------------------------------------------
@register_report_section
class Lemma7Section(ReportSection):
    """No wrong decisions ever; gstring decided essentially everywhere."""

    name = "lemma7"
    title = "Lemma 7 — decisions are gstring, w.h.p. everywhere"
    claim = (
        "With high probability every correct node decides, and any node that "
        "decides, decides gstring — a wrong decision would require a "
        "Byzantine-majority poll list for a freshly drawn random label."
    )
    benchmark = "benchmarks/bench_lemma7_decision_safety.py"
    order = 40

    def plan_for(self, n: int, seeds: Sequence[int]) -> ExperimentPlan:
        return ExperimentPlan(
            ns=(n,),
            adversaries=("wrong_answer",),
            modes=("sync",),
            seeds=tuple(seeds),
            label="lemma7",
        )

    def plan(self, quick: bool = True) -> ExperimentPlan:
        if quick:
            return self.plan_for(48, seeds=tuple(range(6)))
        return self.plan_for(64, seeds=tuple(range(10)))

    def record_row(self, record: ExperimentRecord) -> Dict[str, object]:
        reach = _reach(record)
        wrong = record.decided_count - round(reach * record.correct_count)
        return {
            "n": record.spec.n,
            "seed": record.spec.seed,
            "agreement": int(record.agreement),
            "reach": round(reach, 4),
            "wrong_decisions": wrong,
        }

    def rows(self, records: Sequence[ExperimentRecord]) -> List[Dict[str, object]]:
        """One Wilson-interval summary row per system size."""
        out: List[Dict[str, object]] = []
        for n in sorted({r.spec.n for r in records}):
            group = [self.record_row(r) for r in records if r.spec.n == n]
            estimate = success_estimate_from_outcomes(bool(row["agreement"]) for row in group)
            out.append(
                {
                    "n": n,
                    "trials": estimate.trials,
                    "full_agreement": estimate.successes,
                    "rate": round(estimate.rate, 4),
                    "ci_low": round(estimate.low, 4),
                    "ci_high": round(estimate.high, 4),
                    "wrong_decisions_total": sum(row["wrong_decisions"] for row in group),
                    "mean_reach": mean_ci([row["reach"] for row in group]).format(4),
                }
            )
        return out

    def commentary(self, records: Sequence[ExperimentRecord]) -> List[str]:
        wrong_total = sum(self.record_row(r)["wrong_decisions"] for r in records)
        return [
            f"Safety: {wrong_total} wrong decisions across all trials "
            "(the paper's argument makes a wrong decision essentially impossible).",
            "Reach is a w.h.p. statement at finite n: single-node stragglers "
            "(a correct node drawing a bad poll list) occur with small but "
            "non-zero probability at these sizes, which the Wilson interval quantifies.",
        ]


# ----------------------------------------------------------------------
# Lemmas 8-9 — synchronous constant time, O~(n) messages
# ----------------------------------------------------------------------
@register_report_section
class Lemma8Section(ReportSection):
    """Constant rounds and quasi-linear messages against a non-rushing adversary."""

    name = "lemma8"
    title = "Lemmas 8-9 — synchronous non-rushing: constant rounds, O~(n) messages"
    claim = (
        "Against a non-rushing synchronous adversary every poll is answered "
        "in a constant number of steps, the protocol finishes in O(1) rounds "
        "and the total number of messages is O~(n)."
    )
    benchmark = "benchmarks/bench_lemma8_sync_pull_latency.py"
    order = 50

    group_by = ("n",)
    ci_columns = ("rounds", "messages_per_node", "decided_fraction")
    rate_columns = ("agreement",)
    max_columns = ("latest_decision_round",)

    def plan_for(self, ns: Sequence[int], seeds: Sequence[int]) -> ExperimentPlan:
        return ExperimentPlan(
            ns=tuple(ns),
            adversaries=("wrong_answer",),
            modes=("sync",),
            seeds=tuple(seeds),
            label="lemma8",
        )

    def plan(self, quick: bool = True) -> ExperimentPlan:
        if quick:
            return self.plan_for((32, 48, 64, 96), seeds=(0, 1, 2))
        return self.plan_for((32, 64, 128, 192), seeds=(0, 1, 2, 3, 4))

    def record_row(self, record: ExperimentRecord) -> Dict[str, object]:
        return {
            "n": record.spec.n,
            "seed": record.spec.seed,
            "rounds": record.rounds,
            "latest_decision_round": (
                record.max_decision_time if record.max_decision_time is not None else -1
            ),
            "messages_per_node": round(record.total_messages / record.spec.n, 1),
            "agreement": int(record.agreement),
            "decided_fraction": round(record.decided_fraction, 4),
        }

    def commentary(self, records: Sequence[ExperimentRecord]) -> List[str]:
        return [
            "Rounds: paper says O(1) — fitted power exponent "
            f"{fitted_exponent(records, lambda r: r.rounds)} "
            "(a handful of nodes may decide one cascade later, so the count "
            "fluctuates but does not grow with n).",
            "Messages per node: paper says O~(n) total, i.e. polylog per node — "
            "fitted exponent "
            f"{fitted_exponent(records, lambda r: r.total_messages / r.spec.n)}.",
            f"Outcome: {self.agreement_summary(records)}.",
        ]


# ----------------------------------------------------------------------
# Lemma 10 — asynchronous end-to-end
# ----------------------------------------------------------------------
@register_report_section
class Lemma10Section(ReportSection):
    """Async end-to-end: O(log n / log log n) time, O~(n) messages."""

    name = "lemma10"
    title = "Lemma 10 — asynchronous end-to-end time and messages"
    claim = (
        "Under the asynchronous scheduler the protocol completes in "
        "O(log n / log log n) normalized time using O~(n) messages in total."
    )
    benchmark = "benchmarks/bench_lemma10_async_end_to_end.py"
    order = 60

    group_by = ("n",)
    ci_columns = ("span_normalized", "log_over_loglog", "messages_per_node", "decided_fraction")
    rate_columns = ("agreement",)

    def plan_for(self, ns: Sequence[int], seeds: Sequence[int]) -> ExperimentPlan:
        return ExperimentPlan(
            ns=tuple(ns),
            adversaries=("slow_knowledgeable",),
            modes=("async",),
            seeds=tuple(seeds),
            label="lemma10",
        )

    def plan(self, quick: bool = True) -> ExperimentPlan:
        if quick:
            return self.plan_for((32, 48, 64), seeds=(0, 1, 2))
        return self.plan_for((32, 64, 96), seeds=(0, 1, 2, 3, 4))

    def record_row(self, record: ExperimentRecord) -> Dict[str, object]:
        n = record.spec.n
        reference = math.log2(n) / math.log2(math.log2(n))
        return {
            "n": n,
            "seed": record.spec.seed,
            "span_normalized": round(record.span if record.span is not None else -1, 2),
            "log_over_loglog": round(reference, 2),
            "messages_per_node": round(record.total_messages / n, 1),
            "agreement": int(record.agreement),
            "decided_fraction": round(record.decided_fraction, 4),
        }

    def commentary(self, records: Sequence[ExperimentRecord]) -> List[str]:
        return [
            "Span: fitted power exponent "
            f"{fitted_exponent(records, lambda r: r.span)} — far below linear, "
            "tracking the log n / log log n reference printed next to it.",
            "Messages per node: fitted exponent "
            f"{fitted_exponent(records, lambda r: r.total_messages / r.spec.n)} "
            "(sub-linear, the O~(n)-total claim).",
            f"Outcome: {self.agreement_summary(records)}.",
        ]


# ----------------------------------------------------------------------
# Adversary matrix — coverage across every registered attack
# ----------------------------------------------------------------------
@register_report_section
class AdversaryMatrixSection(ReportSection):
    """Agreement under every built-in adversary, both schedulers."""

    name = "adversary_matrix"
    title = "Adversary matrix — agreement under every built-in attack"
    claim = (
        "Theorem 1 is adversary-agnostic: agreement must survive any "
        "t < (1/3 − ε)n Byzantine strategy, under both schedulers.  This "
        "matrix runs every registered attack strategy on the same scenarios."
    )
    # No benchmark counterpart: the per-adversary shape assertions live in
    # the tier-1 suite (tests/test_adversary.py), not in benchmarks/.
    benchmark = ""
    order = 70

    #: pinned to the built-ins so the committed document is stable; user
    #: registrations show up by passing their names to plan_for explicitly
    BUILTIN_ADVERSARIES = (
        "none",
        "silent",
        "noise",
        "equivocate",
        "wrong_answer",
        "push_flood",
        "quorum_flood",
        "cornering",
        "slow_knowledgeable",
    )

    group_by = ("adversary", "mode", "n")
    ci_columns = ("time", "amortized_bits", "decided_fraction")
    rate_columns = ("agreement",)

    def plan_for(
        self,
        n: int,
        seeds: Sequence[int],
        adversaries: Sequence[str] = BUILTIN_ADVERSARIES,
    ) -> ExperimentPlan:
        return ExperimentPlan(
            ns=(n,),
            adversaries=tuple(adversaries),
            modes=("sync", "async"),
            seeds=tuple(seeds),
            label="adversary_matrix",
        )

    def plan(self, quick: bool = True) -> ExperimentPlan:
        if quick:
            return self.plan_for(32, seeds=(0, 1))
        return self.plan_for(64, seeds=(0, 1, 2))

    def record_row(self, record: ExperimentRecord) -> Dict[str, object]:
        spec = record.spec
        time = record.rounds if record.rounds is not None else record.span
        return {
            "adversary": spec.adversary,
            "mode": spec.mode + ("-rushing" if spec.rushing else ""),
            "n": spec.n,
            "seed": spec.seed,
            "agreement": int(record.agreement),
            "decided_fraction": round(record.decided_fraction, 4),
            "time": _round_opt(time),
            "amortized_bits": round(record.amortized_bits, 1),
        }

    def commentary(self, records: Sequence[ExperimentRecord]) -> List[str]:
        failing = sorted(
            {r.spec.adversary for r in records if not r.agreement}
        )
        remarks = [f"Coverage: {self.agreement_summary(records)}."]
        if failing:
            remarks.append(
                "Strategies with at least one non-agreement run (finite-n "
                f"w.h.p. stragglers): {', '.join(failing)}."
            )
        else:
            remarks.append("Every strategy was defeated in every run at these sizes.")
        return remarks


#: the registered section instances, importable by the benchmarks (which
#: print exactly these sections' record_row output — one row source)
from repro.report.base import get_report_section as _get  # noqa: E402

FIGURE1A: Figure1aSection = _get("figure1a")  # type: ignore[assignment]
FIGURE1B: Figure1bSection = _get("figure1b")  # type: ignore[assignment]
LEMMA6: Lemma6Section = _get("lemma6")  # type: ignore[assignment]
LEMMA7: Lemma7Section = _get("lemma7")  # type: ignore[assignment]
LEMMA8: Lemma8Section = _get("lemma8")  # type: ignore[assignment]
LEMMA10: Lemma10Section = _get("lemma10")  # type: ignore[assignment]
ADVERSARY_MATRIX: AdversaryMatrixSection = _get("adversary_matrix")  # type: ignore[assignment]
