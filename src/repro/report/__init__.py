"""Report subsystem: measured evidence rendered as EXPERIMENTS.md.

The fifth registry of the architecture's layer 4 (see ARCHITECTURE.md): a
:class:`~repro.report.base.ReportSection` declares the experiment grid one
paper claim needs, how its records become table rows, and the
paper-vs-measured commentary; :class:`~repro.report.build.ReportBuilder`
runs every requested section through the sweep subsystem (with optional
result caching) and assembles the provenance-stamped Markdown document.

``python -m repro report --quick -o EXPERIMENTS.md`` is the CLI entry point;
``python -m repro registries -o REGISTRIES.md`` renders the companion
registry reference.  The benchmarks import the section instances from
:mod:`repro.report.sections` and print the very same per-record rows, so
pytest output and the document share one row source.
"""

from repro.report.base import (
    REPORT_SECTIONS,
    ReportSection,
    aggregate_rows,
    get_report_section,
    list_report_sections,
    markdown_table,
    register_report_section,
)
from repro.report.build import BuiltSection, ReportBuilder, build_report
from repro.report.registries import render_registries

# Importing the sections module registers every built-in section.
from repro.report import sections as _sections  # noqa: F401

__all__ = [
    "REPORT_SECTIONS",
    "ReportSection",
    "register_report_section",
    "get_report_section",
    "list_report_sections",
    "aggregate_rows",
    "markdown_table",
    "ReportBuilder",
    "BuiltSection",
    "build_report",
    "render_registries",
]
