"""The report-section contract and the fifth registry.

A :class:`ReportSection` turns one claim of the paper into a measured,
rendered piece of EXPERIMENTS.md: it declares the
:class:`~repro.experiments.plan.ExperimentPlan` it needs (a ``--quick`` and a
``--full`` variant), a *per-record* row builder, how rows aggregate across
seeds, and the paper-vs-measured commentary.  Sections register through the
same :class:`~repro.registry.Registry` mechanism as protocols, adversaries,
delay policies and scenario generators::

    from repro.report import ReportSection, register_report_section

    @register_report_section
    class MySection(ReportSection):
        name = "my_claim"
        title = "Theorem 12 — my claim"
        claim = "the paper says X"

        def plan(self, quick=True):
            return ExperimentPlan(ns=(32, 64), seeds=(0, 1, 2), ...)

        def record_row(self, record):
            return {"n": record.spec.n, "seed": record.spec.seed, ...}

after which ``python -m repro report --sections my_claim`` runs and renders
it.  The per-record row builder is the *single* source of table logic: the
benchmarks print exactly these rows (one per run) and the report prints
their cross-seed aggregation, so the pytest output and the document cannot
drift apart.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.statistics import mean_ci, success_estimate_from_outcomes
from repro.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.plan import ExperimentPlan
    from repro.experiments.sweep import ExperimentRecord

#: the global report-section registry; values are ReportSection *instances*
REPORT_SECTIONS = Registry("report section")


def register_report_section(cls):
    """Class decorator: instantiate the section and register it under ``cls.name``."""
    REPORT_SECTIONS.register(cls.name, cls())
    return cls


def get_report_section(name: str) -> "ReportSection":
    """Return the section registered under ``name`` (``ValueError`` if unknown)."""
    return REPORT_SECTIONS.get(name)  # type: ignore[return-value]


def list_report_sections() -> List[str]:
    """Section names in document order (by ``order``, then name)."""
    sections = [get_report_section(name) for name in REPORT_SECTIONS.names()]
    sections.sort(key=lambda s: (s.order, s.name))
    return [s.name for s in sections]


# ----------------------------------------------------------------------
# table rendering and cross-seed aggregation
# ----------------------------------------------------------------------
def markdown_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Render flat dict rows as a GitHub-flavoured Markdown table.

    The first row defines the column order (like
    :func:`repro.analysis.experiments.format_table`, which renders the same
    rows as aligned plain text for pytest output).
    """
    if not rows:
        return "*(no rows)*"

    def cell(value: object) -> str:
        return str(value).replace("|", "\\|")

    columns = list(rows[0].keys())
    lines = ["| " + " | ".join(cell(c) for c in columns) + " |"]
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        lines.append("| " + " | ".join(cell(row.get(c, "")) for c in columns) + " |")
    return "\n".join(lines)


def _numeric(values: Sequence[object]) -> List[float]:
    return [float(v) for v in values if isinstance(v, (int, float)) and not isinstance(v, bool)]


def aggregate_rows(
    rows: Sequence[Mapping[str, object]],
    group_by: Sequence[str],
    ci_columns: Sequence[str] = (),
    rate_columns: Sequence[str] = (),
    max_columns: Sequence[str] = (),
    digits: int = 2,
) -> List[Dict[str, object]]:
    """Aggregate per-record rows across seeds into the report's table rows.

    Rows are grouped by the ``group_by`` columns in first-seen order (plan
    order keeps that deterministic).  Within each group:

    * ``ci_columns`` become ``mean ±half-width`` strings
      (:func:`repro.analysis.statistics.mean_ci`; non-numeric cells such as
      ``"-"`` are skipped, an all-missing column renders as ``"-"``);
    * ``rate_columns`` (0/1 indicators) become observed rates;
    * ``max_columns`` keep the group's worst case;
    * a ``runs`` column counts the group's records; the ``seed`` column, if
      present, is dropped (it is what was aggregated over).
    """
    groups: Dict[Tuple[object, ...], List[Mapping[str, object]]] = {}
    for row in rows:
        key = tuple(row.get(k) for k in group_by)
        groups.setdefault(key, []).append(row)

    out: List[Dict[str, object]] = []
    for key, group in groups.items():
        agg: Dict[str, object] = dict(zip(group_by, key))
        agg["runs"] = len(group)
        for column in rate_columns:
            values = _numeric([row.get(column) for row in group])
            agg[column] = round(sum(values) / len(values), 3) if values else "-"
        for column in ci_columns:
            values = _numeric([row.get(column) for row in group])
            agg[column] = mean_ci(values).format(digits) if values else "-"
        for column in max_columns:
            values = _numeric([row.get(column) for row in group])
            agg[f"max_{column}" if column in agg else column] = (
                round(max(values), digits) if values else "-"
            )
        out.append(agg)
    return out


class ReportSection:
    """Contract every report section implements.

    Class attributes declare the section's public surface:

    ``name``
        Registry name (also the ``--sections`` CLI value).
    ``title``
        Markdown heading of the rendered section.
    ``claim``
        The paper's statement this section measures, quoted in the document.
    ``benchmark``
        The ``benchmarks/`` file that asserts the same claim's shape in
        pytest (and prints rows built by this very section).
    ``order``
        Sort key for document order (registry names alone would interleave
        ``lemma10`` before ``lemma6``).
    """

    name: str = ""
    title: str = ""
    claim: str = ""
    benchmark: str = ""
    order: int = 100

    # ------------------------------------------------------------------
    # the experiment grid
    # ------------------------------------------------------------------
    def plan(self, quick: bool = True) -> "ExperimentPlan":
        """The grid this section needs (small/CI-sized when ``quick``)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # rows: one builder, two tables
    # ------------------------------------------------------------------
    def record_row(self, record: "ExperimentRecord") -> Dict[str, object]:
        """One flat table row for one executed spec.

        This is the row-building code shared with the benchmarks: the
        benchmark prints ``[section.record_row(r) for r in sweep.records]``
        verbatim, the report aggregates the same rows across seeds.
        Wall-clock columns are deliberately absent (the document must be
        byte-identical across runs).
        """
        raise NotImplementedError

    def rows(self, records: Sequence["ExperimentRecord"]) -> List[Dict[str, object]]:
        """The report's aggregated table rows (cross-seed mean ± CI).

        The default groups :meth:`record_row` output by every column named in
        :attr:`group_by` and aggregates the columns named in
        :attr:`ci_columns` / :attr:`rate_columns` / :attr:`max_columns`.
        """
        per_record = [self.record_row(record) for record in records]
        return aggregate_rows(
            per_record,
            group_by=self.group_by,
            ci_columns=self.ci_columns,
            rate_columns=self.rate_columns,
            max_columns=self.max_columns,
        )

    #: aggregation declaration consumed by the default :meth:`rows`
    group_by: Sequence[str] = ("n",)
    ci_columns: Sequence[str] = ()
    rate_columns: Sequence[str] = ()
    max_columns: Sequence[str] = ()

    # ------------------------------------------------------------------
    # commentary and rendering
    # ------------------------------------------------------------------
    def commentary(self, records: Sequence["ExperimentRecord"]) -> List[str]:
        """Paper-vs-measured remarks rendered as a bullet list (may be empty)."""
        return []

    def render(self, records: Sequence["ExperimentRecord"], quick: bool = True) -> str:
        """Full Markdown for this section: heading, claim, table, commentary."""
        parts = [f"## {self.title}", ""]
        if self.claim:
            parts += [f"**Paper's claim.** {self.claim}", ""]
        parts += [markdown_table(self.rows(records)), ""]
        remarks = self.commentary(records)
        if remarks:
            parts += [f"- {remark}" for remark in remarks] + [""]
        if self.benchmark:
            parts += [
                f"*Shape assertions: [`{self.benchmark}`]({self.benchmark}) "
                "(same row-building code).*",
                "",
            ]
        return "\n".join(parts)

    # ------------------------------------------------------------------
    # shared commentary helpers
    # ------------------------------------------------------------------
    @staticmethod
    def agreement_summary(records: Sequence["ExperimentRecord"]) -> str:
        """A Wilson-interval statement about the agreement rate of the records."""
        estimate = success_estimate_from_outcomes(r.agreement for r in records)
        return (
            f"agreement in {estimate.successes}/{estimate.trials} runs "
            f"(rate {estimate.rate:.3f}, 95% CI [{estimate.low:.3f}, {estimate.high:.3f}])"
        )
