"""Experiment specifications and grid plans.

An :class:`ExperimentSpec` pins *everything* a run depends on — the protocol,
its parameters, the scenario knobs and the scheduler — so a spec is a pure
function from itself to a normalized
:class:`~repro.protocols.base.RunResult`.  Specs are frozen dataclasses:
picklable (for multiprocessing workers) and JSON-round-trippable (for
persisted sweep results).

The ``protocol`` field names an adapter in the protocol registry
(:mod:`repro.protocols`); the common knob fields (``adversary``, ``mode``,
``rushing``, ``t``, ...) plus the free-form ``params`` dict are validated
against that adapter's declared parameter space, so a typo'd or unsupported
parameter fails loudly before any worker is spawned.

An :class:`ExperimentPlan` is the cartesian grid the sweep subsystem runs:
``ns × protocols × adversaries × modes × seeds`` with shared scenario knobs.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from repro.faults import FaultSchedule
from repro.trace.collector import TRACE_MODES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocols.base import RunResult


def _canonical_params(value) -> str:
    """Normalize a params mapping to canonical JSON text.

    Specs are frozen, hashable and compared by value, so the params field is
    stored as one canonical string (sorted keys, no whitespace): two specs
    describing the same run compare equal no matter how their params were
    spelled, and every value round-trips through sweep JSON exactly as given
    (lists stay lists, dicts stay dicts).
    """
    if isinstance(value, str):
        parsed = json.loads(value)
        if not isinstance(parsed, dict):
            raise ValueError(f"params must be a mapping, got {parsed!r}")
    elif isinstance(value, Mapping):
        parsed = dict(value)
    else:
        parsed = dict(value)  # accept ``(("key", value), ...)`` pair sequences
    try:
        return json.dumps(parsed, sort_keys=True, separators=(",", ":"))
    except TypeError as exc:
        raise ValueError(
            f"protocol params must be JSON-serializable (specs round-trip "
            f"through sweep files): {exc}"
        ) from None


def _canonical_faults(value) -> str:
    """Normalize a fault-schedule spelling to canonical JSON text.

    Accepts a :class:`~repro.faults.FaultSchedule`, a mapping of knobs or
    JSON text; the canonical form is the schedule's defaults-omitted JSON,
    so two spellings of the same schedule — ``{}`` and an explicit
    ``{"loss_rate": 0.0}`` — compare equal and share one ``spec_key``.
    Unknown keys and out-of-range values are rejected here (by name), at
    spec construction time.
    """
    if isinstance(value, FaultSchedule):
        return value.to_json()
    if isinstance(value, str):
        return FaultSchedule.from_json(value).to_json()
    return FaultSchedule.from_dict(value).to_json()


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully described experiment run of any registered protocol.

    The knob fields (``adversary`` ... ``quorum_multiplier``) mirror
    :func:`repro.runner.run_aer_experiment` and are shared by several
    protocols; ``params`` carries protocol-specific extras (e.g.
    ``{"strategy": "naive"}`` for ``composed_ba``).  ``label`` is a free-form
    tag carried through to records (useful to mark series in a benchmark
    table).
    """

    n: int
    protocol: str = "aer"
    adversary: str = "none"
    mode: str = "sync"
    rushing: bool = False
    seed: int = 0
    t: Optional[int] = None
    knowledge_fraction: float = 0.78
    wrong_candidate_mode: str = "random"
    quorum_multiplier: float = 2.0
    label: str = ""
    #: instrumentation level: "off" (default, guaranteed-free), "summary"
    #: (condensed TraceSummary on the record) or "full" (adds per-event JSONL)
    trace: str = "off"
    #: protocol-specific extras as canonical JSON text (construct with a plain
    #: dict — ``params={"strategy": "naive"}`` — and read via params_dict())
    params: str = "{}"
    #: engine backend: "message" (per-message oracle kernel, the default) or
    #: "vectorized" (whole-round numpy engine for large n; sync-only, no
    #: trace, subset of adversaries — see repro.vec)
    backend: str = "message"
    #: fault schedule as canonical JSON text (construct with a plain dict —
    #: ``faults={"loss_rate": 0.1}`` — and read via faults_schedule());
    #: ``"{}"`` is the default no-op: no injector is built and the run is
    #: byte-identical to one without the fault subsystem
    faults: str = "{}"

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _canonical_params(self.params))
        object.__setattr__(self, "faults", _canonical_faults(self.faults))

    @property
    def key(self) -> str:
        """Compact unique-ish identifier used in logs and result files.

        AER keys keep their historical (protocol-less) format so recorded
        benchmark baselines remain addressable across PRs; non-default
        backends are marked with a ``:vec`` suffix so both backends of one
        spec can coexist in a result file.
        """
        rushing = "-rushing" if self.rushing else ""
        base = f"{self.mode}{rushing}:{self.adversary}:n{self.n}:s{self.seed}"
        if self.backend != "message":
            base = f"{base}:vec"
        if self.faults != "{}":
            base = f"{base}:flt"
        if self.protocol == "aer":
            return base
        return f"{self.protocol}:{base}"

    def params_dict(self) -> Dict[str, object]:
        """The protocol-specific extras as a plain dict."""
        return json.loads(self.params)

    def faults_dict(self) -> Dict[str, object]:
        """The fault schedule's non-default knobs as a plain dict."""
        return json.loads(self.faults)

    def faults_schedule(self) -> FaultSchedule:
        """The parsed :class:`~repro.faults.FaultSchedule` (no-op by default)."""
        return FaultSchedule.from_json(self.faults)

    def validate(self) -> None:
        """Raise ``ValueError`` if this spec cannot be run as described."""
        from repro.protocols import get_protocol

        if self.mode not in ("sync", "async"):
            raise ValueError(f"unknown mode {self.mode!r} (expected 'sync' or 'async')")
        if self.rushing and self.mode == "async":
            raise ValueError(
                "rushing=True is only meaningful under mode='sync'; the "
                "asynchronous adversary is inherently rushing"
            )
        if self.trace not in TRACE_MODES:
            raise ValueError(
                f"unknown trace mode {self.trace!r} "
                f"(expected {', '.join(repr(m) for m in TRACE_MODES)})"
            )
        if self.backend not in ("message", "vectorized"):
            raise ValueError(
                f"unknown backend {self.backend!r} "
                f"(expected 'message' or 'vectorized')"
            )
        # Knob names/ranges were checked at construction; the mode-dependent
        # constraints (delay classes are async-only) can only be checked here.
        self.faults_schedule().validate_for_mode(self.mode)
        get_protocol(self.protocol).validate(self)

    def run(self) -> "RunResult":
        """Validate and execute this spec; return the normalized run result."""
        from repro.protocols import get_protocol

        self.validate()
        return get_protocol(self.protocol).run(self)

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["params"] = self.params_dict()
        data["faults"] = self.faults_dict()
        return data

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "ExperimentSpec":
        data = dict(data)
        known = {f.name for f in fields(ExperimentSpec)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown experiment spec key(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        return ExperimentSpec(**data)  # type: ignore[arg-type]

    def with_(self, **changes) -> "ExperimentSpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class ExperimentPlan:
    """A grid of experiment specs: ``ns × protocols × adversaries × modes × seeds``.

    Expansion order is deterministic (n-major, then protocol, adversary,
    mode, seed), so record lists line up across runs of the same plan.
    ``params`` is shared by every generated spec (protocol-specific extras).
    ``rushing`` applies to the grid's sync-mode specs only — a mixed
    ``modes=("sync", "async")`` grid stays runnable because the asynchronous
    adversary is inherently rushing anyway.
    """

    ns: Tuple[int, ...]
    protocols: Tuple[str, ...] = ("aer",)
    adversaries: Tuple[str, ...] = ("none",)
    modes: Tuple[str, ...] = ("sync",)
    seeds: Tuple[int, ...] = (0,)
    rushing: bool = False
    t: Optional[int] = None
    knowledge_fraction: float = 0.78
    wrong_candidate_mode: str = "random"
    quorum_multiplier: float = 2.0
    label: str = ""
    #: instrumentation level shared by every generated spec (off|summary|full)
    trace: str = "off"
    #: protocol-specific extras shared by every generated spec (canonical
    #: JSON text; construct with a plain dict)
    params: str = "{}"
    #: engine backend shared by every generated spec (message|vectorized)
    backend: str = "message"
    #: fault schedule shared by every generated spec (canonical JSON text;
    #: construct with a plain dict; ``"{}"`` = no injection)
    faults: str = "{}"
    #: explicit extra specs appended after the grid (escape hatch for
    #: irregular sweeps that still want the runner/persistence machinery)
    extra_specs: Tuple[ExperimentSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # Accept lists/generators for convenience, store tuples (hashability).
        for name in ("ns", "protocols", "adversaries", "modes", "seeds", "extra_specs"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        object.__setattr__(self, "params", _canonical_params(self.params))
        object.__setattr__(self, "faults", _canonical_faults(self.faults))

    def specs(self) -> List[ExperimentSpec]:
        """Expand the grid into the ordered list of specs to run."""
        grid = [
            ExperimentSpec(
                n=n,
                protocol=protocol,
                adversary=adversary,
                mode=mode,
                rushing=self.rushing and mode == "sync",
                seed=seed,
                t=self.t,
                knowledge_fraction=self.knowledge_fraction,
                wrong_candidate_mode=self.wrong_candidate_mode,
                quorum_multiplier=self.quorum_multiplier,
                label=self.label,
                trace=self.trace,
                params=self.params,
                backend=self.backend,
                faults=self.faults,
            )
            for n in self.ns
            for protocol in self.protocols
            for adversary in self.adversaries
            for mode in self.modes
            for seed in self.seeds
        ]
        grid.extend(self.extra_specs)
        return grid

    def validate(self) -> None:
        """Validate every spec of the grid (cheap; no run is started)."""
        for spec in self.specs():
            spec.validate()

    def __len__(self) -> int:
        return (
            len(self.ns)
            * len(self.protocols)
            * len(self.adversaries)
            * len(self.modes)
            * len(self.seeds)
            + len(self.extra_specs)
        )

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["params"] = json.loads(self.params)
        data["faults"] = json.loads(self.faults)
        data["extra_specs"] = [spec.to_dict() for spec in self.extra_specs]
        return data

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "ExperimentPlan":
        data = dict(data)
        known = {f.name for f in fields(ExperimentPlan)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown experiment plan key(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        data["extra_specs"] = tuple(
            ExperimentSpec.from_dict(spec) for spec in data.get("extra_specs", ())
        )
        for name in ("ns", "protocols", "adversaries", "modes", "seeds"):
            if name in data:
                data[name] = tuple(data[name])
        return ExperimentPlan(**data)  # type: ignore[arg-type]
