"""Experiment specifications and grid plans.

An :class:`ExperimentSpec` pins *everything* a run depends on — the scenario
knobs and the scheduler — so a spec is a pure function from itself to a
:class:`~repro.net.results.SimulationResult`.  Specs are frozen dataclasses:
picklable (for multiprocessing workers) and JSON-round-trippable (for
persisted sweep results).

An :class:`ExperimentPlan` is the cartesian grid the sweep subsystem runs:
``ns × adversaries × modes × seeds`` with shared scenario knobs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.net.results import SimulationResult


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully described AER experiment run.

    The fields mirror :func:`repro.runner.run_aer_experiment`; ``label`` is a
    free-form tag carried through to records (useful to mark series in a
    benchmark table).
    """

    n: int
    adversary: str = "none"
    mode: str = "sync"
    rushing: bool = False
    seed: int = 0
    t: Optional[int] = None
    knowledge_fraction: float = 0.78
    wrong_candidate_mode: str = "random"
    quorum_multiplier: float = 2.0
    label: str = ""

    @property
    def key(self) -> str:
        """Compact unique-ish identifier used in logs and result files."""
        rushing = "-rushing" if self.rushing else ""
        return f"{self.mode}{rushing}:{self.adversary}:n{self.n}:s{self.seed}"

    def run(self) -> SimulationResult:
        """Execute this spec and return the simulation result."""
        from repro.runner import run_aer_experiment

        return run_aer_experiment(
            n=self.n,
            adversary_name=self.adversary,
            mode=self.mode,
            rushing=self.rushing,
            seed=self.seed,
            t=self.t,
            knowledge_fraction=self.knowledge_fraction,
            wrong_candidate_mode=self.wrong_candidate_mode,
            quorum_multiplier=self.quorum_multiplier,
        )

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "ExperimentSpec":
        return ExperimentSpec(**data)  # type: ignore[arg-type]

    def with_(self, **changes) -> "ExperimentSpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class ExperimentPlan:
    """A grid of experiment specs: ``ns × adversaries × modes × seeds``.

    Expansion order is deterministic (n-major, then adversary, mode, seed),
    so record lists line up across runs of the same plan.
    """

    ns: Tuple[int, ...]
    adversaries: Tuple[str, ...] = ("none",)
    modes: Tuple[str, ...] = ("sync",)
    seeds: Tuple[int, ...] = (0,)
    rushing: bool = False
    t: Optional[int] = None
    knowledge_fraction: float = 0.78
    wrong_candidate_mode: str = "random"
    quorum_multiplier: float = 2.0
    label: str = ""
    #: explicit extra specs appended after the grid (escape hatch for
    #: irregular sweeps that still want the runner/persistence machinery)
    extra_specs: Tuple[ExperimentSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # Accept lists/generators for convenience, store tuples (hashability).
        for name in ("ns", "adversaries", "modes", "seeds", "extra_specs"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))

    def specs(self) -> List[ExperimentSpec]:
        """Expand the grid into the ordered list of specs to run."""
        grid = [
            ExperimentSpec(
                n=n,
                adversary=adversary,
                mode=mode,
                rushing=self.rushing,
                seed=seed,
                t=self.t,
                knowledge_fraction=self.knowledge_fraction,
                wrong_candidate_mode=self.wrong_candidate_mode,
                quorum_multiplier=self.quorum_multiplier,
                label=self.label,
            )
            for n in self.ns
            for adversary in self.adversaries
            for mode in self.modes
            for seed in self.seeds
        ]
        grid.extend(self.extra_specs)
        return grid

    def __len__(self) -> int:
        return (
            len(self.ns) * len(self.adversaries) * len(self.modes) * len(self.seeds)
            + len(self.extra_specs)
        )

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["extra_specs"] = [spec.to_dict() for spec in self.extra_specs]
        return data

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "ExperimentPlan":
        data = dict(data)
        data["extra_specs"] = tuple(
            ExperimentSpec.from_dict(spec) for spec in data.get("extra_specs", ())
        )
        for name in ("ns", "adversaries", "modes", "seeds"):
            if name in data:
                data[name] = tuple(data[name])
        return ExperimentPlan(**data)  # type: ignore[arg-type]
