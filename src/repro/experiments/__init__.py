"""Experiment orchestration: plans, parallel sweeps, persisted results.

This package is the fourth layer of the architecture (samplers → protocol →
event kernel → orchestration; see ARCHITECTURE.md): it turns single
simulation runs into first-class *experiments* —

* :class:`~repro.experiments.plan.ExperimentSpec` — one fully described run
  (protocol, n, adversary, mode, seed, scenario knobs, protocol params),
  picklable and JSON-round-trippable;
* :class:`~repro.experiments.plan.ExperimentPlan` — a grid of specs
  (n × protocol × adversary × mode × seed);
* :class:`~repro.experiments.sweep.SweepRunner` — fans a plan's specs across
  ``multiprocessing`` workers, collects per-run records (metrics + wall
  clock) and persists them as JSON (the format behind ``BENCH_*.json``);
* the ``python -m repro`` CLI (:mod:`repro.experiments.cli`).
"""

from repro.experiments.plan import ExperimentPlan, ExperimentSpec
from repro.experiments.sweep import (
    ExperimentRecord,
    SweepResult,
    SweepRunner,
    WorkerCrashedError,
    WorkerPool,
    execute_spec,
    run_sweep,
)

__all__ = [
    "ExperimentPlan",
    "ExperimentSpec",
    "ExperimentRecord",
    "SweepResult",
    "SweepRunner",
    "WorkerCrashedError",
    "WorkerPool",
    "execute_spec",
    "run_sweep",
]
