"""``python -m repro`` — run single experiments, grid sweeps and benchmarks.

Subcommands
-----------

``run``
    One experiment: ``python -m repro run --n 64 --adversary silent --mode async``.
``sweep``
    A grid across multiprocessing workers, optionally persisted as JSON::

        python -m repro sweep --ns 32,64,128 --adversaries none,silent \\
            --modes sync,async --seeds 0,1,2 --jobs 4 --out sweep.json
``bench``
    The fixed kernel benchmark sweep; writes ``BENCH_kernel.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.experiments import format_table, result_row
from repro.experiments.bench import write_report
from repro.experiments.plan import ExperimentPlan, ExperimentSpec
from repro.experiments.sweep import run_sweep


def _csv_ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


def _csv_strs(text: str) -> List[str]:
    return [part for part in text.split(",") if part]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="AER simulation experiments (Braud-Santoni, Guerraoui, Huc — PODC'13)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment and print its summary")
    run.add_argument("--n", type=int, required=True, help="system size")
    run.add_argument("--adversary", default="none", help="registered adversary name")
    run.add_argument("--mode", default="sync", choices=["sync", "async"])
    run.add_argument("--rushing", action="store_true", help="rushing sync adversary")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--knowledge-fraction", type=float, default=0.78)
    run.add_argument("--quorum-multiplier", type=float, default=2.0)

    sweep = sub.add_parser("sweep", help="run a grid of experiments in parallel")
    sweep.add_argument("--ns", type=_csv_ints, required=True, help="e.g. 32,64,128")
    sweep.add_argument("--adversaries", type=_csv_strs, default=["none"])
    sweep.add_argument("--modes", type=_csv_strs, default=["sync"])
    sweep.add_argument("--seeds", type=_csv_ints, default=[0])
    sweep.add_argument("--rushing", action="store_true")
    sweep.add_argument("--knowledge-fraction", type=float, default=0.78)
    sweep.add_argument("--quorum-multiplier", type=float, default=2.0)
    sweep.add_argument("--jobs", type=int, default=None, help="worker processes")
    sweep.add_argument("--out", default=None, help="persist records as JSON here")

    bench = sub.add_parser("bench", help="fixed kernel benchmark; writes BENCH_kernel.json")
    bench.add_argument("--out", default="BENCH_kernel.json")

    return parser


def cmd_run(args: argparse.Namespace) -> int:
    spec = ExperimentSpec(
        n=args.n,
        adversary=args.adversary,
        mode=args.mode,
        rushing=args.rushing,
        seed=args.seed,
        knowledge_fraction=args.knowledge_fraction,
        quorum_multiplier=args.quorum_multiplier,
    )
    try:
        result = spec.run()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_table([result_row(result)], title=f"experiment {spec.key}"))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    if not args.ns:
        print("error: --ns must name at least one system size", file=sys.stderr)
        return 2
    plan = ExperimentPlan(
        ns=tuple(args.ns),
        adversaries=tuple(args.adversaries),
        modes=tuple(args.modes),
        seeds=tuple(args.seeds),
        rushing=args.rushing,
        knowledge_fraction=args.knowledge_fraction,
        quorum_multiplier=args.quorum_multiplier,
    )
    try:
        result = run_sweep(plan, jobs=args.jobs, out=args.out)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    title = (
        f"sweep of {len(result.records)} experiments "
        f"({result.jobs} workers, {result.total_seconds:.1f}s)"
    )
    print(format_table(result.rows(), title=title))
    if args.out:
        print(f"records written to {args.out}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    report = write_report(args.out)
    print(json.dumps(report, indent=1))
    print(f"report written to {args.out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "sweep":
        return cmd_sweep(args)
    if args.command == "bench":
        return cmd_bench(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
