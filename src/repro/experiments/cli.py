"""``python -m repro`` — run experiments, grid sweeps, comparisons, benchmarks.

Subcommands
-----------

``run``
    One experiment of any registered protocol::

        python -m repro run --n 64 --adversary silent --mode async
        python -m repro run --n 64 --protocol composed_ba --param strategy=naive
        python -m repro run --n 64 --trace summary
        python -m repro run --n 64 --trace full --trace-dir traces/

``sweep``
    A grid across multiprocessing workers — any protocol mix — optionally
    persisted as JSON::

        python -m repro sweep --ns 32,64,128 --protocols aer,composed_ba \\
            --adversaries none --modes sync --seeds 0,1,2 --jobs 4 --out sweep.json

    ``--store [PATH]`` makes the sweep *incremental* against the
    content-addressed result store (records already computed under the
    current code fingerprint are served, only the delta runs, fresh records
    are flushed as they complete); ``--no-store`` disables even a
    ``$REPRO_STORE`` default.  ``--resume out.json`` re-seeds from a prior
    (possibly partial) result file and runs only the missing spec keys.

    ``--distributed N`` runs the plan through the distributed executor
    instead of a local pool: one in-process coordinator plus ``N``
    ``dist-worker`` subprocesses claiming spec-keyed shards under leases
    (see :mod:`repro.dist`).  ``--canonical`` saves ``--out`` with volatile
    fields (wall-clock, worker counts) zeroed, so distributed and serial
    runs of the same plan are byte-identical.

``dist-worker``
    One worker of the distributed executor, pointed at a running
    coordinator::

        python -m repro dist-worker 127.0.0.1:7341
        python -m repro dist-worker HOST:PORT --id w1 --poll 0.2

    The worker handshakes its code fingerprint (mismatches are rejected by
    name), then claims, executes and streams back shards until the
    coordinator drains.

``store``
    Inspect or garbage-collect the result store::

        python -m repro store stats
        python -m repro store prune --keep-current
        python -m repro store prune --fingerprint abc1234+dirty

``serve``
    The experiment service (needs the ``[service]`` extra)::

        python -m repro serve --host 127.0.0.1 --port 8000

    POST a plan JSON to ``/plans``, poll ``/jobs/{id}``, stream NDJSON
    records from ``/jobs/{id}/records``, query ``/store/stats``.

``compare``
    The Figure-1-style cross-protocol table: run every protocol on the same
    system sizes and seeds, aggregate across seeds, print one row per
    ``(n, protocol)``::

        python -m repro compare --ns 32,64 --protocols aer,composed_ba,naive_broadcast

``protocols``
    List the registered protocols, adversaries, delay policies and scenario
    generators (the extension points of the registry API).

``report``
    Run the report sections and generate the living reproduction document::

        python -m repro report --quick -o EXPERIMENTS.md
        python -m repro report --sections figure1a,lemma8 --cache .report-cache -o -

``registries``
    Render the auto-generated registry reference (all five registries)::

        python -m repro registries -o REGISTRIES.md

``bench``
    The fixed kernel benchmark sweep; writes ``BENCH_kernel.json``.
    ``--update`` is the committed-artifact mode: min-of-5 over the fixed
    *and* extended cases, git + platform provenance, and the previous
    generation of the file preserved under its ``trajectory`` key.

Protocol-specific parameters are passed as repeated ``--param key=value``
options; values are parsed as JSON when possible (``--param
delay_params='{"value": 0.5}'``), else kept as strings.

Fault-injection knobs (see :mod:`repro.faults`) are passed the same way as
repeated ``--fault key=value`` options on ``run`` and ``sweep``::

    python -m repro run --n 64 --fault loss_rate=0.1
    python -m repro run --n 64 --fault churn_rate=0.02 --fault recovery_rate=0.3
    python -m repro run --n 64 --fault 'partitions=[{"start": 1, "end": 4}]'

``--trace {off,summary,full}`` (on ``run`` and ``sweep``) opts runs into the
trace subsystem: ``summary`` attaches the condensed
:class:`~repro.trace.collector.TraceSummary` to every record, ``full``
additionally streams per-event JSONL into ``--trace-dir`` (one file per spec
key; the directory is exported as ``$REPRO_TRACE_DIR`` so multiprocessing
sweep workers inherit it).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro.analysis.experiments import compare_rows, format_table, run_result_row
from repro.experiments.bench import write_report
from repro.experiments.plan import ExperimentPlan, ExperimentSpec
from repro.experiments.sweep import run_sweep


def _csv_ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


def _csv_strs(text: str) -> List[str]:
    return [part for part in text.split(",") if part]


def _parse_params(
    pairs: Optional[Sequence[str]], option: str = "--param"
) -> Dict[str, object]:
    """``["k=v", ...]`` → dict, JSON-decoding each value when possible."""
    params: Dict[str, object] = {}
    for pair in pairs or ():
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"{option} expects key=value, got {pair!r}")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def _add_shared_spec_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default="message",
        choices=["message", "vectorized"],
        help="engine backend: 'message' (per-message kernel, the oracle) or "
             "'vectorized' (whole-round numpy engine; sync, non-rushing, "
             "untraced protocols only)",
    )
    parser.add_argument("--rushing", action="store_true", help="rushing sync adversary")
    parser.add_argument("--t", type=int, default=None, help="number of Byzantine nodes")
    parser.add_argument("--knowledge-fraction", type=float, default=0.78)
    parser.add_argument("--quorum-multiplier", type=float, default=2.0)
    parser.add_argument(
        "--param",
        action="append",
        metavar="KEY=VALUE",
        help="protocol-specific parameter (repeatable; value parsed as JSON if possible)",
    )


def _add_fault_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fault",
        action="append",
        metavar="KEY=VALUE",
        help="fault-injection knob (repeatable; value parsed as JSON if "
             "possible): loss_rate, churn_rate, recovery_rate, churn_start, "
             "partitions, slow_fraction, slow_factor, byzantine_factor",
    )


def _add_trace_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default="off",
        choices=["off", "summary", "full"],
        help="instrumentation level: summary attaches a TraceSummary to every "
             "record, full additionally streams per-event JSONL (default: off)",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="where --trace full writes per-spec JSONL files "
             "(exported as $REPRO_TRACE_DIR for sweep workers)",
    )


def _apply_trace_dir(args: argparse.Namespace) -> None:
    if getattr(args, "trace_dir", None):
        os.environ["REPRO_TRACE_DIR"] = args.trace_dir


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="AER simulation experiments (Braud-Santoni, Guerraoui, Huc — PODC'13)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment and print its summary")
    run.add_argument("--n", type=int, required=True, help="system size")
    run.add_argument("--protocol", default="aer", help="registered protocol name")
    run.add_argument("--adversary", default="none", help="registered adversary name")
    run.add_argument("--mode", default="sync", choices=["sync", "async"])
    run.add_argument("--seed", type=int, default=0)
    _add_shared_spec_options(run)
    _add_fault_options(run)
    _add_trace_options(run)

    sweep = sub.add_parser("sweep", help="run a grid of experiments in parallel")
    sweep.add_argument("--ns", type=_csv_ints, required=True, help="e.g. 32,64,128")
    sweep.add_argument(
        "--protocols", type=_csv_strs, default=["aer"], help="e.g. aer,composed_ba"
    )
    sweep.add_argument("--adversaries", type=_csv_strs, default=["none"])
    sweep.add_argument("--modes", type=_csv_strs, default=["sync"])
    sweep.add_argument("--seeds", type=_csv_ints, default=[0])
    _add_shared_spec_options(sweep)
    _add_fault_options(sweep)
    _add_trace_options(sweep)
    sweep.add_argument("--jobs", type=int, default=None, help="worker processes")
    sweep.add_argument("--out", default=None, help="persist records as JSON here")
    sweep.add_argument(
        "--store",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help="serve already-computed records from the content-addressed "
             "result store and flush fresh ones back (PATH defaults to "
             "$REPRO_STORE or .repro-store.sqlite)",
    )
    sweep.add_argument(
        "--no-store",
        action="store_true",
        help="run without the result store even when $REPRO_STORE is set",
    )
    sweep.add_argument(
        "--resume",
        default=None,
        metavar="OUT_JSON",
        help="re-seed from a prior (possibly partial) sweep JSON and run "
             "only the missing spec keys; doubles as --out when --out is "
             "not given",
    )
    sweep.add_argument(
        "--distributed",
        type=int,
        default=None,
        metavar="N",
        help="run through the distributed executor: one coordinator plus N "
             "dist-worker subprocesses claiming spec-keyed shards under "
             "leases (crashed workers' shards are re-issued)",
    )
    sweep.add_argument(
        "--lease-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="seconds before an unheartbeated distributed lease expires and "
             "its shard is re-issued (default: 30)",
    )
    sweep.add_argument(
        "--canonical",
        action="store_true",
        help="write --out with volatile fields (wall-clock seconds, worker "
             "counts, served-from counters) zeroed, so runs of the same "
             "plan are byte-identical regardless of execution mode",
    )

    dist_worker = sub.add_parser(
        "dist-worker",
        help="one worker of the distributed sweep executor (see repro.dist)",
    )
    dist_worker.add_argument(
        "address", metavar="HOST:PORT", help="the coordinator to claim shards from"
    )
    dist_worker.add_argument(
        "--id", default=None, metavar="NAME",
        help="worker id shown in coordinator status (default: hostname-pid)",
    )
    dist_worker.add_argument(
        "--poll", type=float, default=0.5, metavar="SECONDS",
        help="max sleep between claim retries while all shards are leased",
    )
    dist_worker.add_argument(
        "--max-claims", type=int, default=None, metavar="K",
        help="exit after executing K shards (default: run until drained)",
    )

    compare = sub.add_parser(
        "compare",
        help="Figure-1-style cross-protocol comparison on shared sizes and seeds",
    )
    compare.add_argument("--ns", type=_csv_ints, required=True, help="e.g. 32,64")
    compare.add_argument(
        "--protocols",
        type=_csv_strs,
        default=["aer", "full_ba", "composed_ba", "sample_majority", "naive_broadcast"],
        help="protocol mix to compare (default: all built-ins)",
    )
    compare.add_argument("--seeds", type=_csv_ints, default=[0])
    compare.add_argument("--adversary", default="none", help="adversary for protocols that take one")
    _add_shared_spec_options(compare)
    compare.add_argument("--jobs", type=int, default=None, help="worker processes")
    compare.add_argument("--out", default=None, help="persist raw records as JSON here")

    protocols = sub.add_parser(
        "protocols", help="list registered protocols, adversaries, policies, scenarios"
    )
    protocols.add_argument("--verbose", action="store_true", help="include descriptions")

    report = sub.add_parser(
        "report", help="run the report sections and generate EXPERIMENTS.md"
    )
    report.add_argument(
        "--sections",
        type=_csv_strs,
        default=None,
        help="comma-separated section names (default: all, in document order)",
    )
    grid = report.add_mutually_exclusive_group()
    grid.add_argument(
        "--quick", action="store_true", default=True,
        help="small CI-sized grids (the default)",
    )
    grid.add_argument(
        "--full", dest="quick", action="store_false", help="full grids, more seeds"
    )
    report.add_argument(
        "-o", "--out", default="EXPERIMENTS.md",
        help="output path ('-' prints to stdout; default: EXPERIMENTS.md)",
    )
    report.add_argument(
        "--cache", default=None, metavar="DIR",
        help="DEPRECATED: forwards to --store DIR/report-store.sqlite "
             "(the whole-plan JSON cache was replaced by per-spec store lookups)",
    )
    report.add_argument(
        "--store", default=None, metavar="PATH",
        help="serve each section's already-computed records from the "
             "content-addressed result store at PATH and flush fresh ones back",
    )
    report.add_argument("--jobs", type=int, default=None, help="worker processes per sweep")
    report.add_argument(
        "--timings", action="store_true",
        help="add git commit + wall-clock to the provenance header "
             "(volatile: breaks the byte-identical contract the CI check relies on)",
    )
    report.add_argument("--list", action="store_true", help="list sections and exit")

    registries = sub.add_parser(
        "registries", help="render the auto-generated registry reference"
    )
    registries.add_argument(
        "-o", "--out", default="REGISTRIES.md",
        help="output path ('-' prints to stdout; default: REGISTRIES.md)",
    )

    store = sub.add_parser(
        "store", help="inspect or garbage-collect the content-addressed result store"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_stats = store_sub.add_parser("stats", help="record counts by fingerprint/protocol")
    store_stats.add_argument(
        "--store", default=None, metavar="PATH",
        help="store path (default: $REPRO_STORE or .repro-store.sqlite)",
    )
    store_prune = store_sub.add_parser("prune", help="delete records by code fingerprint")
    store_prune.add_argument(
        "--store", default=None, metavar="PATH",
        help="store path (default: $REPRO_STORE or .repro-store.sqlite)",
    )
    prune_what = store_prune.add_mutually_exclusive_group(required=True)
    prune_what.add_argument(
        "--fingerprint", default=None, metavar="FP",
        help="delete exactly this code fingerprint's records",
    )
    prune_what.add_argument(
        "--keep-current", action="store_true",
        help="delete every record NOT matching the current code fingerprint",
    )

    serve = sub.add_parser(
        "serve", help="run the experiment service (needs the [service] extra)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000)
    serve.add_argument(
        "--store", default=None, metavar="PATH",
        help="result store path (default: $REPRO_STORE or .repro-store.sqlite)",
    )
    serve.add_argument(
        "--jobs", type=int, default=None, help="worker processes per sweep"
    )
    serve.add_argument("--log-level", default="info")

    bench = sub.add_parser("bench", help="fixed kernel benchmark; writes BENCH_kernel.json")
    bench.add_argument("--out", default="BENCH_kernel.json")
    bench.add_argument(
        "--update", action="store_true",
        help="committed-artifact mode: min-of-5 over the fixed AND extended "
             "sweeps, git+platform provenance, previous numbers preserved "
             "under 'trajectory' (replaces the old hand-run script dance)",
    )
    bench.add_argument(
        "--repeats", type=int, default=None,
        help="timed repetitions per case (default: 3, or 5 with --update)",
    )
    bench.add_argument(
        "--verify-provenance", action="store_true",
        help="don't run anything; assert the recorded git.commit in the "
             "report matches the checked-out HEAD (the CI perf-job guard)",
    )

    equivalence = sub.add_parser(
        "equivalence",
        help="check the vectorized backend against the message kernel "
             "(bit-exact at small n, cross-seed CI overlap at large n)",
    )
    equivalence.add_argument(
        "--mode", default="exact", choices=["exact", "statistical"],
        help="'exact' demands identical results per seed; 'statistical' "
             "compares cross-seed metric CIs (default: exact)",
    )
    equivalence.add_argument(
        "--ns", type=_csv_ints, default=None,
        help="system sizes (default: 48,64 exact; 4096,10000 statistical)",
    )
    equivalence.add_argument(
        "--seeds", type=int, default=None,
        help="number of seeds 0..k-1 (default: 2 exact; 10 statistical)",
    )
    equivalence.add_argument(
        "--adversaries", type=_csv_strs, default=None,
        help="adversaries for exact mode (default: all vectorized-capable); "
             "statistical mode uses the first entry only (default: none)",
    )

    return parser


def cmd_run(args: argparse.Namespace) -> int:
    try:
        _apply_trace_dir(args)
        spec = ExperimentSpec(
            n=args.n,
            protocol=args.protocol,
            adversary=args.adversary,
            mode=args.mode,
            rushing=args.rushing,
            seed=args.seed,
            t=args.t,
            knowledge_fraction=args.knowledge_fraction,
            quorum_multiplier=args.quorum_multiplier,
            trace=args.trace,
            params=_parse_params(args.param),
            backend=args.backend,
            faults=_parse_params(args.fault, option="--fault"),
        )
        result = spec.run()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_table([run_result_row(result)], title=f"experiment {spec.key}"))
    if result.extras:
        print("extras: " + ", ".join(f"{k}={v}" for k, v in sorted(result.extras.items())))
    if result.trace is not None:
        events = result.trace.get("events", {})
        print("trace events: " + ", ".join(f"{k}={v}" for k, v in sorted(events.items())))
        full = result.trace.get("full")
        if full and full.get("jsonl_path"):
            print(f"trace JSONL written to {full['jsonl_path']}")
    return 0


def _build_plan(args: argparse.Namespace, modes: List[str], adversaries: List[str]) -> ExperimentPlan:
    return ExperimentPlan(
        ns=tuple(args.ns),
        protocols=tuple(args.protocols),
        adversaries=tuple(adversaries),
        modes=tuple(modes),
        seeds=tuple(args.seeds),
        rushing=args.rushing,
        t=args.t,
        knowledge_fraction=args.knowledge_fraction,
        quorum_multiplier=args.quorum_multiplier,
        trace=getattr(args, "trace", "off"),
        params=_parse_params(args.param),
        backend=getattr(args, "backend", "message"),
        faults=_parse_params(getattr(args, "fault", None), option="--fault"),
    )


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.dist import DistributedSweepError, run_distributed_sweep
    from repro.store import StoreError, resolve_store
    from repro.store.keys import spec_key

    if not args.ns:
        print("error: --ns must name at least one system size", file=sys.stderr)
        return 2
    out = args.out
    if args.resume and out is None:
        out = args.resume
    store = None
    try:
        _apply_trace_dir(args)
        plan = _build_plan(args, modes=args.modes, adversaries=args.adversaries)
        store = resolve_store(args.store, args.no_store)
        seed_records = None
        if args.resume and os.path.exists(args.resume):
            from repro.experiments.sweep import SweepResult

            # An interrupted sweep may leave the resume file empty or
            # truncated mid-JSON; that means "no prior records", not a
            # fatal error — warn and run the full plan.
            try:
                loaded = SweepResult.load_records(args.resume)
            except json.JSONDecodeError as exc:
                print(
                    f"warning: resume file {args.resume} is empty or "
                    f"truncated ({exc}); seeding 0/{len(plan)} records",
                    file=sys.stderr,
                )
                loaded = []
            seed_records = {
                spec_key(record.spec): record for record in loaded
            }
            print(
                f"resume: seeding {len(seed_records)}/{len(plan)} records "
                f"from {args.resume}"
            )
        if args.distributed:
            result = run_distributed_sweep(
                plan,
                workers=args.distributed,
                store=store,
                seed_records=seed_records,
                lease_timeout=args.lease_timeout,
            )
        else:
            result = run_sweep(
                plan, jobs=args.jobs, store=store, seed_records=seed_records
            )
        if out:
            result.save(out, canonical=args.canonical)
    except (ValueError, StoreError, DistributedSweepError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if store is not None:
            store.close()
    total = len(result.records)
    if store is not None and seed_records:
        # Both sources were live: one consolidated line instead of a
        # double-counting "served from store" that hides resume hits.
        served = (
            f", served {result.served_from_store}/{total} "
            f"(store {result.served_from_store - result.served_from_resume}, "
            f"resume {result.served_from_resume})"
        )
    elif store is not None or seed_records:
        served = f", {result.served_from_store}/{total} served from store"
    else:
        served = ""
    workers_label = "distributed workers" if args.distributed else "workers"
    title = (
        f"sweep of {total} experiments "
        f"({result.jobs} {workers_label}, {result.total_seconds:.1f}s{served})"
    )
    print(format_table(result.rows(), title=title))
    if out:
        print(f"records written to {out}")
    return 0


def cmd_dist_worker(args: argparse.Namespace) -> int:
    from repro.dist import ProtocolError, WorkerRejectedError, run_worker

    try:
        executed = run_worker(
            args.address,
            worker_id=args.id,
            poll_interval=args.poll,
            max_claims=args.max_claims,
        )
    except WorkerRejectedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ProtocolError, OSError, ValueError) as exc:
        print(f"error: cannot work against {args.address}: {exc}", file=sys.stderr)
        return 2
    print(f"dist-worker done: executed {executed} shard(s)")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.protocols import get_protocol

    if not args.ns:
        print("error: --ns must name at least one system size", file=sys.stderr)
        return 2
    try:
        plan = _build_plan(args, modes=["sync"], adversaries=[args.adversary])
        # Shared knobs/params apply to the protocols that take them; the
        # others run with their defaults instead of aborting the comparison.
        relaxed = ExperimentPlan(
            ns=(),
            extra_specs=tuple(
                get_protocol(spec.protocol).relax_spec(spec) for spec in plan.specs()
            ),
        )
        result = run_sweep(relaxed, jobs=args.jobs, out=args.out)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    title = (
        f"protocol comparison over ns={','.join(map(str, args.ns))} "
        f"({len(args.seeds)} seed(s); bits/rounds averaged, max_node_bits worst-case)"
    )
    print(format_table(compare_rows(result.records), title=title))
    if args.out:
        print(f"records written to {args.out}")
    return 0


def cmd_protocols(args: argparse.Namespace) -> int:
    from repro.adversary.registry import ADVERSARIES
    from repro.net.asynchronous import DELAY_POLICIES
    from repro.protocols import PROTOCOLS, SCENARIOS, get_protocol

    rows = []
    for name in PROTOCOLS.names():
        adapter = get_protocol(name)
        rows.append(
            {
                "protocol": name,
                "trace": "yes" if adapter.supports_trace else "no",
                "backends": ",".join(adapter.supports_backends),
            }
        )
    print(format_table(rows, title="registered protocols"))
    if args.verbose:
        for name in PROTOCOLS.names():
            adapter = get_protocol(name)
            print(f"  {name:16s} {adapter.description}")
            print(f"  {'':16s} params: {', '.join(sorted(adapter.params))}")
    print(f"adversaries    : {', '.join(ADVERSARIES.names())}")
    print(f"delay policies : {', '.join(DELAY_POLICIES.names())}")
    print(f"scenarios      : {', '.join(SCENARIOS.names())}")
    return 0


def _write_document(text: str, out: str, label: str) -> None:
    """Write a generated document to ``out``, or to stdout for ``"-"``."""
    if out == "-":
        print(text, end="")
        return
    with open(out, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"{label} written to {out}")


def cmd_report(args: argparse.Namespace) -> int:
    from repro.report import ReportBuilder, get_report_section, list_report_sections

    if args.list:
        for name in list_report_sections():
            section = get_report_section(name)
            print(f"{name:18s} {section.title}")
        return 0
    from repro.store import StoreError

    try:
        builder = ReportBuilder(
            sections=args.sections,
            quick=args.quick,
            jobs=args.jobs,
            cache_dir=args.cache,
            store_path=args.store,
            include_volatile=args.timings,
        )
        text = builder.build()
    except (ValueError, StoreError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _write_document(text, args.out, "report")
    return 0


def cmd_registries(args: argparse.Namespace) -> int:
    from repro.report import render_registries

    _write_document(render_registries(), args.out, "registry reference")
    return 0


def cmd_store(args: argparse.Namespace) -> int:
    from repro.store import ResultStore, StoreError, default_store_path

    path = args.store or default_store_path()
    try:
        store = ResultStore(path)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.store_command == "stats":
            print(json.dumps(store.stats(), indent=1))
            return 0
        removed = store.prune(
            fingerprint=args.fingerprint, keep_current=args.keep_current
        )
        what = (
            f"fingerprints other than {store.fingerprint}"
            if args.keep_current
            else f"fingerprint {args.fingerprint}"
        )
        print(f"pruned {removed} record(s) of {what} from {path}")
        return 0
    finally:
        store.close()


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import fastapi_available
    from repro.store import StoreError, default_store_path

    if not fastapi_available():
        print(
            "error: the experiment service needs the optional [service] extra: "
            "pip install 'aer-repro[service]' (fastapi + uvicorn)",
            file=sys.stderr,
        )
        return 2
    try:
        import uvicorn
    except ImportError:
        print(
            "error: uvicorn is not installed — pip install 'aer-repro[service]'",
            file=sys.stderr,
        )
        return 2
    from repro.service import create_app

    store_path = args.store or default_store_path()
    try:
        app = create_app(store_path=store_path, jobs=args.jobs)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"serving on http://{args.host}:{args.port} (store: {store_path})")
    uvicorn.run(app, host=args.host, port=args.port, log_level=args.log_level)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    if args.verify_provenance:
        from repro.experiments.bench import verify_provenance

        try:
            commit = verify_provenance(args.out)
        except (OSError, ValueError, RuntimeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"{args.out}: provenance OK (measured at {commit})")
        return 0
    report = write_report(args.out, update=args.update, repeats=args.repeats)
    print(json.dumps(report, indent=1))
    print(f"report written to {args.out}")
    return 0


def cmd_equivalence(args: argparse.Namespace) -> int:
    from repro.analysis.equivalence import (
        EXACT_ADVERSARIES,
        check_exact,
        check_statistical,
    )

    if args.mode == "exact":
        ns = args.ns or [48, 64]
        seeds = range(args.seeds if args.seeds is not None else 2)
        adversaries = args.adversaries or list(EXACT_ADVERSARIES)
        report = check_exact(ns=ns, adversaries=adversaries, seeds=list(seeds))
        if report.ok:
            print(f"exact equivalence OK: {report.cases} cases bit-identical")
            return 0
        for line in report.mismatches:
            print(f"MISMATCH {line}", file=sys.stderr)
        print(
            f"error: {len(report.mismatches)} mismatch(es) in {report.cases} cases",
            file=sys.stderr,
        )
        return 1
    ns = args.ns or [4096, 10_000]
    seeds = range(args.seeds if args.seeds is not None else 10)
    adversary = (args.adversaries or ["none"])[0]
    report = check_statistical(ns=ns, adversary=adversary, seeds=list(seeds))
    rows = [
        {
            "n": n,
            "metric": metric,
            "message": a,
            "vectorized": b,
            "ci_overlap": "yes" if overlap else "NO",
        }
        for (n, metric), (a, b, overlap) in sorted(report.verdicts.items())
    ]
    print(format_table(rows, title=f"statistical equivalence ({report.seeds} seeds)"))
    if report.ok:
        print("statistical equivalence OK: all metric CIs overlap")
        return 0
    for line in report.failures():
        print(f"DISJOINT {line}", file=sys.stderr)
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "sweep":
        return cmd_sweep(args)
    if args.command == "dist-worker":
        return cmd_dist_worker(args)
    if args.command == "compare":
        return cmd_compare(args)
    if args.command == "protocols":
        return cmd_protocols(args)
    if args.command == "report":
        return cmd_report(args)
    if args.command == "registries":
        return cmd_registries(args)
    if args.command == "store":
        return cmd_store(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "equivalence":
        return cmd_equivalence(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
