"""Parallel execution of experiment plans and JSON persistence of results.

:func:`execute_spec` is the unit of work — a module-level function so it can
be pickled into ``multiprocessing`` workers.  :class:`SweepRunner` fans a
plan's specs across a worker pool (or runs them serially for ``jobs=1``),
preserving plan order in the returned :class:`SweepResult` regardless of
completion order.  Results serialise to the JSON layout used by the repo's
``BENCH_*.json`` trajectory files.

Scheduling is dynamic: specs are dispatched **unordered with explicit
chunking** (``imap_unordered``, chunk size 1 by default), so one slow spec —
a large-``n`` asynchronous run — no longer pins a worker while its statically
chunked siblings idle behind it; records are reassembled into plan order from
the ``(index, record)`` pairs the workers return.

:class:`WorkerPool` is the warm-pool primitive: one ``multiprocessing`` pool
kept alive and handed to any number of ``SweepRunner.run`` calls, so a
multi-plan driver (the report builder's sections, back-to-back sweeps) pays
pool spin-up once instead of per plan.  Workers are primed by a
sampler-table prewarm initializer (see :func:`_worker_init`).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.plan import ExperimentPlan, ExperimentSpec

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.store import ResultStore

#: in-process protocol-execution counter, incremented by :func:`execute_spec`.
#: The "second identical sweep against a warm store executes zero protocol
#: runs" acceptance test reads it (serial ``jobs=1`` sweeps only — worker
#: processes each count in their own copy).
RUN_COUNTER: Dict[str, int] = {"executed": 0}


class WorkerCrashedError(RuntimeError):
    """A pool worker process died mid-spec (segfault, OOM kill, SIGKILL).

    ``imap_unordered`` never yields the dead worker's task, so without
    detection the sweep would hang forever on a result that cannot arrive.
    :class:`SweepRunner` polls the pool's worker processes while waiting and
    raises this error naming the dead pid/exit code and the spec keys that
    were still unfinished.
    """


@dataclass(frozen=True)
class ExperimentRecord:
    """The persisted outcome of one executed spec.

    Everything a benchmark table or a cross-PR trajectory needs, flattened to
    JSON-friendly scalars: the spec itself, wall-clock seconds, decision
    outcome and the paper's metrics.  The metric columns come from the
    normalized :class:`~repro.protocols.base.RunResult`, so records of
    *different protocols* share one schema (and one JSON file).
    """

    spec: ExperimentSpec
    seconds: float
    agreement: bool
    decided_count: int
    correct_count: int
    rounds: Optional[float]
    span: Optional[float]
    max_decision_time: Optional[float]
    total_messages: int
    total_bits: int
    amortized_bits: float
    max_node_bits: int
    median_node_bits: float
    load_imbalance: float
    #: protocol-specific scalars (e.g. knowledge_after_ae for compositions)
    extras: Dict[str, object] = field(default_factory=dict)
    #: condensed TraceSummary dict when the spec asked for tracing (None
    #: otherwise); rides through SweepResult JSONs unchanged
    trace: Optional[Dict[str, object]] = None

    @property
    def protocol(self) -> str:
        """The protocol this record was produced by."""
        return self.spec.protocol

    @property
    def decided_fraction(self) -> float:
        """Fraction of correct nodes that decided."""
        if not self.correct_count:
            return 0.0
        return self.decided_count / self.correct_count

    def row(self) -> Dict[str, object]:
        """One flat table row (for ``format_table`` and benchmark reports)."""
        spec = self.spec
        return {
            "protocol": spec.protocol,
            "n": spec.n,
            "adversary": spec.adversary,
            "mode": spec.mode
            + ("-rushing" if spec.rushing else "")
            + ("+vec" if spec.backend != "message" else ""),
            "seed": spec.seed,
            "decided": f"{self.decided_count}/{self.correct_count}",
            "agreement": int(self.agreement),
            "rounds": self.rounds if self.rounds is not None else "-",
            "span": round(self.span, 2) if self.span is not None else "-",
            "amortized_bits": round(self.amortized_bits, 1),
            "max_node_bits": self.max_node_bits,
            "load_imbalance": round(self.load_imbalance, 2),
            "seconds": round(self.seconds, 3),
        }

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["spec"] = self.spec.to_dict()
        return data

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "ExperimentRecord":
        data = dict(data)
        data["spec"] = ExperimentSpec.from_dict(data["spec"])  # type: ignore[arg-type]
        return ExperimentRecord(**data)  # type: ignore[arg-type]


def execute_spec(spec: ExperimentSpec) -> ExperimentRecord:
    """Run one spec and condense the result into a record (worker entry point)."""
    RUN_COUNTER["executed"] += 1
    start = time.perf_counter()
    result = spec.run()
    seconds = time.perf_counter() - start
    return ExperimentRecord(
        spec=spec,
        seconds=seconds,
        agreement=result.agreement,
        decided_count=result.decided_count,
        correct_count=result.correct_count,
        rounds=result.rounds,
        span=result.span,
        max_decision_time=result.max_decision_time,
        total_messages=result.total_messages,
        total_bits=result.total_bits,
        amortized_bits=result.amortized_bits,
        max_node_bits=result.max_node_bits,
        median_node_bits=result.median_node_bits,
        load_imbalance=result.load_imbalance,
        extras=dict(result.extras),
        trace=result.trace,
    )


@dataclass(frozen=True)
class SweepResult:
    """All records of a finished sweep, in plan order."""

    plan: ExperimentPlan
    records: List[ExperimentRecord]
    total_seconds: float
    jobs: int
    #: how many records were served from a result store (or resume file)
    #: instead of executed; ``len(records)`` means a fully warm re-run
    served_from_store: int = 0
    #: the subset of ``served_from_store`` that came from a ``--resume``
    #: file rather than the store itself (store hits take precedence when
    #: both supply the same spec key)
    served_from_resume: int = 0

    def rows(self) -> List[Dict[str, object]]:
        """Flat table rows, one per record (plan order)."""
        return [record.row() for record in self.records]

    def filter(self, **spec_fields) -> List[ExperimentRecord]:
        """Records whose spec matches every given field (e.g. ``mode="sync"``)."""
        return [
            record
            for record in self.records
            if all(getattr(record.spec, k) == v for k, v in spec_fields.items())
        ]

    def to_dict(self) -> Dict[str, object]:
        return {
            "plan": self.plan.to_dict(),
            "records": [record.to_dict() for record in self.records],
            "total_seconds": self.total_seconds,
            "jobs": self.jobs,
            "served_from_store": self.served_from_store,
            "served_from_resume": self.served_from_resume,
        }

    def canonical_dict(self) -> Dict[str, object]:
        """The sweep with every volatile field zeroed.

        Wall-clock seconds, the worker count and the served-from counters
        depend on where and how a sweep ran, not on *what* it computed; the
        canonical form drops them so two runs of the same plan — serial,
        pooled, or distributed across hosts — serialise byte-for-byte
        identically iff their records match.  This is what the distributed
        executor's equivalence checks compare.
        """
        data = self.to_dict()
        data["total_seconds"] = 0.0
        data["jobs"] = 0
        data["served_from_store"] = 0
        data["served_from_resume"] = 0
        for record in data["records"]:
            record["seconds"] = 0.0
        return data

    def save(self, path: str, canonical: bool = False) -> None:
        """Persist the sweep as JSON (the ``BENCH_*.json`` layout).

        ``canonical=True`` writes :meth:`canonical_dict` — the byte-stable
        form used for cross-run equivalence comparison.
        """
        data = self.canonical_dict() if canonical else self.to_dict()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=1)

    @staticmethod
    def load(path: str) -> "SweepResult":
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        return SweepResult(
            plan=ExperimentPlan.from_dict(data["plan"]),
            records=[ExperimentRecord.from_dict(r) for r in data["records"]],
            total_seconds=data["total_seconds"],
            jobs=data["jobs"],
            served_from_store=data.get("served_from_store", 0),
            served_from_resume=data.get("served_from_resume", 0),
        )

    @staticmethod
    def load_records(path: str) -> List[ExperimentRecord]:
        """Records of a saved sweep without requiring its plan to match
        anything — the ``sweep --resume`` seed loader."""
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        return [ExperimentRecord.from_dict(r) for r in data.get("records", ())]


def _worker_context():
    """Pick the cheapest available multiprocessing start method."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _worker_init(prewarm: Sequence[tuple]) -> None:
    """Pool initializer: import the registries and prewarm sampler tables.

    ``prewarm`` holds ``(n, seed, quorum_multiplier, vectorized)`` tuples of
    the first few distinct AER configurations of the plan; building their
    suites here primes the process-local suite cache
    (:meth:`AERConfig.shared_samplers`) — and, for vectorized-backend specs,
    the process-local array-table provider (:func:`repro.vec.tables.tables_for`)
    — before the first task arrives, and the imports pay the registry setup
    cost once per worker instead of inside the first timed spec.
    """
    import repro.protocols  # noqa: F401  (registers every adapter)
    from repro.core.config import AERConfig, prewarm_samplers

    for n, seed, quorum_multiplier, vectorized in prewarm:
        config = AERConfig.for_system(
            int(n), sampler_seed=int(seed), quorum_multiplier=float(quorum_multiplier)
        )
        prewarm_samplers(config)
        if vectorized:
            from repro.vec.tables import prewarm_vec_tables

            prewarm_vec_tables(config)


def _prewarm_args(specs: Sequence[ExperimentSpec], limit: int = 4) -> Tuple[tuple, ...]:
    """Distinct sampler-relevant tuples of the plan's AER-family specs."""
    seen = []
    for spec in specs:
        entry = (spec.n, spec.seed, spec.quorum_multiplier, spec.backend == "vectorized")
        if entry not in seen:
            seen.append(entry)
            if len(seen) >= limit:
                break
    return tuple(seen)


def _execute_indexed(task: Tuple[int, ExperimentSpec]) -> Tuple[int, ExperimentRecord]:
    """Worker entry point for unordered dispatch: tag the record with its slot."""
    index, spec = task
    return index, execute_spec(spec)


class WorkerPool:
    """A warm multiprocessing pool shared across any number of sweep runs.

    ``SweepRunner.run(pool=...)`` reuses the pool instead of building (and
    tearing down) a fresh one per plan; the pool lazily starts on first use
    and *grows* (rebuilds larger) if a later plan asks for more workers than
    it currently has.  Use as a context manager::

        with WorkerPool() as pool:
            for plan in plans:
                SweepRunner(plan).run(pool=pool)
    """

    def __init__(self, processes: Optional[int] = None) -> None:
        #: upper bound on pool size (``None``: grow as plans demand)
        self.processes = processes
        self._pool = None
        self._size = 0

    @property
    def size(self) -> int:
        """Current number of worker processes (0 before first use)."""
        return self._size

    def acquire(self, jobs: int, prewarm: Sequence[tuple] = ()):
        """Return a pool with at least ``min(jobs, self.processes)`` workers."""
        want = jobs if self.processes is None else min(jobs, self.processes)
        want = max(1, want)
        if self._pool is None or self._size < want:
            self.close()
            self._pool = _worker_context().Pool(
                processes=want, initializer=_worker_init, initargs=(tuple(prewarm),)
            )
            self._size = want
        return self._pool

    def close(self) -> None:
        """Shut the workers down gracefully (idempotent).

        Idle-safe: ``Pool.close()`` lets workers finish anything still in
        flight before exiting and ``join()`` reaps them, so a long-lived
        owner (the experiment service's one pool across all requests) can
        shut down without leaking processes.  Falls back to a hard
        :meth:`terminate` if graceful teardown itself fails.
        """
        if self._pool is not None:
            pool, self._pool, self._size = self._pool, None, 0
            try:
                pool.close()
                pool.join()
            except Exception:  # pragma: no cover - teardown races only
                pool.terminate()
                pool.join()

    def terminate(self) -> None:
        """Kill the workers immediately (idempotent; drops in-flight work)."""
        if self._pool is not None:
            pool, self._pool, self._size = self._pool, None, 0
            pool.terminate()
            pool.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SweepRunner:
    """Fan an :class:`ExperimentPlan` across worker processes.

    Parameters
    ----------
    plan:
        The grid to run.
    jobs:
        Worker processes; ``None`` picks ``min(cpu_count, len(plan))``, and
        ``1`` runs serially in-process (no pool), which is what tests use for
        determinism of coverage measurements and debuggability.
    chunksize:
        Specs per dispatch unit of the unordered scheduler.  The default of
        1 maximises load balance (one slow spec never holds hostages);
        raise it only for plans of very many very short specs, where
        per-task IPC would dominate.
    """

    def __init__(
        self,
        plan: ExperimentPlan,
        jobs: Optional[int] = None,
        chunksize: int = 1,
    ) -> None:
        self.plan = plan
        self.jobs = jobs
        self.chunksize = max(1, chunksize)

    def resolve_jobs(self, spec_count: int) -> int:
        if self.jobs is not None:
            return max(1, self.jobs)
        return max(1, min(os.cpu_count() or 1, spec_count))

    def run(
        self,
        pool: Optional[WorkerPool] = None,
        store: Optional["ResultStore"] = None,
        seed_records: Optional[Mapping[str, ExperimentRecord]] = None,
        on_record: Optional[Callable[[int, ExperimentRecord, bool], None]] = None,
    ) -> SweepResult:
        """Execute every spec of the plan; records come back in plan order.

        Every spec is validated against its protocol adapter *before* any
        worker starts, so a bad parameter fails fast instead of half-way
        through a long sweep.  Dispatch is unordered with explicit chunking
        (one slow spec cannot pin siblings behind it in a static chunk);
        the ``(index, record)`` pairs are reassembled into plan order.
        When ``pool`` is given its warm workers are reused (and kept alive
        for the caller's next plan) instead of spinning up a fresh pool.

        With ``store`` (a :class:`~repro.store.ResultStore`) the run is
        *incremental*: records already stored under the current code
        fingerprint are served without executing anything, only the delta
        runs, and each freshly computed record is flushed to the store as
        it arrives — an interrupted sweep therefore resumes by simply
        re-running the same command.  ``seed_records`` (spec-key → record,
        the ``--resume`` file) serves the same way but is not re-persisted
        unless a store is also given.  ``on_record(index, record,
        served_from_store)`` fires once per record in completion order —
        the service's progress/streaming hook.
        """
        from repro.store.keys import spec_key as _spec_key

        specs = self.plan.specs()
        for spec in specs:
            spec.validate()
        start = time.perf_counter()
        records: List[Optional[ExperimentRecord]] = [None] * len(specs)
        served = 0
        served_resume = 0
        if store is not None:
            for index, hit in enumerate(store.get_many(specs)):
                if hit is not None:
                    records[index] = hit
        if seed_records:
            for index, spec in enumerate(specs):
                if records[index] is None:
                    hit = seed_records.get(_spec_key(spec))
                    if hit is not None:
                        records[index] = hit
                        served_resume += 1
                        if store is not None:
                            store.put(hit)
        for index, record in enumerate(records):
            if record is not None:
                served += 1
                if on_record is not None:
                    on_record(index, record, True)
        pending = [(i, spec) for i, spec in enumerate(specs) if records[i] is None]

        def finish(index: int, record: ExperimentRecord) -> None:
            records[index] = record
            if store is not None:
                store.put(record)
            if on_record is not None:
                on_record(index, record, False)

        jobs = self.resolve_jobs(len(pending) or 1)
        if not pending:
            jobs = 1
        elif (jobs == 1 or len(pending) <= 1) and pool is None:
            for index, spec in pending:
                finish(index, execute_spec(spec))
        else:
            pending_specs = [spec for _, spec in pending]
            prewarm = _prewarm_args(pending_specs)
            if pool is not None:
                worker_pool = pool.acquire(jobs, prewarm)
                jobs = min(pool.size, max(1, len(pending)))
            else:
                worker_pool = _worker_context().Pool(
                    processes=jobs, initializer=_worker_init, initargs=(prewarm,)
                )
            try:
                # Track worker Process objects by pid from *before* dispatch:
                # Pool silently reaps and respawns dead workers, so a crashed
                # process is only observable through a reference captured
                # while it was still in the pool's worker list.
                tracked: Dict[int, object] = {}
                for proc in getattr(worker_pool, "_pool", None) or ():
                    tracked.setdefault(proc.pid, proc)
                iterator = worker_pool.imap_unordered(
                    _execute_indexed, list(pending), chunksize=self.chunksize
                )
                remaining = len(pending)
                while remaining:
                    try:
                        index, record = iterator.next(timeout=0.25)
                    except multiprocessing.TimeoutError:
                        for proc in getattr(worker_pool, "_pool", None) or ():
                            tracked.setdefault(proc.pid, proc)
                        dead = [
                            proc
                            for proc in tracked.values()
                            if proc.exitcode not in (None, 0)
                        ]
                        if dead:
                            unfinished = [
                                spec.key for i, spec in pending if records[i] is None
                            ]
                            if pool is not None:
                                pool.terminate()
                            raise WorkerCrashedError(
                                f"sweep worker pid {dead[0].pid} died with exit "
                                f"code {dead[0].exitcode} while "
                                f"{len(unfinished)} spec(s) were unfinished "
                                f"(first: {unfinished[0] if unfinished else '?'}) "
                                f"— its results can never arrive, aborting the "
                                f"sweep instead of hanging"
                            )
                        continue
                    except StopIteration:  # pragma: no cover - remaining guards
                        break
                    finish(index, record)
                    remaining -= 1
            finally:
                if pool is None:
                    worker_pool.terminate()
                    worker_pool.join()
        total_seconds = time.perf_counter() - start
        return SweepResult(
            plan=self.plan,
            records=records,
            total_seconds=total_seconds,
            jobs=jobs,
            served_from_store=served,
            served_from_resume=served_resume,
        )


def run_sweep(
    plan: ExperimentPlan,
    jobs: Optional[int] = None,
    out: Optional[str] = None,
    pool: Optional[WorkerPool] = None,
    store: Optional["ResultStore"] = None,
    seed_records: Optional[Mapping[str, ExperimentRecord]] = None,
) -> SweepResult:
    """Convenience wrapper: run a plan and optionally persist the result."""
    result = SweepRunner(plan, jobs=jobs).run(
        pool=pool, store=store, seed_records=seed_records
    )
    if out is not None:
        result.save(out)
    return result
