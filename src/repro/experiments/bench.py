"""The fixed kernel benchmark sweep behind ``BENCH_kernel.json``.

``BENCH_kernel.json`` is the repo's performance trajectory for the simulation
engine: a *fixed* sweep (same specs, same seeds, forever) timed on the
current tree and compared against the recorded baselines — the pre-kernel
seed engine and every previously committed generation of the file.  Updating
is one command::

    python -m repro bench --update

which re-times the fixed sweep plus the extended cases (min-of-5 each),
stamps platform and git provenance, preserves the previous generation's
numbers under ``trajectory`` and rewrites the file.  ``python -m repro
bench`` without ``--update`` times the fixed sweep only (min-of-3) — a quick
local check that does not aspire to be committed.

Keep :data:`FIXED_SWEEP` stable — the cross-PR trajectory is only meaningful
while the workload stays identical.  :data:`EXTENDED_SWEEP` carries the
larger cases (``n=1024`` sync, ``n=512`` async) that became tractable once
the columnar fast path landed; they have no seed-engine baseline and simply
accumulate their own history.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.experiments.plan import ExperimentPlan, ExperimentSpec

#: the fixed sweep: do not change without resetting the baseline
FIXED_SWEEP = (
    ExperimentSpec(n=512, adversary="none", mode="sync", seed=0),
    ExperimentSpec(n=512, adversary="silent", mode="sync", seed=0),
    ExperimentSpec(n=256, adversary="none", mode="async", seed=0),
)

#: larger cases recorded since the columnar fast path; no seed baseline.
#: The ``n=4096`` pair times the same spec on both engine backends (the
#: vectorized speedup gate); ``n=10**5`` and ``n=10**6`` are the
#: vectorized-only scale cases (the latter exercises the streaming
#: memory-budget path end to end).
EXTENDED_SWEEP = (
    ExperimentSpec(n=1024, adversary="none", mode="sync", seed=0),
    ExperimentSpec(n=512, adversary="none", mode="async", seed=0),
    ExperimentSpec(
        n=4096, adversary="none", mode="sync", seed=0,
        wrong_candidate_mode="common_wrong",
    ),
    ExperimentSpec(
        n=4096, adversary="none", mode="sync", seed=0,
        wrong_candidate_mode="common_wrong", backend="vectorized",
    ),
    ExperimentSpec(
        n=100_000, adversary="none", mode="sync", seed=0,
        wrong_candidate_mode="common_wrong", backend="vectorized",
    ),
    ExperimentSpec(
        n=1_000_000, adversary="none", mode="sync", seed=0,
        wrong_candidate_mode="common_wrong", backend="vectorized",
    ),
)

#: the plan behind the ``pooled_n2``/``distributed_n*`` overhead cases: six
#: quick specs, enough shards for two or four workers to actually interleave
DISTRIBUTED_BENCH_PLAN = ExperimentPlan(
    ns=(64,), adversaries=("none", "silent"), modes=("sync",), seeds=(0, 1, 2)
)

#: timed repetitions for the quick local check (``python -m repro bench``)
DEFAULT_REPEATS = 3

#: timed repetitions for the committed update (``--update``); the *minimum*
#: wall-clock is reported, the standard low-noise estimator on shared machines
UPDATE_REPEATS = 5

#: wall-clock seconds of the *seed* engine (commit 7eb7f85, pre event-kernel)
#: on the fixed sweep — minimum of 3 runs per case, measured in a clean
#: worktree on the reference machine; keyed by ExperimentSpec.key.
SEED_BASELINE_SECONDS: Dict[str, float] = {
    "sync:none:n512:s0": 17.961,
    "sync:silent:n512:s0": 17.444,
    "async:none:n256:s0": 25.640,
}


def _git_commit() -> str:
    """Short HEAD commit (``+dirty`` if the tree has uncommitted changes).

    The dirty marker is the provenance fix for the trajectory file: a sweep
    measured on top of uncommitted work used to be silently attributed to
    the parent commit, so ``BENCH_kernel.json`` could claim numbers for a
    tree that never existed.  ``"unknown"`` outside a git checkout.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False,
        )
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=10, check=False,
        )
    except (OSError, subprocess.SubprocessError):  # pragma: no cover - git missing/hung
        return "unknown"
    commit = out.stdout.strip() or "unknown"
    if commit != "unknown" and status.stdout.strip():
        commit += "+dirty"
    return commit


def verify_provenance(path: str = "BENCH_kernel.json") -> str:
    """Assert the recorded measurement commit matches the checked-out HEAD.

    The CI perf job regenerates the quick sweep and then calls this, so the
    pipeline fails loudly if the provenance machinery ever stops recording
    the measurement-time commit (the ``d567550`` staleness this replaces).
    Returns the verified commit string.
    """
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    recorded = str((report.get("git") or {}).get("commit") or "unknown")
    head = _git_commit()
    if recorded != head:
        raise RuntimeError(
            f"stale benchmark provenance in {path}: recorded git.commit is "
            f"{recorded!r} but HEAD is {head!r}; re-run `python -m repro bench "
            "--update` at the commit being measured"
        )
    return recorded


#: the child program of :func:`measure_peak_rss`: run one spec from JSON and
#: print the process-lifetime resident-set high-water mark
_RSS_CHILD = """\
import json, resource, sys
from repro.experiments.plan import ExperimentSpec
ExperimentSpec.from_dict(json.loads(sys.argv[1])).run()
print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
"""


def measure_peak_rss(spec: ExperimentSpec) -> Optional[float]:
    """Peak RSS (MB) of running ``spec`` once in a fresh interpreter.

    ``ru_maxrss`` is a process-lifetime high-water mark, so an in-process
    measurement would report whichever earlier case was largest; a cold
    subprocess per case is the honest number (it includes building the
    sampler tables, exactly what a standalone run of that case pays).
    Returns ``None`` where the measurement is unavailable (no ``resource``
    module outside POSIX, or the child failed).
    """
    payload = json.dumps(spec.to_dict())
    try:
        proc = subprocess.run(
            [sys.executable, "-c", _RSS_CHILD, payload],
            capture_output=True, text=True, timeout=3600, check=False,
        )
    except (OSError, subprocess.SubprocessError):  # pragma: no cover - spawn failure
        return None
    if proc.returncode != 0:
        return None
    try:
        ru_maxrss = int(proc.stdout.strip().splitlines()[-1])
    except (ValueError, IndexError):
        return None
    # Linux reports ru_maxrss in KB (macOS in bytes; this repo pins Linux CI)
    return round(ru_maxrss / 1024.0, 1)


def run_fixed_sweep(
    repeats: int = DEFAULT_REPEATS,
    specs: Sequence[ExperimentSpec] = FIXED_SWEEP,
    measure_rss: bool = False,
) -> List[Dict[str, object]]:
    """Time every case of the sweep on the current tree (serially).

    Each case is run ``repeats`` times; ``seconds`` is the minimum (the
    repeats are listed under ``seconds_all``), matching how the recorded
    baselines were measured.  With ``measure_rss=True`` every vectorized
    case additionally runs once in a fresh subprocess to record its cold
    ``peak_rss_mb`` (the memory-budget contract's observable).
    """
    cases = []
    for spec in specs:
        times = []
        result = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            result = spec.run()
            times.append(round(time.perf_counter() - start, 3))
        case: Dict[str, object] = {
            "key": spec.key,
            "n": spec.n,
            "adversary": spec.adversary,
            "mode": spec.mode,
            "seed": spec.seed,
            "backend": spec.backend,
            "seconds": min(times),
            "seconds_all": times,
            "agreement_reached": result.agreement,
            "total_messages": result.total_messages,
            "total_bits": result.total_bits,
        }
        if measure_rss and spec.backend == "vectorized":
            case["peak_rss_mb"] = measure_peak_rss(spec)
        cases.append(case)
    return cases


def run_distributed_cases(
    repeats: int = DEFAULT_REPEATS,
    plan: ExperimentPlan = DISTRIBUTED_BENCH_PLAN,
    in_process: bool = False,
) -> List[Dict[str, object]]:
    """Time the same plan through a warm pool and the distributed executor.

    Three cases in the fixed-sweep schema — ``pooled_n2`` (the
    :class:`~repro.experiments.sweep.SweepRunner` baseline with two pool
    workers), ``distributed_n2`` and ``distributed_n4`` (coordinator + TCP
    workers) — so ``BENCH_kernel.json`` tracks what shard claiming over
    localhost costs relative to ``multiprocessing``.  ``in_process=True``
    swaps worker subprocesses for threads (tests).
    """
    from repro.dist import run_distributed_sweep
    from repro.experiments.sweep import run_sweep

    def pooled(workers: int):
        return lambda: run_sweep(plan, jobs=workers)

    def distributed(workers: int):
        return lambda: run_distributed_sweep(
            plan, workers=workers, in_process=in_process
        )

    cases = []
    for key, runner in (
        ("pooled_n2", pooled(2)),
        ("distributed_n2", distributed(2)),
        ("distributed_n4", distributed(4)),
    ):
        times = []
        result = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            result = runner()
            times.append(round(time.perf_counter() - start, 3))
        cases.append(
            {
                "key": key,
                "n": max(plan.ns),
                "adversary": ",".join(plan.adversaries),
                "mode": "sync",
                "seed": 0,
                "backend": "message",
                "seconds": min(times),
                "seconds_all": times,
                "agreement_reached": all(r.agreement for r in result.records),
                "total_messages": sum(r.total_messages for r in result.records),
                "total_bits": sum(r.total_bits for r in result.records),
            }
        )
    return cases


def _previous_trajectory(previous: Optional[Dict[str, object]]) -> Dict[str, object]:
    """Fold the prior generation of the file into the trajectory mapping.

    The previous generation's own ``trajectory`` is carried over verbatim
    and its ``cases`` are appended under a label derived from its recorded
    git commit (``"pr1"`` for the original file, which predates the ``git``
    provenance key) — so every committed generation of the numbers stays
    addressable forever.
    """
    if not previous:
        return {}
    trajectory: Dict[str, object] = dict(previous.get("trajectory") or {})
    old_cases = previous.get("cases") or []
    if old_cases:
        git_info = previous.get("git") or {}
        label = str(git_info.get("commit") or "pr1")
        entry: Dict[str, object] = {
            "seconds": {
                str(case["key"]): case["seconds"] for case in old_cases
            },
            "cases": old_cases,
        }
        # Carry the generation's measurement protocol with its numbers, so a
        # min-of-2 entry is never read as if it were min-of-5.
        if previous.get("repeats") is not None:
            entry["repeats"] = previous["repeats"]
        trajectory[label] = entry
    return trajectory


def build_report(
    cases: Optional[List[Dict[str, object]]] = None,
    previous: Optional[Dict[str, object]] = None,
    repeats: int = DEFAULT_REPEATS,
    commit: Optional[str] = None,
) -> Dict[str, object]:
    """Assemble the BENCH_kernel.json payload (running the sweep if needed).

    ``commit`` is the commit captured *at measurement time* by
    :func:`write_report`; it defaults to the current HEAD only when cases are
    timed right here.
    """
    if cases is None:
        cases = run_fixed_sweep(repeats=repeats)
    speedups = {}
    for case in cases:
        baseline = SEED_BASELINE_SECONDS.get(str(case["key"]))
        if baseline is not None and case["seconds"]:
            speedups[case["key"]] = round(baseline / float(case["seconds"]), 2)

    trajectory = _previous_trajectory(previous)
    speedup_vs_previous = {}
    if previous:
        previous_seconds = {
            str(case["key"]): float(case["seconds"])
            for case in (previous.get("cases") or [])
        }
        for case in cases:
            before = previous_seconds.get(str(case["key"]))
            if before and case["seconds"]:
                speedup_vs_previous[case["key"]] = round(before / float(case["seconds"]), 2)

    # Aggregate only the cases that have a recorded baseline, so custom case
    # lists (e.g. with new sizes) degrade gracefully instead of raising.
    large_keys = [
        c["key"]
        for c in cases
        if int(c["n"]) >= 512 and str(c["key"]) in SEED_BASELINE_SECONDS
    ]
    large_baseline = sum(SEED_BASELINE_SECONDS[str(k)] for k in large_keys)
    large_current = sum(float(c["seconds"]) for c in cases if c["key"] in large_keys)
    fixed_keys = set(SEED_BASELINE_SECONDS)
    total_baseline = sum(SEED_BASELINE_SECONDS.values())
    total_current = sum(
        float(c["seconds"]) for c in cases if str(c["key"]) in fixed_keys
    )
    report: Dict[str, object] = {
        "description": (
            "Fixed engine benchmark sweep; baseline is the pre-kernel seed "
            "engine (commit 7eb7f85) timed on the same machine and specs. "
            f"All numbers are the minimum of {max(1, repeats)} runs per case; "
            "trajectory preserves every previously committed generation."
        ),
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "git": {"commit": commit or _git_commit()},
        "repeats": max(1, repeats),
        "baseline_seconds": SEED_BASELINE_SECONDS,
        "cases": cases,
        "speedup_per_case": speedups,
        "speedup_n512": (
            round(large_baseline / large_current, 2) if large_current else None
        ),
        "speedup_total": (
            round(total_baseline / total_current, 2) if total_current else None
        ),
    }
    # Same-spec message-vs-vectorized ratio at n=4096 (the backend gate).
    by_key = {str(c["key"]): float(c["seconds"]) for c in cases if c["seconds"]}
    msg_4096 = by_key.get("sync:none:n4096:s0")
    vec_4096 = by_key.get("sync:none:n4096:s0:vec")
    if msg_4096 and vec_4096:
        report["speedup_vectorized_n4096"] = round(msg_4096 / vec_4096, 2)
    # The n=10⁶ scale case: headline wall-clock (and peak RSS, when measured)
    # of the memory-budgeted vectorized engine.
    for case in cases:
        if str(case["key"]) == "sync:none:n1000000:s0:vec":
            entry: Dict[str, object] = {"seconds": case["seconds"]}
            if case.get("peak_rss_mb") is not None:
                entry["peak_rss_mb"] = case["peak_rss_mb"]
            report["vectorized_n1e6"] = entry
    # Shard-claiming cost: distributed executor vs a warm pool, same plan.
    pooled_2 = by_key.get("pooled_n2")
    dist_2 = by_key.get("distributed_n2")
    if pooled_2 and dist_2:
        report["distributed_overhead_n2"] = round(dist_2 / pooled_2, 2)
    if trajectory:
        report["trajectory"] = trajectory
    if speedup_vs_previous:
        report["speedup_vs_previous"] = speedup_vs_previous
        fixed_current = [
            float(c["seconds"]) for c in cases if str(c["key"]) in fixed_keys
        ]
        previous_fixed = [
            float(case["seconds"])
            for case in (previous.get("cases") or [])
            if str(case["key"]) in fixed_keys
        ]
        if fixed_current and len(previous_fixed) == len(fixed_current):
            report["speedup_vs_previous_total"] = round(
                sum(previous_fixed) / sum(fixed_current), 2
            )
    return report


def write_report(
    path: str = "BENCH_kernel.json",
    update: bool = False,
    repeats: Optional[int] = None,
) -> Dict[str, object]:
    """Run the benchmark sweep and write the report JSON to ``path``.

    ``update=False`` (plain ``python -m repro bench``) times the fixed sweep
    min-of-``DEFAULT_REPEATS`` and writes a fresh report — the quick local
    check.  ``update=True`` (``--update``) is the committed-artifact path:
    min-of-``UPDATE_REPEATS`` over the fixed *and* extended sweeps, with the
    previous generation of the file preserved under ``trajectory`` and
    per-case speedups against it.
    """
    previous: Optional[Dict[str, object]] = None
    if update:
        try:
            with open(path, encoding="utf-8") as fh:
                previous = json.load(fh)
        except (OSError, ValueError):
            previous = None
    if repeats is None:
        repeats = UPDATE_REPEATS if update else DEFAULT_REPEATS
    specs = tuple(FIXED_SWEEP) + (tuple(EXTENDED_SWEEP) if update else ())
    # Capture provenance *before* the (long) timed sweep: the numbers belong
    # to the tree as it stood when measurement started, not when it finished.
    commit = _git_commit()
    # --update also measures per-case peak RSS (a subprocess per vectorized
    # case) so the committed artifact carries the memory trajectory
    cases = run_fixed_sweep(repeats=repeats, specs=specs, measure_rss=update)
    if update:
        cases = cases + run_distributed_cases(repeats=repeats)
    report = build_report(cases=cases, previous=previous, repeats=repeats, commit=commit)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1)
    return report
