"""The fixed kernel benchmark sweep behind ``BENCH_kernel.json``.

``BENCH_kernel.json`` is the repo's performance trajectory for the simulation
engine: a *fixed* sweep (same specs, same seeds, forever) timed on the
current tree and compared against the recorded baseline of the pre-kernel
seed engine.  Future PRs re-run ``python -m repro bench`` (or
``scripts/bench_kernel.py``) and compare against both numbers.

Keep :data:`FIXED_SWEEP` stable — the trajectory is only meaningful while
the workload stays identical.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Dict, List, Optional

from repro.experiments.plan import ExperimentSpec

#: the fixed sweep: do not change without resetting the baseline
FIXED_SWEEP = (
    ExperimentSpec(n=512, adversary="none", mode="sync", seed=0),
    ExperimentSpec(n=512, adversary="silent", mode="sync", seed=0),
    ExperimentSpec(n=256, adversary="none", mode="async", seed=0),
)

#: default number of timed repetitions per case; the *minimum* wall-clock is
#: reported, which is the standard low-noise estimator on shared machines
DEFAULT_REPEATS = 3

#: wall-clock seconds of the *seed* engine (commit 7eb7f85, pre event-kernel)
#: on the fixed sweep — minimum of 3 runs per case, measured in a clean
#: worktree on the reference machine; keyed by ExperimentSpec.key.
SEED_BASELINE_SECONDS: Dict[str, float] = {
    "sync:none:n512:s0": 17.961,
    "sync:silent:n512:s0": 17.444,
    "async:none:n256:s0": 25.640,
}


def run_fixed_sweep(repeats: int = DEFAULT_REPEATS) -> List[Dict[str, object]]:
    """Time every case of the fixed sweep on the current tree (serially).

    Each case is run ``repeats`` times; ``seconds`` is the minimum (the
    repeats are listed under ``seconds_all``), matching how the seed
    baseline was recorded.
    """
    cases = []
    for spec in FIXED_SWEEP:
        times = []
        result = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            result = spec.run()
            times.append(round(time.perf_counter() - start, 3))
        cases.append(
            {
                "key": spec.key,
                "n": spec.n,
                "adversary": spec.adversary,
                "mode": spec.mode,
                "seed": spec.seed,
                "seconds": min(times),
                "seconds_all": times,
                "agreement_reached": result.agreement,
                "total_messages": result.total_messages,
                "total_bits": result.total_bits,
            }
        )
    return cases


def build_report(cases: Optional[List[Dict[str, object]]] = None) -> Dict[str, object]:
    """Assemble the BENCH_kernel.json payload (running the sweep if needed)."""
    if cases is None:
        cases = run_fixed_sweep()
    speedups = {}
    for case in cases:
        baseline = SEED_BASELINE_SECONDS.get(str(case["key"]))
        if baseline is not None and case["seconds"]:
            speedups[case["key"]] = round(baseline / float(case["seconds"]), 2)

    # Aggregate only the cases that have a recorded baseline, so custom case
    # lists (e.g. with new sizes) degrade gracefully instead of raising.
    large_keys = [
        c["key"]
        for c in cases
        if int(c["n"]) >= 512 and str(c["key"]) in SEED_BASELINE_SECONDS
    ]
    large_baseline = sum(SEED_BASELINE_SECONDS[str(k)] for k in large_keys)
    large_current = sum(float(c["seconds"]) for c in cases if c["key"] in large_keys)
    total_baseline = sum(SEED_BASELINE_SECONDS.values())
    total_current = sum(float(c["seconds"]) for c in cases)
    return {
        "description": (
            "Fixed engine benchmark sweep; baseline is the pre-kernel seed "
            "engine (commit 7eb7f85) timed on the same machine and specs. "
            "All numbers are the minimum of 3 runs per case."
        ),
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "baseline_seconds": SEED_BASELINE_SECONDS,
        "cases": cases,
        "speedup_per_case": speedups,
        "speedup_n512": (
            round(large_baseline / large_current, 2) if large_current else None
        ),
        "speedup_total": (
            round(total_baseline / total_current, 2) if total_current else None
        ),
    }


def write_report(path: str = "BENCH_kernel.json") -> Dict[str, object]:
    """Run the fixed sweep and write the report JSON to ``path``."""
    report = build_report()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1)
    return report
