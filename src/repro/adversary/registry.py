"""The named adversary-strategy registry.

Every concrete strategy registers itself with :func:`register_adversary`, so
benchmarks, examples and experiment specs can address attacks by name and a
user-defined attack plugs in with one decorator::

    from repro.adversary.base import Adversary
    from repro.adversary.registry import register_adversary

    @register_adversary("my_attack")
    class MyAttack(Adversary):
        def on_round(self, round_no, observed):
            ...

A registered factory is called as ``factory(byzantine_ids, knowledge)`` and
may return ``None`` for the failure-free run (that is how ``"none"`` is
implemented), which is why resolution goes through
:func:`resolve_adversary` rather than plain construction.
"""

from __future__ import annotations

from typing import Optional

from repro.adversary.base import Adversary, AdversaryKnowledge
from repro.registry import Registry

#: the global adversary registry; values are ``factory(byz_ids, knowledge)``
#: callables returning ``Optional[Adversary]`` (``None`` == failure-free run)
ADVERSARIES = Registry("adversary")


def register_adversary(name: str, *, replace: bool = False):
    """Class/function decorator registering an adversary factory under ``name``."""
    return ADVERSARIES.register(name, replace=replace)


def resolve_adversary(
    name: str,
    byzantine_ids,
    knowledge: Optional[AdversaryKnowledge] = None,
) -> Optional[Adversary]:
    """Instantiate the adversary registered under ``name`` (``"none"`` → ``None``)."""
    factory = ADVERSARIES.get(name)
    return factory(byzantine_ids, knowledge)  # type: ignore[operator]


#: the failure-free "adversary": no corrupted node ever acts
register_adversary("none")(lambda byzantine_ids, knowledge: None)
