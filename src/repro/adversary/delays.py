"""Pure scheduling adversaries for the asynchronous model.

These adversaries never send a byte; their entire power is the choice of
message delays within the reliability bound.  They isolate the *scheduling*
component of the asynchronous lower bounds from the *Byzantine traffic*
component (the :mod:`repro.adversary.cornering` attack combines both), which
is what the ablation benchmark ``bench_ablation_scheduler`` compares.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.adversary.base import Adversary, AdversaryKnowledge
from repro.adversary.registry import register_adversary
from repro.net.asynchronous import MIN_DELAY
from repro.net.simulator import SendRecord


@register_adversary("slow_knowledgeable")
class SlowKnowledgeableDelays(Adversary):
    """Delay every message *sent by a knowledgeable node* to the maximum.

    The knowledgeable nodes are the ones whose pushes and forwards carry
    ``gstring``; stretching exactly their messages maximises the time until
    quorum majorities for ``gstring`` form, without violating reliability.
    """

    def __init__(self, byzantine_ids, knowledge: AdversaryKnowledge) -> None:
        super().__init__(byzantine_ids, knowledge)
        self._slow: Set[int] = set(knowledge.knowledgeable_ids)

    def delay_for(self, record: SendRecord) -> Optional[float]:
        if record.sender in self._slow:
            return 1.0
        return MIN_DELAY


class TargetedDelayAdversary(Adversary):
    """Delay messages to/from an explicit victim set; everything else is fast."""

    def __init__(
        self,
        byzantine_ids,
        knowledge: AdversaryKnowledge,
        victims: Iterable[int],
    ) -> None:
        super().__init__(byzantine_ids, knowledge)
        self._victims = set(victims)

    def delay_for(self, record: SendRecord) -> Optional[float]:
        if record.sender in self._victims or record.dest in self._victims:
            return 1.0
        return MIN_DELAY
