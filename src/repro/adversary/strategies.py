"""Basic Byzantine strategies: silence, noise, equivocation, wrong answers.

These are the "textbook" behaviours every Byzantine-fault-tolerant protocol
must survive.  They are used throughout the test-suite and as the default
adversaries of several benchmarks; the heavier, AER-specific attacks live in
:mod:`repro.adversary.flooding` (Lemma 4/5) and
:mod:`repro.adversary.cornering` (Lemma 6).
"""

from __future__ import annotations

from typing import List, Optional

from repro.adversary.base import Adversary, AdversaryKnowledge
from repro.adversary.registry import register_adversary
from repro.core.messages import AnswerMessage, PollMessage, PushMessage
from repro.net.messages import Message
from repro.net.rng import random_bitstring
from repro.net.simulator import SendRecord


@register_adversary("silent")
class SilentAdversary(Adversary):
    """Corrupted nodes never send anything — pure crash faults.

    AER guarantees success *deterministically* in this case (introduction:
    "unlike many randomized protocols, success is guaranteed when there is no
    Byzantine fault"); the integration tests check exactly that.
    """


@register_adversary("noise")
class RandomNoiseAdversary(Adversary):
    """Corrupted nodes spray uniformly random pushes and answers.

    The noise is syntactically valid but semantically uncorrelated with the
    protocol state, so the quorum filters discard essentially all of it.  A
    per-node, per-round message budget keeps runs bounded.
    """

    def __init__(
        self,
        byzantine_ids,
        knowledge: AdversaryKnowledge,
        messages_per_round: int = 4,
        max_rounds_active: int = 6,
    ) -> None:
        super().__init__(byzantine_ids, knowledge)
        self.messages_per_round = messages_per_round
        self.max_rounds_active = max_rounds_active

    def on_round(self, round_no: int, observed: Optional[List[SendRecord]]) -> None:
        if round_no >= self.max_rounds_active or self.knowledge is None:
            return
        config = self.knowledge.config
        n = config.n
        for byz_id in sorted(self.byzantine_ids):
            for _ in range(self.messages_per_round):
                dest = self.rng.randrange(n)
                junk = random_bitstring(self.rng, config.string_length)
                if self.rng.random() < 0.5:
                    message: Message = PushMessage(candidate=junk)
                else:
                    message = AnswerMessage(candidate=junk)
                self.send_as(byz_id, dest, message)

    def on_start(self) -> None:
        # In the asynchronous scheduler there are no rounds; fire the budget once.
        self.on_round(0, None)


@register_adversary("equivocate")
class EquivocatingPushAdversary(Adversary):
    """Corrupted nodes push *different* wrong strings to different victims.

    Channels are only authenticated (no transferable signatures), so nothing
    prevents a Byzantine node from telling every victim a different story;
    the push-quorum majority filter is what renders this harmless.
    """

    def __init__(
        self,
        byzantine_ids,
        knowledge: AdversaryKnowledge,
        victims_per_node: int = 16,
    ) -> None:
        super().__init__(byzantine_ids, knowledge)
        self.victims_per_node = victims_per_node

    def _attack(self) -> None:
        if self.knowledge is None:
            return
        config = self.knowledge.config
        for byz_id in sorted(self.byzantine_ids):
            victims = self.rng.sample(
                range(config.n), min(self.victims_per_node, config.n)
            )
            for victim in victims:
                story = random_bitstring(self.rng, config.string_length)
                self.send_as(byz_id, victim, PushMessage(candidate=story))

    def on_start(self) -> None:
        self._attack()

    def on_round(self, round_no: int, observed: Optional[List[SendRecord]]) -> None:
        if round_no == 0:
            return  # the attack fires from on_start already


@register_adversary("wrong_answer")
class WrongAnswerAdversary(Adversary):
    """Corrupted nodes try to make pollers decide a wrong string (Lemma 7 attack).

    Every corrupted node that receives a ``Poll`` replies with the
    adversary's chosen wrong string instead of the queried one, and every
    corrupted node additionally pushes the wrong string.  Safety relies on
    poll lists having correct majorities (Property 1), which the Lemma 7
    benchmark verifies empirically.
    """

    def __init__(
        self,
        byzantine_ids,
        knowledge: AdversaryKnowledge,
        wrong_string: Optional[str] = None,
    ) -> None:
        super().__init__(byzantine_ids, knowledge)
        self._wrong_string = wrong_string

    @property
    def wrong_string(self) -> str:
        """The string the adversary is trying to get decided."""
        if self._wrong_string is None:
            assert self.knowledge is not None
            self._wrong_string = "1" * self.knowledge.config.string_length
        return self._wrong_string

    def on_start(self) -> None:
        if self.knowledge is None:
            return
        push = PushMessage(candidate=self.wrong_string)
        samplers = self.knowledge.samplers
        for byz_id in sorted(self.byzantine_ids):
            # Push the wrong string to every node whose push quorum contains us,
            # i.e. follow the protocol but for the wrong value.
            for victim in samplers.push.inverse(self.wrong_string, byz_id):
                self.send_as(byz_id, victim, push)

    def on_deliver(self, byz_id: int, sender: int, message: Message) -> None:
        if isinstance(message, PollMessage):
            # Answer the poll, but lie: claim the wrong string is the global one.
            self.send_as(byz_id, sender, AnswerMessage(candidate=self.wrong_string))
            # Also "confirm" whatever was asked if it is already the wrong string,
            # maximising the chance of a wrong decision.
            if message.candidate == self.wrong_string:
                self.send_as(byz_id, sender, AnswerMessage(candidate=message.candidate))

    def on_round(self, round_no: int, observed: Optional[List[SendRecord]]) -> None:
        """Nothing extra per round; the attack is reactive."""
