"""Push-phase flooding attacks (the Lemma 3/4/5 adversaries).

The push phase is "impervious to flooding" in the sense that nodes never
*react* to a push by sending messages, so the adversary cannot amplify
traffic; what it *can* try is to inflate candidate lists:

* :class:`PushFloodAdversary` sprays many distinct strings at many victims.
  Because a victim only accepts a string pushed by a majority of the
  corresponding push quorum ``I(s, x)``, essentially none of these strings
  are accepted — the benchmark for Lemma 3/4 shows the candidate-list sizes
  stay ``O(n)`` in total and the per-node push cost stays ``O(log n)``
  messages.

* :class:`QuorumTargetedFloodAdversary` is the strongest candidate-list
  attack available to a non-adaptive adversary: for each victim it searches
  for strings whose push quorum happens to contain enough corrupted nodes to
  reach a majority (possibly helped by correct nodes that hold a common wrong
  string), and pushes exactly those.  This is the "seize control of several
  Input Quorums" scenario from the paper's introduction, and it is why AER is
  *not* load-balanced: the victims end up verifying many strings.  Lemma 4's
  claim is that the *total* damage remains ``O(n)`` strings.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.adversary.base import Adversary, AdversaryKnowledge
from repro.adversary.registry import register_adversary
from repro.core.messages import PushMessage
from repro.net.rng import random_bitstring
from repro.net.simulator import SendRecord


@register_adversary("push_flood")
class PushFloodAdversary(Adversary):
    """Spray random candidate strings at random victims during the push phase."""

    def __init__(
        self,
        byzantine_ids,
        knowledge: AdversaryKnowledge,
        strings_per_node: int = 8,
        victims_per_string: int = 8,
    ) -> None:
        super().__init__(byzantine_ids, knowledge)
        self.strings_per_node = strings_per_node
        self.victims_per_string = victims_per_string

    def on_start(self) -> None:
        if self.knowledge is None:
            return
        config = self.knowledge.config
        for byz_id in sorted(self.byzantine_ids):
            for _ in range(self.strings_per_node):
                junk = random_bitstring(self.rng, config.string_length)
                victims = self.rng.sample(
                    range(config.n), min(self.victims_per_string, config.n)
                )
                push = PushMessage(candidate=junk)
                for victim in victims:
                    self.send_as(byz_id, victim, push)

    def on_round(self, round_no: int, observed: Optional[List[SendRecord]]) -> None:
        """The flood fires once at start; nothing to do per round."""


@register_adversary("quorum_flood")
class QuorumTargetedFloodAdversary(Adversary):
    """Force strings into victims' candidate lists by exploiting corrupt quorum majorities.

    For each victim ``x`` the adversary samples candidate strings ``s`` and
    checks how many members of ``I(s, x)`` it controls (plus, optionally,
    correct nodes known to hold ``s`` already — the ``common_wrong`` scenario).
    When the controlled members alone reach a majority, all of them push
    ``s`` to ``x``, which *must* then accept ``s`` into ``L_x`` and later
    spend pull-phase work verifying it.
    """

    def __init__(
        self,
        byzantine_ids,
        knowledge: AdversaryKnowledge,
        victims: Optional[List[int]] = None,
        strings_tried_per_victim: int = 200,
        max_forced_per_victim: int = 8,
    ) -> None:
        super().__init__(byzantine_ids, knowledge)
        self.strings_tried_per_victim = strings_tried_per_victim
        self.max_forced_per_victim = max_forced_per_victim
        self._victims = victims
        #: strings successfully forced, per victim — inspected by the Lemma 4 benchmark
        self.forced: Dict[int, List[str]] = {}

    def _choose_victims(self) -> List[int]:
        assert self.knowledge is not None
        if self._victims is not None:
            return list(self._victims)
        correct = self.knowledge.correct_ids
        count = max(1, min(8, len(correct)))
        return self.rng.sample(correct, count)

    def _find_forcible_strings(self, victim: int) -> List[Tuple[str, List[int]]]:
        """Search random strings whose push quorum at ``victim`` has a corrupt majority."""
        assert self.knowledge is not None
        config = self.knowledge.config
        sampler = self.knowledge.samplers.push
        found: List[Tuple[str, List[int]]] = []
        for _ in range(self.strings_tried_per_victim):
            if len(found) >= self.max_forced_per_victim:
                break
            candidate = random_bitstring(self.rng, config.string_length)
            quorum = sampler.quorum(candidate, victim)
            controlled = [member for member in quorum if member in self.byzantine_ids]
            if len(controlled) > len(quorum) // 2:
                found.append((candidate, controlled))
        return found

    def on_start(self) -> None:
        if self.knowledge is None:
            return
        for victim in self._choose_victims():
            for candidate, controlled in self._find_forcible_strings(victim):
                push = PushMessage(candidate=candidate)
                for byz_id in controlled:
                    self.send_as(byz_id, victim, push)
                self.forced.setdefault(victim, []).append(candidate)

    def on_round(self, round_no: int, observed: Optional[List[SendRecord]]) -> None:
        """The attack fires once at start; nothing to do per round."""

    @property
    def total_forced(self) -> int:
        """Total number of (victim, string) pairs successfully forced."""
        return sum(len(strings) for strings in self.forced.values())
