"""Adversary base class and the knowledge it is granted.

The base :class:`Adversary` implements the
:class:`~repro.net.simulator.AdversaryProtocol` with entirely passive
behaviour (corrupted nodes stay silent — pure crash faults) so that concrete
strategies only override the hooks they care about.

:class:`AdversaryKnowledge` packages the *full information* the model grants
the adversary: the protocol configuration, the shared samplers, the corrupt
set, and — because the adversary observes all traffic and knows the initial
state — the scenario itself, including ``gstring`` and which correct nodes
know it.  (The adversary is still non-adaptive: the corrupt set is fixed
before the run, and in the honest experiments it is chosen *before*
``gstring`` is drawn, exactly as Lemma 5 assumes.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.config import AERConfig, SamplerSuite
from repro.core.scenario import AERScenario
from repro.net.messages import Message
from repro.net.simulator import AdversaryContext, SendRecord


@dataclass(frozen=True)
class AdversaryKnowledge:
    """Everything a full-information adversary may consult when acting."""

    config: AERConfig
    samplers: SamplerSuite
    scenario: AERScenario

    @property
    def gstring(self) -> str:
        """The global string (the adversary observes it from the very first pushes)."""
        return self.scenario.gstring

    @property
    def correct_ids(self) -> List[int]:
        """Identities of the correct nodes."""
        return self.scenario.correct_ids

    @property
    def knowledgeable_ids(self) -> List[int]:
        """Correct nodes that start out knowing ``gstring``."""
        return self.scenario.knowledgeable_ids


class Adversary:
    """Base adversary: controls ``byzantine_ids`` but keeps them silent.

    Subclasses override any of the event hooks (:meth:`on_start`,
    :meth:`on_round`, :meth:`on_deliver`, :meth:`observe_send`,
    :meth:`delay_for`) and use :meth:`send_as` / :meth:`broadcast_as` to emit
    messages from the identities they control.
    """

    def __init__(
        self,
        byzantine_ids: Iterable[int],
        knowledge: Optional[AdversaryKnowledge] = None,
    ) -> None:
        self._byzantine_ids = frozenset(int(i) for i in byzantine_ids)
        self.knowledge = knowledge
        self._context: Optional[AdversaryContext] = None
        #: total messages this adversary has injected (strategies use it for budgets)
        self.messages_sent = 0

    # ------------------------------------------------------------------
    # AdversaryProtocol
    # ------------------------------------------------------------------
    @property
    def byzantine_ids(self) -> frozenset:
        """The corrupt set (fixed before the run — non-adaptive adversary)."""
        return self._byzantine_ids

    def bind(self, context: AdversaryContext) -> None:
        """Attach the simulator-provided context (called by the simulator)."""
        self._context = context

    def on_start(self) -> None:
        """Called once at time zero.  Default: do nothing."""

    def on_deliver(self, byz_id: int, sender: int, message: Message) -> None:
        """A message reached one of the corrupted nodes.  Default: ignore it."""

    def on_round(self, round_no: int, observed: Optional[List[SendRecord]]) -> None:
        """Synchronous turn.  ``observed`` is non-``None`` only for a rushing adversary."""

    def observe_send(self, record: SendRecord) -> None:
        """Asynchronous full-information observation of every sent message."""

    def delay_for(self, record: SendRecord) -> Optional[float]:
        """Choose the delay of a message (async); ``None`` keeps the default policy."""
        return None

    # ------------------------------------------------------------------
    # helpers for subclasses
    # ------------------------------------------------------------------
    @property
    def context(self) -> AdversaryContext:
        """The bound context; raises if used outside a simulation."""
        if self._context is None:
            raise RuntimeError("adversary is not bound to a simulator")
        return self._context

    @property
    def rng(self):
        """The adversary's own RNG (derived from the master seed)."""
        return self.context.rng

    def send_as(self, byz_id: int, dest: int, message: Message) -> None:
        """Send ``message`` to ``dest`` from the corrupted identity ``byz_id``."""
        self.context.send_as(byz_id, dest, message)
        self.messages_sent += 1

    def broadcast_as(self, byz_id: int, dests: Iterable[int], message: Message) -> None:
        """Send the same message from ``byz_id`` to every destination in ``dests``."""
        for dest in dests:
            self.send_as(byz_id, dest, message)
