"""Corrupt-set selection (the adversary's one *offline* choice).

The adversary of Section 2.1 is non-adaptive: the ``t`` corrupted identities
are fixed before the execution starts.  It may, however, choose them
cleverly.  Two selectors are provided:

* :func:`random_corrupt_set` — a uniformly random corrupt set, the baseline
  used by most experiments;
* :func:`quorum_targeting_corrupt_set` — a greedy selector that concentrates
  corruption inside the push/pull quorums of a string of the adversary's own
  choosing (it cannot target ``gstring``'s quorums, because ``gstring`` is
  mostly random and drawn *after* the corrupt set is fixed — this is exactly
  the argument of Lemma 5).  This is the selector behind the "Input Quorum
  seizure" discussion in the introduction: it lets the adversary force a few
  nodes to verify many strings, making AER non-load-balanced.
"""

from __future__ import annotations

import random
from typing import FrozenSet, List

from repro.core.config import SamplerSuite


def random_corrupt_set(n: int, t: int, rng: random.Random) -> FrozenSet[int]:
    """Choose ``t`` corrupted identities uniformly at random."""
    if not 0 <= t <= n:
        raise ValueError(f"t={t} outside [0, {n}]")
    return frozenset(rng.sample(range(n), t))


def quorum_targeting_corrupt_set(
    n: int,
    t: int,
    samplers: SamplerSuite,
    target_string: str,
    rng: random.Random,
    victim_count: int = 8,
) -> FrozenSet[int]:
    """Choose a corrupt set concentrated in the quorums of ``target_string``.

    The selector greedily corrupts the members of the push quorums
    ``I(target_string, x)`` for a handful of victim nodes ``x`` (so the
    adversary can later force ``target_string`` into those victims' candidate
    lists) and spends the remaining budget uniformly at random.
    """
    if not 0 <= t <= n:
        raise ValueError(f"t={t} outside [0, {n}]")
    corrupt: List[int] = []
    chosen = set()

    victims = rng.sample(range(n), min(victim_count, n))
    for victim in victims:
        for member in samplers.push.quorum(target_string, victim):
            if len(corrupt) >= t:
                break
            if member not in chosen:
                chosen.add(member)
                corrupt.append(member)
        if len(corrupt) >= t:
            break

    remaining = [i for i in range(n) if i not in chosen]
    rng.shuffle(remaining)
    while len(corrupt) < t and remaining:
        node = remaining.pop()
        chosen.add(node)
        corrupt.append(node)
    return frozenset(corrupt)
