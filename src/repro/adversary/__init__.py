"""Byzantine adversary framework (paper Section 2.1).

The adversary is *non-adaptive* (it corrupts its ``t`` nodes before the run),
has *full knowledge* of the network (it observes every message) and fully
coordinates the nodes it controls.  Two strengths are distinguished:

* **rushing** — at each synchronous step it sees the correct nodes' messages
  for that step before choosing its own (in the asynchronous model this is
  automatic);
* **non-rushing** — it must choose its step-``r`` messages independently of
  the correct nodes' step-``r`` messages.

This package provides the base class wiring an adversary into the simulators,
corrupt-set selection helpers, and a library of concrete strategies covering
the attacks the paper's analysis reasons about: silence/crash, random noise,
equivocation, push flooding and quorum-targeted flooding (Lemma 4/5), wrong
answers (Lemma 7), adversarial scheduling and the poll-overload "cornering"
attack (Lemma 6).
"""

from repro.adversary.base import Adversary, AdversaryKnowledge
from repro.adversary.registry import (
    ADVERSARIES,
    register_adversary,
    resolve_adversary,
)
from repro.adversary.corruption import (
    random_corrupt_set,
    quorum_targeting_corrupt_set,
)
from repro.adversary.strategies import (
    SilentAdversary,
    RandomNoiseAdversary,
    EquivocatingPushAdversary,
    WrongAnswerAdversary,
)
from repro.adversary.flooding import PushFloodAdversary, QuorumTargetedFloodAdversary
from repro.adversary.cornering import CorneringAdversary
from repro.adversary.delays import SlowKnowledgeableDelays, TargetedDelayAdversary

__all__ = [
    "Adversary",
    "AdversaryKnowledge",
    "ADVERSARIES",
    "register_adversary",
    "resolve_adversary",
    "random_corrupt_set",
    "quorum_targeting_corrupt_set",
    "SilentAdversary",
    "RandomNoiseAdversary",
    "EquivocatingPushAdversary",
    "WrongAnswerAdversary",
    "PushFloodAdversary",
    "QuorumTargetedFloodAdversary",
    "CorneringAdversary",
    "SlowKnowledgeableDelays",
    "TargetedDelayAdversary",
]
