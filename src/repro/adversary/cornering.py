"""The poll-overload ("cornering") attack analysed in Lemma 6.

The only way the adversary can slow the pull phase down is to exhaust the
``log² n`` answer budgets of the poll-list members that honest pollers rely
on.  Lemma 6 bounds how far this can go: each corrupted node's requests are
only *considered* when they are for the victim's believed string, requests
not vouched for by a pull-quorum majority are not forwarded, and Property 2
of the sampler ``J`` prevents the adversary from confining the honest polls
to the overloaded region — so overload chains die out after
``O(log n / log log n)`` steps.

:class:`CorneringAdversary` implements the strongest version available in our
model: it is rushing (in the asynchronous scheduler it sees every honest
``Poll`` when it is sent), it targets exactly the poll-list members the
honest nodes are waiting for, it floods them with well-formed requests for
``gstring`` (which they must consider), and it simultaneously delays all
honest traffic to the maximum the reliability constraint allows.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.adversary.base import Adversary, AdversaryKnowledge
from repro.adversary.registry import register_adversary
from repro.core.messages import PollMessage, PullMessage
from repro.net.simulator import SendRecord
from repro.net.asynchronous import MIN_DELAY


@register_adversary("cornering")
class CorneringAdversary(Adversary):
    """Overload the poll-list members honest pollers depend on.

    Parameters
    ----------
    requests_per_node:
        How many poll requests each corrupted node issues (the paper's
        analysis lets each corrupted node send ``O(log n)`` of them).
    labels_tried:
        How many random labels are tried when searching for a label whose
        poll list contains a chosen victim.
    delay_honest:
        Whether to stretch every correct-to-correct message to the maximum
        delay (asynchronous scheduler only).
    """

    def __init__(
        self,
        byzantine_ids,
        knowledge: AdversaryKnowledge,
        requests_per_node: Optional[int] = None,
        labels_tried: int = 64,
        delay_honest: bool = True,
    ) -> None:
        super().__init__(byzantine_ids, knowledge)
        if requests_per_node is None:
            requests_per_node = max(4, knowledge.config.quorum_size)
        self.requests_per_node = requests_per_node
        self.labels_tried = labels_tried
        self.delay_honest = delay_honest
        #: poll-list members observed to be serving honest polls (rushing knowledge)
        self._observed_targets: List[int] = []
        self._attacked: Set[int] = set()
        self._budget_left = {byz: requests_per_node for byz in self.byzantine_ids}

    # ------------------------------------------------------------------
    # observation (rushing / asynchronous full information)
    # ------------------------------------------------------------------
    def observe_send(self, record: SendRecord) -> None:
        if isinstance(record.message, PollMessage) and record.sender not in self.byzantine_ids:
            # These are exactly the nodes whose answers the poller is waiting for.
            self._observed_targets.append(record.dest)
            self._attack_target(record.dest)

    def on_round(self, round_no: int, observed: Optional[List[SendRecord]]) -> None:
        if observed is None:
            # Non-rushing: attack arbitrary knowledgeable nodes instead.
            if round_no == 0 and self.knowledge is not None:
                for victim in self.knowledge.knowledgeable_ids[:16]:
                    self._attack_target(victim)
            return
        for record in observed:
            if isinstance(record.message, PollMessage):
                self._attack_target(record.dest)

    # ------------------------------------------------------------------
    # the overload itself
    # ------------------------------------------------------------------
    def _attack_target(self, victim: int) -> None:
        """Spend corrupted nodes' request budgets on overloading ``victim``."""
        if self.knowledge is None or victim in self._attacked:
            return
        self._attacked.add(victim)
        gstring = self.knowledge.gstring
        poll_sampler = self.knowledge.samplers.poll
        pull_sampler = self.knowledge.samplers.pull

        for byz_id in sorted(self.byzantine_ids):
            if self._budget_left.get(byz_id, 0) <= 0:
                continue
            label = self._find_label_containing(byz_id, victim)
            if label is None:
                continue
            self._budget_left[byz_id] -= 1
            # A well-formed poll for gstring: the victim must consider it.
            self.send_as(byz_id, victim, PollMessage(candidate=gstring, label=label))
            # Also push the request through the pull quorums so it carries the
            # majority evidence needed to actually consume an answer slot.
            pull = PullMessage(candidate=gstring, label=label)
            for member in pull_sampler.quorum(gstring, byz_id):
                self.send_as(byz_id, member, pull)

    def _find_label_containing(self, byz_id: int, victim: int) -> Optional[int]:
        """Find a label ``r`` with ``victim ∈ J(byz_id, r)`` (the adversary knows ``J``)."""
        assert self.knowledge is not None
        poll_sampler = self.knowledge.samplers.poll
        for _ in range(self.labels_tried):
            label = self.rng.randrange(poll_sampler.label_space)
            if victim in poll_sampler.poll_list(byz_id, label):
                return label
        return None

    # ------------------------------------------------------------------
    # scheduling power
    # ------------------------------------------------------------------
    def delay_for(self, record: SendRecord) -> Optional[float]:
        if not self.delay_honest:
            return None
        if record.sender in self.byzantine_ids:
            return MIN_DELAY  # adversarial traffic arrives as fast as possible
        return 1.0  # honest traffic is delayed to the reliability limit

    @property
    def attacked_targets(self) -> int:
        """Number of distinct poll-list members this adversary tried to overload."""
        return len(self._attacked)


@register_adversary("cornering_nodelay")
def cornering_traffic_only(byzantine_ids, knowledge: AdversaryKnowledge):
    """Cornering's overload traffic with honest delays left to the benign policy.

    The scheduler-ablation regime that attributes the asynchronous slowdown:
    the adversary still floods the poll-list members honest pollers depend
    on, but no longer stretches correct-to-correct delays — isolating the
    cost of Byzantine *traffic* from the cost of Byzantine *scheduling*.
    """
    return CorneringAdversary(byzantine_ids, knowledge, delay_honest=False)
