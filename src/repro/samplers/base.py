"""Common parameters for the sampler constructions."""

from __future__ import annotations

import math
from dataclasses import dataclass


def default_quorum_size(n: int, multiplier: float = 2.0, minimum: int = 7) -> int:
    """Return the quorum/poll-list size ``d = O(log n)`` used throughout.

    The paper only requires ``d = Θ(log n)`` (Lemmas 1 and 2); the multiplier
    trades failure probability against communication and is swept by the
    ``bench_ablation_quorum_size`` benchmark.  The value is forced odd so that
    "more than half" thresholds never tie.
    """
    d = max(minimum, int(math.ceil(multiplier * math.log2(max(2, n)))))
    if d % 2 == 0:
        d += 1
    return min(d, max(1, n))


def default_label_space(n: int) -> int:
    """Cardinality of the label domain ``R`` (polynomial in ``n`` per Lemma 2)."""
    return max(16, n * n)


def default_string_length(n: int, multiplier: int = 4) -> int:
    """Length ``c log n`` of ``gstring`` (Lemma 5 requires a large enough ``c``)."""
    return max(8, multiplier * int(math.ceil(math.log2(max(2, n)))))


@dataclass(frozen=True)
class SamplerSpec:
    """Shared parameters of the three samplers ``I``, ``H`` and ``J``.

    Attributes
    ----------
    n:
        System size.
    quorum_size:
        ``d``, the size of each push quorum, pull quorum and poll list.
    label_space:
        Cardinality of the label domain ``R`` used by ``J``.
    seed:
        Public seed of the keyed hash realising the samplers.  The seed is
        *public* information — the adversary is allowed to know the samplers
        (full-information model); unpredictability comes from the private
        per-node labels ``r`` and from ``gstring``, not from the seed.
    """

    n: int
    quorum_size: int
    label_space: int
    seed: int = 0

    @staticmethod
    def for_system(n: int, seed: int = 0, quorum_multiplier: float = 2.0) -> "SamplerSpec":
        """Build the default specification for a system of ``n`` nodes."""
        return SamplerSpec(
            n=n,
            quorum_size=default_quorum_size(n, multiplier=quorum_multiplier),
            label_space=default_label_space(n),
            seed=seed,
        )
