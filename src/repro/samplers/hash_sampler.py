"""Keyed-hash quorum samplers ``I`` and ``H`` (paper Lemma 1).

Lemma 1 (from [KLST11]) asserts the existence of a ``(θ, δ)``-sampler
``H : D × [n] → [n]^d`` with ``d = O(log n)`` such that no node is
overloaded.  We realise it constructively with a keyed hash: the quorum of
the pair ``(s, x)`` is the multiset-free set of ``d`` nodes obtained by
hashing ``(seed, name, s, x, counter)`` until ``d`` distinct nodes have been
produced.  Because the hash behaves like a random function, the construction
is a uniformly random ``d``-subset for every input pair — which is exactly
the probabilistic object whose existence (with the required properties) the
lemma proves.  The empirical property checkers in
:mod:`repro.samplers.properties` verify, for the sizes used in the
experiments, that no node is overloaded and that the deviation bound holds.

The same class implements both ``I`` (push quorums) and ``H`` (pull quorums);
they differ only in the ``name`` key so the two families are independent.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.net.rng import stable_hash
from repro.samplers.base import SamplerSpec


class QuorumSampler:
    """Deterministic map from ``(string, node)`` pairs to quorums of size ``d``.

    Parameters
    ----------
    spec:
        Shared sampler parameters (``n``, ``d``, seed).
    name:
        Family name (``"I"`` for push quorums, ``"H"`` for pull quorums);
        different names give independent samplers from the same seed.
    """

    def __init__(self, spec: SamplerSpec, name: str) -> None:
        self.spec = spec
        self.name = name
        self.n = spec.n
        self.quorum_size = min(spec.quorum_size, spec.n)
        self._quorum_cache: Dict[Tuple[str, int], Tuple[int, ...]] = {}
        self._inverse_cache: Dict[str, Dict[int, Tuple[int, ...]]] = {}
        self._max_cached_strings = 64

    # ------------------------------------------------------------------
    # forward direction
    # ------------------------------------------------------------------
    def quorum(self, s: str, x: int) -> Tuple[int, ...]:
        """Return the quorum assigned to string ``s`` and node ``x``.

        The result is a sorted tuple of ``d`` distinct node identities and is
        identical on every node evaluating it (shared sampler assumption).
        """
        key = (s, x)
        cached = self._quorum_cache.get(key)
        if cached is not None:
            return cached

        members: List[int] = []
        seen = set()
        counter = 0
        while len(members) < self.quorum_size:
            candidate = stable_hash(self.spec.seed, self.name, s, x, counter) % self.n
            counter += 1
            if candidate not in seen:
                seen.add(candidate)
                members.append(candidate)
        result = tuple(sorted(members))

        if len(self._quorum_cache) > 4 * self.n * self._max_cached_strings:
            self._quorum_cache.clear()
        self._quorum_cache[key] = result
        return result

    def contains(self, s: str, x: int, member: int) -> bool:
        """Whether ``member`` belongs to the quorum of ``(s, x)``."""
        return member in self.quorum(s, x)

    def majority_threshold(self, s: str, x: int) -> int:
        """Smallest count that constitutes "more than half" of quorum ``(s, x)``."""
        return len(self.quorum(s, x)) // 2 + 1

    # ------------------------------------------------------------------
    # inverse direction
    # ------------------------------------------------------------------
    def inverse(self, s: str, y: int) -> Tuple[int, ...]:
        """Return every node ``x`` such that ``y ∈ quorum(s, x)``.

        The push phase needs this: a node ``y`` holding candidate ``s_y``
        pushes it to exactly the nodes whose push quorum for ``s_y`` contains
        ``y``.  Computing the inverse costs one pass over all ``n`` nodes and
        is cached per string.
        """
        table = self._inverse_table(s)
        return table.get(y, ())

    def _inverse_table(self, s: str) -> Dict[int, Tuple[int, ...]]:
        cached = self._inverse_cache.get(s)
        if cached is not None:
            return cached
        builder: Dict[int, List[int]] = {}
        for x in range(self.n):
            for member in self.quorum(s, x):
                builder.setdefault(member, []).append(x)
        table = {member: tuple(targets) for member, targets in builder.items()}
        if len(self._inverse_cache) >= self._max_cached_strings:
            self._inverse_cache.clear()
        self._inverse_cache[s] = table
        return table

    def load_of(self, s: str, y: int) -> int:
        """Number of quorums (over all ``x``) for string ``s`` that contain ``y``.

        A node is *overloaded* (Definition in Section 2.2) for constant ``a``
        when this exceeds ``a · d``; Lemma 1 requires that no node is.
        """
        return len(self.inverse(s, y))
