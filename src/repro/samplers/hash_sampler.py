"""Keyed-hash quorum samplers ``I`` and ``H`` (paper Lemma 1).

Lemma 1 (from [KLST11]) asserts the existence of a ``(θ, δ)``-sampler
``H : D × [n] → [n]^d`` with ``d = O(log n)`` such that no node is
overloaded.  We realise it constructively with a keyed hash: the quorum of
the pair ``(s, x)`` is the multiset-free set of ``d`` nodes obtained by
hashing ``(seed, name, s, x, counter)`` until ``d`` distinct nodes have been
produced.  Because the hash behaves like a random function, the construction
is a uniformly random ``d``-subset for every input pair — which is exactly
the probabilistic object whose existence (with the required properties) the
lemma proves.  The empirical property checkers in
:mod:`repro.samplers.properties` verify, for the sizes used in the
experiments, that no node is overloaded and that the deviation bound holds.

The same class implements both ``I`` (push quorums) and ``H`` (pull quorums);
they differ only in the ``name`` key so the two families are independent.

Hot-path note: all per-string state — quorum tuples, ``frozenset`` membership
views, majority thresholds and the inverse table — lives in one
:class:`~repro.samplers.tables.QuorumTable` per string, held in a bounded LRU
cache.  The protocol layer fetches the table once per message via
:meth:`QuorumSampler.table` and then performs O(1) ``contains``/``threshold``
lookups, instead of recomputing (or even re-scanning) quorum tuples.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.net.rng import absorb, hash_prefix
from repro.samplers.base import SamplerSpec
from repro.samplers.tables import LRUCache, QuorumTable

#: default number of strings whose tables are retained (LRU) per sampler
DEFAULT_MAX_CACHED_STRINGS = 64


class QuorumSampler:
    """Deterministic map from ``(string, node)`` pairs to quorums of size ``d``.

    Parameters
    ----------
    spec:
        Shared sampler parameters (``n``, ``d``, seed).
    name:
        Family name (``"I"`` for push quorums, ``"H"`` for pull quorums);
        different names give independent samplers from the same seed.
    max_cached_strings:
        Capacity of the per-string table cache.  Eviction is LRU — only the
        coldest string's table is dropped on overflow, never the whole cache.
    """

    def __init__(
        self,
        spec: SamplerSpec,
        name: str,
        max_cached_strings: int = DEFAULT_MAX_CACHED_STRINGS,
    ) -> None:
        self.spec = spec
        self.name = name
        self.n = spec.n
        self.quorum_size = min(spec.quorum_size, spec.n)
        self._tables: LRUCache[str, QuorumTable] = LRUCache(max_cached_strings)
        # One-slot memo for the most recently requested string: consecutive
        # messages overwhelmingly concern the same candidate, and the memo
        # answers them without touching the LRU bookkeeping.
        self._hot_string: Optional[str] = None
        self._hot_table: Optional[QuorumTable] = None
        #: scratch space shared by every protocol engine bound to this sampler
        #: (all nodes of one run share the sampler suite); engines use it to
        #: memoise pure per-message facts across the recipients of a multicast
        self.shared_scratch: dict = {}

    # ------------------------------------------------------------------
    # table access (the hot-path API)
    # ------------------------------------------------------------------
    def table(self, s: str) -> QuorumTable:
        """Return the (cached) precomputed table for string ``s``.

        Protocol code that performs several lookups for the same string
        should fetch the table once and query it directly.
        """
        if s == self._hot_string:
            return self._hot_table  # type: ignore[return-value]
        table = self._tables.get(s)
        if table is None:
            table = QuorumTable(self.n, self._make_compute(s))
            self._tables.put(s, table)
        self._hot_string = s
        self._hot_table = table
        return table

    def _make_compute(self, s: str):
        """Build the per-string quorum computation with a shared hash prefix.

        ``(seed, name, s)`` is constant for every draw of this string's
        table, so it is absorbed once; per draw only ``x`` and the counter
        are hashed on a copy.  Digests are bit-identical to
        ``stable_hash(seed, name, s, x, counter)``.
        """
        prefix = hash_prefix(self.spec.seed, self.name, s)
        quorum_size = self.quorum_size
        n = self.n

        def compute(x: int) -> Tuple[int, ...]:
            x_prefix = prefix.copy()
            absorb(x_prefix, x)
            members = []
            seen = set()
            counter = 0
            while len(members) < quorum_size:
                hasher = x_prefix.copy()
                absorb(hasher, counter)
                candidate = int.from_bytes(hasher.digest(), "big") % n
                counter += 1
                if candidate not in seen:
                    seen.add(candidate)
                    members.append(candidate)
            return tuple(sorted(members))

        return compute

    # ------------------------------------------------------------------
    # forward direction
    # ------------------------------------------------------------------
    def quorum(self, s: str, x: int) -> Tuple[int, ...]:
        """Return the quorum assigned to string ``s`` and node ``x``.

        The result is a sorted tuple of ``d`` distinct node identities and is
        identical on every node evaluating it (shared sampler assumption).
        """
        return self.table(s).quorum(x)

    def contains(self, s: str, x: int, member: int) -> bool:
        """Whether ``member`` belongs to the quorum of ``(s, x)`` — O(1)."""
        return self.table(s).contains(x, member)

    def majority_threshold(self, s: str, x: int) -> int:
        """Smallest count that constitutes "more than half" of quorum ``(s, x)``."""
        return self.table(s).threshold(x)

    #: alias used by the protocol layer; same O(1) precomputed lookup
    threshold = majority_threshold

    # ------------------------------------------------------------------
    # inverse direction
    # ------------------------------------------------------------------
    def inverse(self, s: str, y: int) -> Tuple[int, ...]:
        """Return every node ``x`` such that ``y ∈ quorum(s, x)``.

        The push phase needs this: a node ``y`` holding candidate ``s_y``
        pushes it to exactly the nodes whose push quorum for ``s_y`` contains
        ``y``.  The first call for a string triggers the table's one-pass
        full build (all ``n`` quorums plus the inverse mapping); subsequent
        calls are O(1).
        """
        return self.table(s).inverse_of(y)

    def load_of(self, s: str, y: int) -> int:
        """Number of quorums (over all ``x``) for string ``s`` that contain ``y``.

        A node is *overloaded* (Definition in Section 2.2) for constant ``a``
        when this exceeds ``a · d``; Lemma 1 requires that no node is.
        """
        return len(self.inverse(s, y))

    # ------------------------------------------------------------------
    # cache introspection (diagnostics and eviction tests)
    # ------------------------------------------------------------------
    @property
    def cache_info(self) -> LRUCache:
        """The underlying per-string table cache (hits/misses/evictions)."""
        return self._tables
