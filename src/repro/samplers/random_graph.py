"""The random digraph model of Section 4.1.

To prove Lemma 2 the paper studies random digraphs on the vertex set
``[n] ∪ ([n] × R)``: each *labelled* vertex ``(x, r)`` has exactly ``d``
out-neighbours among the *unlabelled* vertices ``[n]``, chosen uniformly and
independently (Figure 3).  For a family ``L`` of labelled vertices with at
most one label per node, the border ``∂L`` is the set of edges leaving ``L``
towards ``[n] \\ L*``, and the paper shows

    ``P(u, s) = o(2^{-n})``  for ``0 < u ≤ n / log n`` and ``s < (2/3)·d·u``,

i.e. w.h.p. every such family expands.  This module provides the digraph
model itself (independently of the keyed-hash construction used at runtime)
and a Monte-Carlo estimator of the border-failure probability, which is what
``bench_property2_sampler_border`` reports next to the analytic bound.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple


@dataclass
class LabelledDigraph:
    """A concrete sample of the Section 4.1 random digraph.

    Only the labelled vertices that have actually been queried are stored;
    the out-neighbourhoods are drawn lazily, which keeps Monte-Carlo trials
    over large ``n`` cheap.
    """

    n: int
    d: int
    label_space: int
    rng: random.Random

    def __post_init__(self) -> None:
        self._edges: Dict[Tuple[int, int], Tuple[int, ...]] = {}

    def out_neighbours(self, x: int, r: int) -> Tuple[int, ...]:
        """Out-neighbourhood of the labelled vertex ``(x, r)`` (``d`` iid uniform picks).

        Note the model counts neighbours *with multiplicity* (Section 4.1,
        condition 1), so repetitions are kept.
        """
        key = (x, r)
        cached = self._edges.get(key)
        if cached is None:
            cached = tuple(self.rng.randrange(self.n) for _ in range(self.d))
            self._edges[key] = cached
        return cached

    def border(self, family: Sequence[Tuple[int, int]]) -> int:
        """Size of ``∂L``: edges from the family to unlabelled vertices outside ``L*``."""
        l_star: Set[int] = {x for x, _ in family}
        total = 0
        for x, r in family:
            total += sum(1 for y in self.out_neighbours(x, r) if y not in l_star)
        return total

    def expansion_ratio(self, family: Sequence[Tuple[int, int]]) -> float:
        """``|∂L| / (d · |L|)`` — Property 2 asserts this exceeds 2/3."""
        if not family:
            return 1.0
        return self.border(family) / (self.d * len(family))


def random_family(
    n: int, label_space: int, size: int, rng: random.Random
) -> List[Tuple[int, int]]:
    """Draw a family ``L`` with ``size`` distinct nodes and one label each."""
    nodes = rng.sample(range(n), min(size, n))
    return [(x, rng.randrange(label_space)) for x in nodes]


def estimate_border_probability(
    n: int,
    d: int | None = None,
    label_space: int | None = None,
    family_sizes: Sequence[int] | None = None,
    trials: int = 200,
    seed: int = 0,
) -> Dict[int, float]:
    """Monte-Carlo estimate of ``P[|∂L| ≤ (2/3)·d·|L|]`` per family size.

    Returns ``{family size u: estimated failure probability}``.  The paper's
    analytic bound is ``o(2^{-n})`` — the estimator is expected to return
    zeros for every size, and the benchmark prints both side by side.
    """
    rng = random.Random(seed)
    if d is None:
        d = max(7, int(math.ceil(math.log2(max(2, n)))))
    if label_space is None:
        label_space = max(16, n * n)
    if family_sizes is None:
        upper = max(1, int(n / max(1.0, math.log2(max(2, n)))))
        family_sizes = sorted({1, max(1, upper // 4), max(1, upper // 2), upper})

    failures: Dict[int, float] = {}
    for size in family_sizes:
        bad = 0
        for trial in range(trials):
            graph = LabelledDigraph(n=n, d=d, label_space=label_space, rng=rng)
            family = random_family(n, label_space, size, rng)
            if graph.border(family) <= (2 * d * len(family)) / 3:
                bad += 1
        failures[size] = bad / max(1, trials)
    return failures
