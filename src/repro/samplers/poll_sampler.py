"""The poll-list sampler ``J`` (paper Lemma 2).

``J : [n] × R → [n]^d`` maps a node ``x`` and a random label ``r`` to the
*poll list* that is authoritative for ``x``'s pull request labelled ``r``.
Lemma 2 requires two properties:

* **Property 1** — at most ``δ·n`` pairs ``(x, r)`` are mapped to a set with
  a minority of good nodes, for any fixed good set of size ``(1/2 + ε)n``;
* **Property 2** (novel) — no small family ``L`` of pairs (one label per
  node, ``|L| = O(n / log n)``) can keep more than a third of its outgoing
  poll-list edges inside its own node set ``L*``; formally
  ``Σ_{(x,r)∈L} |J(x, r) \\ L*| > (2/3)·d·|L|``.

Property 2 is what prevents the adversary from "cornering" a set of nodes and
starving their polls (it powers the ``O(log n / log log n)`` asynchronous
bound of Lemma 6).  Section 4.1 of the paper proves that a uniformly random
digraph satisfies it with probability ``1 - o(n² 2^{-n})``; our keyed-hash
construction is such a random digraph, and
:func:`repro.samplers.properties.property2_holds` checks concrete instances.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.net.rng import stable_hash
from repro.samplers.base import SamplerSpec


class PollSampler:
    """Deterministic map from ``(node, label)`` pairs to poll lists of size ``d``."""

    def __init__(self, spec: SamplerSpec, name: str = "J") -> None:
        self.spec = spec
        self.name = name
        self.n = spec.n
        self.list_size = min(spec.quorum_size, spec.n)
        self.label_space = spec.label_space
        self._cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}

    def random_label(self, rng: random.Random) -> int:
        """Draw a fresh uniformly random label ``r ∈ R`` from a private RNG."""
        return rng.randrange(self.label_space)

    def poll_list(self, x: int, r: int) -> Tuple[int, ...]:
        """Return the poll list ``J(x, r)`` — a sorted tuple of ``d`` distinct nodes."""
        if not 0 <= r < self.label_space:
            raise ValueError(f"label {r} outside the label space [0, {self.label_space})")
        key = (x, r)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        members: List[int] = []
        seen = set()
        counter = 0
        while len(members) < self.list_size:
            candidate = stable_hash(self.spec.seed, self.name, x, r, counter) % self.n
            counter += 1
            if candidate not in seen:
                seen.add(candidate)
                members.append(candidate)
        result = tuple(sorted(members))

        if len(self._cache) > 200_000:
            self._cache.clear()
        self._cache[key] = result
        return result

    def contains(self, x: int, r: int, member: int) -> bool:
        """Whether ``member`` belongs to ``J(x, r)``."""
        return member in self.poll_list(x, r)

    def majority_threshold(self, x: int, r: int) -> int:
        """Smallest count that constitutes "more than half" of ``J(x, r)``."""
        return len(self.poll_list(x, r)) // 2 + 1
