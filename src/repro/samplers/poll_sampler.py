"""The poll-list sampler ``J`` (paper Lemma 2).

``J : [n] × R → [n]^d`` maps a node ``x`` and a random label ``r`` to the
*poll list* that is authoritative for ``x``'s pull request labelled ``r``.
Lemma 2 requires two properties:

* **Property 1** — at most ``δ·n`` pairs ``(x, r)`` are mapped to a set with
  a minority of good nodes, for any fixed good set of size ``(1/2 + ε)n``;
* **Property 2** (novel) — no small family ``L`` of pairs (one label per
  node, ``|L| = O(n / log n)``) can keep more than a third of its outgoing
  poll-list edges inside its own node set ``L*``; formally
  ``Σ_{(x,r)∈L} |J(x, r) \\ L*| > (2/3)·d·|L|``.

Property 2 is what prevents the adversary from "cornering" a set of nodes and
starving their polls (it powers the ``O(log n / log log n)`` asynchronous
bound of Lemma 6).  Section 4.1 of the paper proves that a uniformly random
digraph satisfies it with probability ``1 - o(n² 2^{-n})``; our keyed-hash
construction is such a random digraph, and
:func:`repro.samplers.properties.property2_holds` checks concrete instances.

Hot-path note: each ``(x, r)`` pair resolves to a cached
:class:`~repro.samplers.tables.PollEntry` holding the sorted tuple, a
``frozenset`` membership view and the majority threshold, so the protocol
layer's ``contains``/``threshold`` checks are O(1).  The cache is a bounded
LRU (incremental eviction, never a full clear).
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.net.rng import absorb, hash_prefix
from repro.samplers.base import SamplerSpec
from repro.samplers.tables import LRUCache, PollEntry

#: default number of (node, label) poll entries retained (LRU)
DEFAULT_MAX_CACHED_ENTRIES = 200_000


class PollSampler:
    """Deterministic map from ``(node, label)`` pairs to poll lists of size ``d``."""

    def __init__(
        self,
        spec: SamplerSpec,
        name: str = "J",
        max_cached_entries: int = DEFAULT_MAX_CACHED_ENTRIES,
    ) -> None:
        self.spec = spec
        self.name = name
        self.n = spec.n
        self.list_size = min(spec.quorum_size, spec.n)
        self.label_space = spec.label_space
        self._entries: LRUCache[Tuple[int, int], PollEntry] = LRUCache(max_cached_entries)
        # One-slot memo for the most recently requested (x, r) pair; delivery
        # batches are grouped by poll, so consecutive lookups usually repeat.
        self._hot_x = -1
        self._hot_r = -1
        self._hot_entry: PollEntry = None  # type: ignore[assignment]
        # (seed, name) is constant across draws; absorbing it once and copying
        # yields digests bit-identical to stable_hash(seed, name, x, r, counter).
        self._prefix = hash_prefix(spec.seed, name)

    def random_label(self, rng: random.Random) -> int:
        """Draw a fresh uniformly random label ``r ∈ R`` from a private RNG."""
        return rng.randrange(self.label_space)

    # ------------------------------------------------------------------
    # entry access (the hot-path API)
    # ------------------------------------------------------------------
    def entry(self, x: int, r: int) -> PollEntry:
        """Return the (cached) precomputed entry for ``J(x, r)``.

        Protocol code performing several lookups for the same pair should
        fetch the entry once and query ``member_set``/``threshold`` directly.
        """
        if x == self._hot_x and r == self._hot_r:
            return self._hot_entry
        key = (x, r)
        entry = self._entries.get(key)
        if entry is not None:
            self._hot_x, self._hot_r, self._hot_entry = x, r, entry
            return entry
        if not 0 <= r < self.label_space:
            raise ValueError(f"label {r} outside the label space [0, {self.label_space})")
        pair_prefix = self._prefix.copy()
        absorb(pair_prefix, x)
        absorb(pair_prefix, r)
        members = []
        seen = set()
        counter = 0
        n = self.n
        while len(members) < self.list_size:
            hasher = pair_prefix.copy()
            absorb(hasher, counter)
            candidate = int.from_bytes(hasher.digest(), "big") % n
            counter += 1
            if candidate not in seen:
                seen.add(candidate)
                members.append(candidate)
        entry = PollEntry(tuple(sorted(members)))
        self._entries.put(key, entry)
        self._hot_x, self._hot_r, self._hot_entry = x, r, entry
        return entry

    def poll_list(self, x: int, r: int) -> Tuple[int, ...]:
        """Return the poll list ``J(x, r)`` — a sorted tuple of ``d`` distinct nodes."""
        return self.entry(x, r).members

    def contains(self, x: int, r: int, member: int) -> bool:
        """Whether ``member`` belongs to ``J(x, r)`` — O(1)."""
        if x == self._hot_x and r == self._hot_r:  # inline the hot-memo hit
            return member in self._hot_entry.member_set
        return member in self.entry(x, r).member_set

    def majority_threshold(self, x: int, r: int) -> int:
        """Smallest count that constitutes "more than half" of ``J(x, r)``."""
        if x == self._hot_x and r == self._hot_r:
            return self._hot_entry.threshold
        return self.entry(x, r).threshold

    #: alias used by the protocol layer; same O(1) precomputed lookup
    threshold = majority_threshold

    # ------------------------------------------------------------------
    # cache introspection (diagnostics and eviction tests)
    # ------------------------------------------------------------------
    @property
    def cache_info(self) -> LRUCache:
        """The underlying entry cache (hits/misses/evictions)."""
        return self._entries
