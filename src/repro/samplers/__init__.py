"""Sampler constructions (paper Section 2.2).

The protocol relies on three shared sampling functions:

``I`` — *push quorums*: ``I(s, x)`` is the set of ``O(log n)`` nodes from
which node ``x`` may accept pushes of candidate string ``s`` (Section 3.1.1).

``H`` — *pull quorums*: ``H(s, x)`` is the set of nodes that act as proxies
for ``x``'s pull requests about ``s`` (Section 3.1.2).

``J`` — *poll lists*: ``J(x, r)`` is the set of nodes that are authoritative
for ``x``'s poll labelled with the random label ``r`` (Lemma 2).

All three are realised as deterministic keyed-hash functions so that every
node evaluates them locally without communication, exactly as the paper
assumes ("all nodes must share three sampling functions").  The package also
provides empirical checkers for the sampler properties the analysis depends
on (no overloaded node, Property 1 and the novel Property 2 of Lemma 2) and
the random digraph model of Section 4.1 used to validate Property 2.
"""

from repro.samplers.base import SamplerSpec
from repro.samplers.hash_sampler import QuorumSampler
from repro.samplers.poll_sampler import PollSampler
from repro.samplers.properties import (
    border_size,
    check_no_overload,
    estimate_minority_fraction,
    estimate_sampler_deviation,
    overload_counts,
    property2_holds,
)
from repro.samplers.random_graph import LabelledDigraph, estimate_border_probability

__all__ = [
    "SamplerSpec",
    "QuorumSampler",
    "PollSampler",
    "border_size",
    "check_no_overload",
    "estimate_minority_fraction",
    "estimate_sampler_deviation",
    "overload_counts",
    "property2_holds",
    "LabelledDigraph",
    "estimate_border_probability",
]
