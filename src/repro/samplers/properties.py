"""Empirical checkers for the sampler properties the analysis relies on.

The paper's correctness argument (Section 4) rests on a handful of
combinatorial properties of the samplers ``I``, ``H`` and ``J``:

* **no overload** (Definition in Section 2.2, used in Lemma 3): for every
  string ``s``, no node belongs to more than ``a·d`` of the quorums
  ``{I(s, x)}_x``;
* **(θ, δ)-sampler deviation** (Definition 2.2, used in Lemmas 4 and 5): for
  any fixed bad set ``S``, only a ``δ`` fraction of inputs see ``S``
  over-represented by more than ``θ``;
* **Property 1** of Lemma 2 (used in Lemma 7): few poll lists have a minority
  of good nodes;
* **Property 2** of Lemma 2 (used in Lemma 6): small families of poll lists
  expand — they cannot be confined to their own node set.

These functions evaluate the properties on concrete sampler instances.  They
are used both by the test-suite (sanity at small ``n``) and by the
``bench_property2_sampler_border`` benchmark, which reproduces the
Monte-Carlo counterpart of the probability computation in Section 4.1.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.samplers.hash_sampler import QuorumSampler
from repro.samplers.poll_sampler import PollSampler


# ----------------------------------------------------------------------
# overload (Lemma 1 / Lemma 3)
# ----------------------------------------------------------------------
def overload_counts(sampler: QuorumSampler, s: str) -> Dict[int, int]:
    """Return ``{node: number of quorums of string s containing it}``."""
    counts: Dict[int, int] = {}
    for x in range(sampler.n):
        for member in sampler.quorum(s, x):
            counts[member] = counts.get(member, 0) + 1
    return counts


def check_no_overload(sampler: QuorumSampler, s: str, factor: float = 4.0) -> bool:
    """Whether no node is overloaded for string ``s`` (threshold ``factor · d``).

    The expected load of a node is exactly ``d`` (each of the ``n`` quorums
    has ``d`` members among ``n`` nodes), so ``factor`` bounds the allowed
    deviation; Lemma 1 guarantees a constant factor exists.
    """
    threshold = factor * sampler.quorum_size
    return all(count <= threshold for count in overload_counts(sampler, s).values())


def max_overload_ratio(sampler: QuorumSampler, strings: Iterable[str]) -> float:
    """Return ``max load / d`` over all nodes and all the given strings."""
    worst = 0.0
    for s in strings:
        counts = overload_counts(sampler, s)
        if counts:
            worst = max(worst, max(counts.values()) / sampler.quorum_size)
    return worst


# ----------------------------------------------------------------------
# (θ, δ)-sampler deviation (Definition 2.2)
# ----------------------------------------------------------------------
def estimate_sampler_deviation(
    sampler: QuorumSampler,
    bad_set: Set[int],
    strings: Sequence[str],
    theta: float,
) -> float:
    """Fraction of inputs whose quorum over-represents ``bad_set`` by more than ``theta``.

    Definition (Section 2.2): ``S`` is a ``(θ, δ)``-sampler if for any set
    ``S ⊆ Y``, at most a ``δ`` fraction of inputs ``x`` have
    ``|S(x) ∩ S| / |S(x)| > |S|/n + θ``.  This estimates that fraction over
    the supplied input strings (inputs here are pairs ``(s, x)``).
    """
    if not strings:
        return 0.0
    base_fraction = len(bad_set) / sampler.n
    violations = 0
    total = 0
    for s in strings:
        for x in range(sampler.n):
            quorum = sampler.quorum(s, x)
            fraction = sum(1 for member in quorum if member in bad_set) / len(quorum)
            if fraction > base_fraction + theta:
                violations += 1
            total += 1
    return violations / total


# ----------------------------------------------------------------------
# Property 1 of Lemma 2
# ----------------------------------------------------------------------
def estimate_minority_fraction(
    sampler: PollSampler,
    good_nodes: Set[int],
    samples: int,
    rng: random.Random,
) -> float:
    """Estimate the fraction of ``(x, r)`` pairs whose poll list has a good-node minority.

    Property 1 requires this fraction to be at most ``δ = 1/n`` of the domain;
    the estimate is Monte-Carlo over ``samples`` uniformly random pairs.
    """
    if samples <= 0:
        return 0.0
    bad = 0
    for _ in range(samples):
        x = rng.randrange(sampler.n)
        r = rng.randrange(sampler.label_space)
        members = sampler.poll_list(x, r)
        good = sum(1 for member in members if member in good_nodes)
        if good * 2 <= len(members):
            bad += 1
    return bad / samples


# ----------------------------------------------------------------------
# Property 2 of Lemma 2 (the border / expansion property)
# ----------------------------------------------------------------------
def border_size(sampler: PollSampler, family: Sequence[Tuple[int, int]]) -> int:
    """Compute ``Σ_{(x,r)∈L} |J(x, r) \\ L*|`` for a family ``L`` of labelled pairs.

    ``L*`` is the set of nodes appearing as the first component of some pair
    in ``L`` (the notation of Lemma 2).  The returned quantity is the size of
    the "border" ``∂L`` of Section 4.1: the number of poll-list edges leaving
    the family's own node set.
    """
    l_star = {x for x, _ in family}
    total = 0
    for x, r in family:
        members = sampler.poll_list(x, r)
        total += sum(1 for member in members if member not in l_star)
    return total


def property2_holds(sampler: PollSampler, family: Sequence[Tuple[int, int]]) -> bool:
    """Whether the expansion bound ``|∂L| > (2/3)·d·|L|`` holds for this family.

    Families must respect the Lemma 2 side conditions: at most one label per
    node and ``|L| = O(n / log n)``; the caller is responsible for that (the
    adversarial strategies in :mod:`repro.adversary.cornering` and the
    benchmarks construct admissible families).
    """
    if not family:
        return True
    nodes = [x for x, _ in family]
    if len(set(nodes)) != len(nodes):
        raise ValueError("family must contain at most one label per node")
    return border_size(sampler, family) > (2 * sampler.list_size * len(family)) / 3


def worst_family_border_ratio(
    sampler: PollSampler,
    family_size: int,
    trials: int,
    rng: random.Random,
    greedy: bool = True,
) -> float:
    """Search for a low-expansion family and return the worst ratio ``|∂L| / (d·|L|)`` found.

    This is the adversary's side of Property 2: it would like to find a
    family whose poll lists stay inside the family's own node set.  Two
    heuristics are provided — uniformly random families, and a greedy
    procedure that grows the family by repeatedly adding the pair whose poll
    list overlaps the current node set the most (a much stronger attack).
    The benchmark reports the worst ratio found; Property 2 predicts it stays
    above ``2/3``.
    """
    if family_size <= 0:
        return 1.0
    family_size = min(family_size, sampler.n)
    worst = float("inf")
    for _ in range(trials):
        if greedy:
            family = _greedy_family(sampler, family_size, rng)
        else:
            family = _random_family(sampler, family_size, rng)
        ratio = border_size(sampler, family) / (sampler.list_size * len(family))
        worst = min(worst, ratio)
    return worst


def _random_family(
    sampler: PollSampler, family_size: int, rng: random.Random
) -> List[Tuple[int, int]]:
    nodes = rng.sample(range(sampler.n), family_size)
    return [(x, rng.randrange(sampler.label_space)) for x in nodes]


def _greedy_family(
    sampler: PollSampler, family_size: int, rng: random.Random, label_tries: int = 8
) -> List[Tuple[int, int]]:
    """Grow a family greedily, preferring pairs whose poll lists point inward."""
    family: List[Tuple[int, int]] = []
    node_set: Set[int] = set()
    start = rng.randrange(sampler.n)
    family.append((start, rng.randrange(sampler.label_space)))
    node_set.add(start)

    available = [x for x in range(sampler.n) if x != start]
    rng.shuffle(available)
    candidate_pool = available[: max(4 * family_size, 32)]

    while len(family) < family_size and candidate_pool:
        best_pair = None
        best_outside = None
        for x in candidate_pool[: 4 * family_size]:
            for _ in range(label_tries):
                r = rng.randrange(sampler.label_space)
                members = sampler.poll_list(x, r)
                outside = sum(1 for member in members if member not in node_set)
                if best_outside is None or outside < best_outside:
                    best_outside = outside
                    best_pair = (x, r)
        assert best_pair is not None
        family.append(best_pair)
        node_set.add(best_pair[0])
        candidate_pool.remove(best_pair[0])
    return family
