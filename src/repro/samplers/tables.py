"""Precomputed sampler tables and the bounded LRU cache that holds them.

The protocol layer performs millions of membership and threshold checks per
run (``is y in I(s, x)?``, ``how many votes make a majority of H(s, w)?``).
Recomputing — or even re-hashing — quorum tuples per message dominates the
simulator's wall-clock cost at interesting ``n``.  This module provides the
shared answer:

* :class:`QuorumTable` — the per-*string* view of a quorum sampler.  For a
  fixed string ``s`` it materialises, per node ``x``, the quorum as both a
  sorted tuple (the canonical public representation) and a ``frozenset`` (for
  O(1) membership), together with the majority threshold; the inverse table
  ``y → {x : y ∈ quorum(s, x)}`` is built in the same single pass over all
  nodes the first time any inverse lookup is made.
* :class:`LRUCache` — a small bounded least-recently-used mapping used to
  retain tables for the strings currently in flight.  It replaces the old
  "clear everything on overflow" eviction, which caused cache thrash in the
  middle of a run whenever the candidate population crossed the limit.

Tables are *views*: they never change what a sampler returns, only how often
the underlying keyed hash has to be evaluated.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Generic, Optional, Tuple, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """A bounded mapping evicting the least-recently-used entry on overflow.

    Unlike the clear-all strategy it replaces, eviction is incremental: only
    the single coldest entry is dropped when capacity is exceeded, so entries
    in active use are never lost mid-run.  Hit/miss/eviction counters are kept
    for diagnostics and for the eviction regression tests.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("LRU capacity must be at least 1")
        self.capacity = capacity
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def get(self, key: K) -> Optional[V]:
        """Return the cached value (marking it most-recently-used) or ``None``."""
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key: K, value: V) -> None:
        """Insert ``key`` as the most-recently-used entry, evicting if needed."""
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        while len(data) > self.capacity:
            data.popitem(last=False)
            self.evictions += 1

    def get_or_create(self, key: K, factory: Callable[[K], V]) -> V:
        """Return the cached value for ``key``, creating it via ``factory`` on a miss."""
        value = self._data.get(key)
        if value is not None:
            self.hits += 1
            self._data.move_to_end(key)
            return value
        self.misses += 1
        value = factory(key)
        self.put(key, value)
        return value

    def keys(self):
        """Current keys, coldest first (for tests and diagnostics)."""
        return list(self._data.keys())


class QuorumTable:
    """All quorum facts about one string ``s``, filled lazily per node.

    The table answers the three questions the protocol hot paths ask —
    ``quorum(x)``, ``contains(x, member)`` and ``threshold(x)`` — in O(1)
    after the first touch of ``x``, and materialises the inverse mapping
    ``y → (x₁, x₂, …)`` in one pass over all nodes on first use.

    Per-node entries are filled on demand rather than eagerly because the
    pull phase touches only a handful of nodes for most wrong candidate
    strings; the push phase, which needs the inverse, triggers the full
    one-pass build anyway.
    """

    __slots__ = ("n", "_compute", "_tuples", "_sets", "_thresholds", "_inverse")

    def __init__(self, n: int, compute: Callable[[int], Tuple[int, ...]]) -> None:
        self.n = n
        self._compute = compute
        self._tuples: Dict[int, Tuple[int, ...]] = {}
        self._sets: Dict[int, frozenset] = {}
        self._thresholds: Dict[int, int] = {}
        self._inverse: Optional[Dict[int, Tuple[int, ...]]] = None

    # ------------------------------------------------------------------
    # forward direction
    # ------------------------------------------------------------------
    def quorum(self, x: int) -> Tuple[int, ...]:
        """The quorum of node ``x`` as a sorted tuple (canonical representation)."""
        members = self._tuples.get(x)
        if members is None:
            members = self._fill(x)
        return members

    def members(self, x: int) -> frozenset:
        """The quorum of node ``x`` as a frozenset (O(1) membership)."""
        member_set = self._sets.get(x)
        if member_set is None:
            self._fill(x)
            member_set = self._sets[x]
        return member_set

    def contains(self, x: int, member: int) -> bool:
        """Whether ``member`` belongs to the quorum of node ``x``."""
        member_set = self._sets.get(x)
        if member_set is None:
            self._fill(x)
            member_set = self._sets[x]
        return member in member_set

    def threshold(self, x: int) -> int:
        """Smallest count constituting "more than half" of the quorum of ``x``."""
        threshold = self._thresholds.get(x)
        if threshold is None:
            self._fill(x)
            threshold = self._thresholds[x]
        return threshold

    def _fill(self, x: int) -> Tuple[int, ...]:
        members = self._compute(x)
        self._tuples[x] = members
        self._sets[x] = frozenset(members)
        self._thresholds[x] = len(members) // 2 + 1
        return members

    # ------------------------------------------------------------------
    # inverse direction
    # ------------------------------------------------------------------
    def inverse_of(self, y: int) -> Tuple[int, ...]:
        """Every node ``x`` whose quorum contains ``y`` (one full pass, then O(1))."""
        if self._inverse is None:
            self.build_full()
        return self._inverse.get(y, ())  # type: ignore[union-attr]

    def build_full(self) -> None:
        """Materialise every quorum and the inverse table in a single pass."""
        if self._inverse is not None:
            return
        builder: Dict[int, list] = {}
        for x in range(self.n):
            members = self._tuples.get(x)
            if members is None:
                members = self._fill(x)
            for member in members:
                bucket = builder.get(member)
                if bucket is None:
                    builder[member] = [x]
                else:
                    bucket.append(x)
        self._inverse = {member: tuple(xs) for member, xs in builder.items()}

    @property
    def fully_built(self) -> bool:
        """Whether the one-pass full build (and inverse) has been performed."""
        return self._inverse is not None


class PollEntry:
    """Precomputed facts about one poll list ``J(x, r)``."""

    __slots__ = ("members", "member_set", "threshold")

    def __init__(self, members: Tuple[int, ...]) -> None:
        self.members = members
        self.member_set = frozenset(members)
        self.threshold = len(members) // 2 + 1
