"""repro.api — the one import that exposes the whole registry surface.

Everything a user needs to run, sweep and compare protocols, and to extend
the system with their own protocols, adversaries, delay policies and
scenario generators, re-exported from one place::

    from repro import api

    # one run of any registered protocol
    result = api.run_experiment("composed_ba", n=64, seed=3, strategy="naive")
    print(result.amortized_bits, result.agreement)

    # a cross-protocol Figure-1-style comparison
    sweep, rows = api.compare(
        protocols=("aer", "composed_ba", "naive_broadcast"),
        ns=(32, 64), seeds=(0, 1),
    )
    print(api.format_table(rows, title="Figure 1"))

Extension points (all decorator-based; see ARCHITECTURE.md layer 4):

* :func:`register_protocol` — a new :class:`ProtocolAdapter`;
* :func:`register_adversary` — a new Byzantine strategy;
* :func:`register_delay_policy` — a new asynchronous delay policy;
* :func:`register_scenario` — a new scenario generator;
* :func:`register_report_section` — a new EXPERIMENTS.md section
  (:class:`ReportSection`; rendered by ``python -m repro report``);
* :func:`register_probe` — a new trace probe point
  (:class:`ProbePoint`; emitted through :class:`TraceCollector`).
"""

from __future__ import annotations

from dataclasses import fields as _dataclass_fields
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.adversary.base import Adversary, AdversaryKnowledge
from repro.adversary.registry import ADVERSARIES, register_adversary, resolve_adversary
from repro.analysis.experiments import compare_rows, format_table, run_result_row
from repro.core.scenario import AERScenario, make_scenario
from repro.experiments.plan import ExperimentPlan, ExperimentSpec
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    PartitionWindow,
    injector_for_spec,
)
from repro.dist import (
    DistCoordinator,
    DistributedSweepError,
    active_coordinators,
    run_distributed_sweep,
    run_worker,
)
from repro.experiments.sweep import (
    ExperimentRecord,
    SweepResult,
    SweepRunner,
    WorkerCrashedError,
    WorkerPool,
    execute_spec,
    run_sweep,
)
from repro.net.asynchronous import (
    DELAY_POLICIES,
    DelayPolicy,
    make_delay_policy,
    register_delay_policy,
)
from repro.protocols import (
    PROTOCOLS,
    SCENARIOS,
    ProtocolAdapter,
    RunResult,
    get_protocol,
    list_protocols,
    make_scenario_by_name,
    register_protocol,
    register_scenario,
)
from repro.report import (
    REPORT_SECTIONS,
    ReportBuilder,
    ReportSection,
    build_report,
    get_report_section,
    list_report_sections,
    markdown_table,
    register_report_section,
    render_registries,
)
from repro.service import Job, JobManager, create_app, fastapi_available
from repro.store import (
    ResultStore,
    StoreError,
    code_fingerprint,
    default_store_path,
    plan_key,
    spec_key,
)
from repro.trace import (
    PROBE_POINTS,
    ProbePoint,
    TraceCollector,
    TraceSummary,
    collector_for_spec,
    get_probe,
    register_probe,
)

__all__ = [
    # registries and their decorators
    "PROTOCOLS", "register_protocol", "get_protocol", "list_protocols",
    "ADVERSARIES", "register_adversary", "resolve_adversary", "list_adversaries",
    "DELAY_POLICIES", "register_delay_policy", "make_delay_policy", "list_delay_policies",
    "SCENARIOS", "register_scenario", "make_scenario_by_name", "list_scenarios",
    "REPORT_SECTIONS", "register_report_section", "get_report_section", "list_report_sections",
    "PROBE_POINTS", "register_probe", "get_probe",
    # contracts and records
    "ProtocolAdapter", "RunResult", "Adversary", "AdversaryKnowledge",
    "DelayPolicy", "AERScenario", "make_scenario", "ReportSection",
    "ProbePoint", "TraceCollector", "TraceSummary", "collector_for_spec",
    # fault injection
    "FaultSchedule", "FaultInjector", "PartitionWindow", "injector_for_spec",
    # orchestration
    "ExperimentSpec", "ExperimentPlan", "ExperimentRecord",
    "SweepRunner", "SweepResult", "WorkerPool", "run_sweep", "execute_spec",
    "WorkerCrashedError",
    # distributed execution
    "DistCoordinator", "DistributedSweepError", "run_distributed_sweep",
    "run_worker", "active_coordinators",
    # result store and experiment service
    "ResultStore", "StoreError", "spec_key", "plan_key", "code_fingerprint",
    "default_store_path", "Job", "JobManager", "create_app", "fastapi_available",
    # conveniences
    "spec_for", "run_experiment", "compare",
    "format_table", "compare_rows", "run_result_row",
    "ReportBuilder", "build_report", "render_registries", "markdown_table",
]

#: spec fields settable directly through ``spec_for`` keyword arguments
_SPEC_FIELDS = {f.name for f in _dataclass_fields(ExperimentSpec)} - {"n", "protocol", "params"}


def list_adversaries() -> List[str]:
    """Sorted names of all registered adversary strategies."""
    return ADVERSARIES.names()


def list_delay_policies() -> List[str]:
    """Sorted names of all registered delay policies."""
    return DELAY_POLICIES.names()


def list_scenarios() -> List[str]:
    """Sorted names of all registered scenario generators."""
    return SCENARIOS.names()


def spec_for(protocol: str, n: int, **params) -> ExperimentSpec:
    """Build a validated spec, routing kwargs to spec fields or protocol params.

    Keyword arguments matching a spec field (``adversary``, ``mode``,
    ``seed``, ``t``, ...) set that field; everything else lands in the
    spec's protocol-specific ``params`` dict — so
    ``spec_for("composed_ba", 64, strategy="naive")`` just works.
    """
    spec_kwargs = {k: params.pop(k) for k in list(params) if k in _SPEC_FIELDS}
    spec = ExperimentSpec(n=n, protocol=protocol, params=params, **spec_kwargs)
    spec.validate()
    return spec


def run_experiment(protocol: str = "aer", *, n: int, **params) -> RunResult:
    """One-call experiment: build a spec for ``protocol`` and run it.

    >>> from repro import api
    >>> api.run_experiment("aer", n=64, seed=1, adversary="wrong_answer").agreement
    True
    """
    return spec_for(protocol, n, **params).run()


def compare(
    protocols: Sequence[str],
    ns: Iterable[int],
    seeds: Iterable[int] = (0,),
    jobs: Optional[int] = None,
    out: Optional[str] = None,
    **shared,
) -> Tuple[SweepResult, List[Dict[str, object]]]:
    """Run every protocol on the same sizes/seeds; return (sweep, table rows).

    ``shared`` accepts the plan's knob fields (``adversary`` →
    ``adversaries=(...,)``, ``t``, ``knowledge_fraction``, ...) plus a
    ``params`` dict applied to every spec.  Shared knobs/params apply to the
    protocols that accept them and relax to defaults for the rest, so one
    call compares a heterogeneous mix.  The returned rows aggregate across
    seeds per ``(n, protocol)`` — the Figure-1-style comparison.
    """
    adversary = shared.pop("adversary", "none")
    plan = ExperimentPlan(
        ns=tuple(ns),
        protocols=tuple(protocols),
        adversaries=(adversary,),
        seeds=tuple(seeds),
        **shared,
    )
    relaxed = ExperimentPlan(
        ns=(),
        extra_specs=tuple(
            get_protocol(spec.protocol).relax_spec(spec) for spec in plan.specs()
        ),
    )
    sweep = run_sweep(relaxed, jobs=jobs, out=out)
    return sweep, compare_rows(sweep.records)
