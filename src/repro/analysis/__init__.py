"""Analysis utilities used by the benchmark harness and EXPERIMENTS.md.

Three groups of helpers:

* :mod:`repro.analysis.complexity` — fit measured cost curves against the
  growth laws the paper states (``polylog n``, ``√n·polylog``, ``n``) and
  report which one explains the data best; this is how the benchmarks turn
  raw sweeps into the "who wins, by what shape" statements of Figure 1.
* :mod:`repro.analysis.statistics` — success-rate estimation with Wilson
  confidence intervals for the w.h.p. claims (Lemmas 5 and 7).
* :mod:`repro.analysis.experiments` — sweep runners and plain-text table
  formatting shared by all benchmarks and examples.
"""

from repro.analysis.complexity import (
    GrowthFit,
    fit_growth,
    growth_exponent,
    polylog_ratio,
)
from repro.analysis.statistics import (
    SuccessEstimate,
    estimate_success,
    wilson_interval,
)
from repro.analysis.experiments import (
    format_table,
    sweep_aer,
    sweep_rows,
)

__all__ = [
    "GrowthFit",
    "fit_growth",
    "growth_exponent",
    "polylog_ratio",
    "SuccessEstimate",
    "estimate_success",
    "wilson_interval",
    "format_table",
    "sweep_aer",
    "sweep_rows",
]
