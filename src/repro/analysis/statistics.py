"""Success-rate and cross-seed statistics for the paper's claims.

Lemmas 5 and 7 assert events that hold *with high probability* (probability
``1 − O(n^{-3})``).  A finite number of simulated trials can only bound the
failure rate statistically, so the benchmarks report the observed success
fraction together with a Wilson score confidence interval, which behaves well
even when zero failures are observed.

The report subsystem (:mod:`repro.report`) additionally aggregates metric
columns (rounds, bits, spans) across seeds; :func:`mean_ci` provides the
normal-approximation mean ± confidence interval those tables print.
"""

from __future__ import annotations

import math
import statistics as _statistics
from dataclasses import dataclass
from typing import Callable, Iterable, Tuple


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Returns ``(low, high)``; with zero trials the interval is ``(0, 1)``.
    """
    if trials <= 0:
        return 0.0, 1.0
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    phat = successes / trials
    denom = 1 + z * z / trials
    centre = phat + z * z / (2 * trials)
    margin = z * math.sqrt((phat * (1 - phat) + z * z / (4 * trials)) / trials)
    return max(0.0, (centre - margin) / denom), min(1.0, (centre + margin) / denom)


@dataclass(frozen=True)
class SuccessEstimate:
    """Observed success rate of a repeated randomized experiment."""

    successes: int
    trials: int
    low: float
    high: float

    @property
    def rate(self) -> float:
        """Observed success fraction (0 for zero trials)."""
        return self.successes / self.trials if self.trials else 0.0

    def row(self) -> dict:
        """Flat dict for table printing."""
        return {
            "successes": self.successes,
            "trials": self.trials,
            "rate": round(self.rate, 4),
            "ci_low": round(self.low, 4),
            "ci_high": round(self.high, 4),
        }


def estimate_success(trial: Callable[[int], bool], trials: int, z: float = 1.96) -> SuccessEstimate:
    """Run ``trial(seed)`` for seeds ``0..trials-1`` and summarise the success rate."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    successes = sum(1 for seed in range(trials) if trial(seed))
    low, high = wilson_interval(successes, trials, z=z)
    return SuccessEstimate(successes=successes, trials=trials, low=low, high=high)


def success_estimate_from_outcomes(outcomes: Iterable[bool], z: float = 1.96) -> SuccessEstimate:
    """Summarise already-collected boolean outcomes (e.g. one sweep record per seed)."""
    values = [bool(v) for v in outcomes]
    if not values:
        raise ValueError("need at least one outcome")
    successes = sum(values)
    low, high = wilson_interval(successes, len(values), z=z)
    return SuccessEstimate(successes=successes, trials=len(values), low=low, high=high)


@dataclass(frozen=True)
class MeanEstimate:
    """Cross-seed mean of a metric with a normal-approximation confidence interval.

    With a single sample the interval collapses to the point (there is no
    spread information); ``half_width`` is then 0.
    """

    mean: float
    half_width: float
    count: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def format(self, digits: int = 2) -> str:
        """Deterministic ``mean ±hw`` rendering for table cells."""
        if self.count <= 1 or self.half_width == 0:
            return f"{self.mean:.{digits}f}"
        return f"{self.mean:.{digits}f} ±{self.half_width:.{digits}f}"

    def overlaps(self, other: "MeanEstimate") -> bool:
        """Whether the two confidence intervals share at least one point.

        Interval overlap is the (conservative) equivalence criterion the
        backend-equivalence harness uses: two estimators of the same quantity
        whose CIs are disjoint differ at roughly the ``2σ`` level.  Point
        estimates (``half_width == 0``) degenerate to containment checks.
        """
        return self.low <= other.high and other.low <= self.high


def distributions_equivalent(
    a: Iterable[float], b: Iterable[float], z: float = 1.96
) -> bool:
    """CI-overlap check between two samples of the same metric.

    Computes :func:`mean_ci` for both samples and reports whether the
    intervals overlap.  This is what "statistically equivalent" means for
    the vectorized backend at sizes where draw orders diverge (see
    ARCHITECTURE.md "engine backends"): across seeds, the two backends'
    rounds/bits/decision distributions must be indistinguishable at the
    ``z`` level, even where per-seed results are not bit-identical.
    """
    return mean_ci(a, z=z).overlaps(mean_ci(b, z=z))


def mean_ci(values: Iterable[float], z: float = 1.96) -> MeanEstimate:
    """Mean ± z·stderr of the sample (the report tables' cross-seed columns)."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("need at least one value")
    mean = sum(data) / len(data)
    if len(data) == 1:
        return MeanEstimate(mean=mean, half_width=0.0, count=1)
    stderr = _statistics.stdev(data) / math.sqrt(len(data))
    return MeanEstimate(mean=mean, half_width=z * stderr, count=len(data))
