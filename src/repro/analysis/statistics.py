"""Success-rate statistics for the paper's w.h.p. claims.

Lemmas 5 and 7 assert events that hold *with high probability* (probability
``1 − O(n^{-3})``).  A finite number of simulated trials can only bound the
failure rate statistically, so the benchmarks report the observed success
fraction together with a Wilson score confidence interval, which behaves well
even when zero failures are observed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Tuple


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Returns ``(low, high)``; with zero trials the interval is ``(0, 1)``.
    """
    if trials <= 0:
        return 0.0, 1.0
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    phat = successes / trials
    denom = 1 + z * z / trials
    centre = phat + z * z / (2 * trials)
    margin = z * math.sqrt((phat * (1 - phat) + z * z / (4 * trials)) / trials)
    return max(0.0, (centre - margin) / denom), min(1.0, (centre + margin) / denom)


@dataclass(frozen=True)
class SuccessEstimate:
    """Observed success rate of a repeated randomized experiment."""

    successes: int
    trials: int
    low: float
    high: float

    @property
    def rate(self) -> float:
        """Observed success fraction (0 for zero trials)."""
        return self.successes / self.trials if self.trials else 0.0

    def row(self) -> dict:
        """Flat dict for table printing."""
        return {
            "successes": self.successes,
            "trials": self.trials,
            "rate": round(self.rate, 4),
            "ci_low": round(self.low, 4),
            "ci_high": round(self.high, 4),
        }


def estimate_success(trial: Callable[[int], bool], trials: int, z: float = 1.96) -> SuccessEstimate:
    """Run ``trial(seed)`` for seeds ``0..trials-1`` and summarise the success rate."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    successes = sum(1 for seed in range(trials) if trial(seed))
    low, high = wilson_interval(successes, trials, z=z)
    return SuccessEstimate(successes=successes, trials=trials, low=low, high=high)
