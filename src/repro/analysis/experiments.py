"""Sweep runners and table formatting shared by benchmarks and examples.

Every benchmark in ``benchmarks/`` follows the same pattern: sweep a
parameter (usually ``n``), collect one row of measurements per point, print a
plain-text table mirroring the corresponding table/figure of the paper, and
assert the qualitative shape.  The helpers here implement the sweep and the
formatting so that each benchmark file reads as a description of *what* is
measured rather than plumbing.
"""

from __future__ import annotations

import statistics
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.net.results import SimulationResult
from repro.runner import run_aer_experiment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.sweep import ExperimentRecord
    from repro.protocols.base import RunResult


def format_table(rows: Sequence[Mapping[str, object]], title: Optional[str] = None) -> str:
    """Render a list of flat dicts as an aligned plain-text table.

    All rows are expected to share the same keys (the first row defines the
    column order); values are rendered with ``str``.  The output is what the
    benchmarks print so that the paper-vs-measured comparison is visible in
    the pytest output.  The committed EXPERIMENTS.md is *generated* — not
    pasted — by ``python -m repro report`` (:mod:`repro.report`), which
    renders the same rows as Markdown.
    """
    if not rows:
        return f"{title or 'table'}: (no rows)"
    columns = list(rows[0].keys())
    rendered = [[str(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    return "\n".join(lines)


def result_row(result: SimulationResult, **extra: object) -> Dict[str, object]:
    """Condense a :class:`SimulationResult` into one table row."""
    metrics = result.metrics
    row: Dict[str, object] = {
        "n": result.n,
        "decided": f"{len(result.decisions)}/{len(result.correct_ids)}",
        "agreement": int(result.agreement_reached),
        "rounds": metrics.rounds if metrics.rounds is not None else "-",
        "span": round(metrics.span, 2) if metrics.span is not None else "-",
        "amortized_bits": round(metrics.amortized_bits, 1),
        "max_node_bits": metrics.max_node_bits,
        "load_imbalance": round(metrics.load_imbalance, 2),
    }
    row.update(extra)
    return row


def run_result_row(result: "RunResult", **extra: object) -> Dict[str, object]:
    """Condense a normalized :class:`~repro.protocols.base.RunResult` into one row."""
    row: Dict[str, object] = {
        "protocol": result.protocol,
        "n": result.n,
        "decided": f"{result.decided_count}/{result.correct_count}",
        "agreement": int(result.agreement),
        "rounds": round(result.rounds, 2) if result.rounds is not None else "-",
        "span": round(result.span, 2) if result.span is not None else "-",
        "amortized_bits": round(result.amortized_bits, 1),
        "max_node_bits": result.max_node_bits,
        "load_imbalance": round(result.load_imbalance, 2),
    }
    row.update(extra)
    return row


def compare_rows(records: Sequence["ExperimentRecord"]) -> List[Dict[str, object]]:
    """Aggregate sweep records into a Figure-1-style cross-protocol table.

    Records are grouped by ``(n, protocol)`` in first-seen order (plan order
    keeps that n-major) and aggregated across the remaining dimensions —
    typically seeds: agreement becomes a rate, the cost metrics become means,
    and ``max_node_bits`` stays a worst case.
    """
    groups: Dict[Tuple[int, str], List["ExperimentRecord"]] = {}
    for record in records:
        groups.setdefault((record.spec.n, record.spec.protocol), []).append(record)

    rows: List[Dict[str, object]] = []
    for (n, protocol), group in groups.items():
        runs = len(group)
        times = [
            r.rounds if r.rounds is not None else r.span
            for r in group
            if (r.rounds is not None or r.span is not None)
        ]
        rows.append(
            {
                "protocol": protocol,
                "n": n,
                "runs": runs,
                "agreement_rate": round(sum(r.agreement for r in group) / runs, 3),
                "rounds": round(statistics.mean(times), 2) if times else "-",
                "total_bits": round(statistics.mean(r.total_bits for r in group)),
                "amortized_bits": round(
                    statistics.mean(r.amortized_bits for r in group), 1
                ),
                "max_node_bits": max(r.max_node_bits for r in group),
                "load_imbalance": round(
                    statistics.mean(r.load_imbalance for r in group), 2
                ),
                "seconds": round(statistics.mean(r.seconds for r in group), 3),
            }
        )
    return rows


def sweep_aer(
    ns: Iterable[int],
    adversary_name: str = "none",
    mode: str = "sync",
    rushing: bool = False,
    seed: int = 0,
    **experiment_kwargs: object,
) -> List[SimulationResult]:
    """Run :func:`repro.runner.run_aer_experiment` for every ``n`` in the sweep."""
    return [
        run_aer_experiment(
            n=n,
            adversary_name=adversary_name,
            mode=mode,
            rushing=rushing,
            seed=seed,
            **experiment_kwargs,  # type: ignore[arg-type]
        )
        for n in ns
    ]


def sweep_rows(
    ns: Iterable[int],
    runner: Callable[[int], SimulationResult],
    label: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Run ``runner(n)`` for every ``n`` and collect table rows.

    ``label`` (when given) is added to every row under the ``protocol``
    column, which is how the Figure 1 benchmarks stack several protocols in
    one table.
    """
    rows = []
    for n in ns:
        result = runner(n)
        extra = {"protocol": label} if label is not None else {}
        rows.append(result_row(result, **extra))
    return rows
