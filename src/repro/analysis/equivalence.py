"""Backend-equivalence harness: message kernel vs the vectorized engine.

Two guarantees back the ``backend="vectorized"`` axis, and this module checks
both (see ARCHITECTURE.md "engine backends"):

**Exact** (:func:`check_exact`) — at any size where the vectorized engine
replays the per-node RNG draw order of the message kernel, the two backends
must agree *bit for bit*: same decisions, same decision times, same rounds,
same message and bit totals.  This holds for the failure-free and ``silent``
/ flooding adversaries; CI runs it at small ``n`` on every push.

**Statistical** (:func:`check_statistical`) — at sizes or under adversaries
where draw orders legitimately diverge (the cornering family merges
forwarding across labels differently), per-seed equality is not promised.
Instead the *distributions* across seeds must be indistinguishable: for each
metric the cross-seed confidence intervals of the two backends must overlap
(:func:`repro.analysis.statistics.distributions_equivalent`).  This is the
harness behind the large-``n`` acceptance gate (``n ∈ {4096, 10⁴}``, ≥10
seeds).

Both entry points are wired into ``python -m repro equivalence``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.statistics import distributions_equivalent, mean_ci
from repro.runner import run_aer_experiment

#: metrics whose cross-seed distributions the statistical check compares
STATISTICAL_METRICS = ("rounds", "total_bits", "total_messages", "decided_fraction")

#: adversaries with exact (bit-for-bit) vectorized replay of the kernel
EXACT_ADVERSARIES = ("none", "silent", "push_flood", "quorum_flood")


def _run(n: int, adversary: str, seed: int, backend: str, wrong_candidate_mode: str):
    return run_aer_experiment(
        n,
        adversary_name=adversary,
        mode="sync",
        seed=seed,
        wrong_candidate_mode=wrong_candidate_mode,
        backend=backend,
    )


def _fingerprint(result) -> Dict[str, object]:
    """Everything the exact check compares, as one flat dict."""
    return {
        "decisions": dict(result.decisions),
        "decision_times": dict(result.metrics.decision_times),
        "rounds": result.rounds,
        "total_messages": result.metrics.total_messages,
        "total_bits": result.metrics.total_bits,
        "max_node_bits": result.metrics.max_node_bits,
        "total_messages_all": result.metrics_all.total_messages,
        "total_bits_all": result.metrics_all.total_bits,
    }


def _metric_values(result) -> Dict[str, float]:
    gstring = result.agreement_value()
    decided = result.fraction_decided(gstring) if gstring is not None else 0.0
    return {
        "rounds": float(result.rounds or 0),
        "total_bits": float(result.metrics.total_bits),
        "total_messages": float(result.metrics.total_messages),
        "decided_fraction": float(decided),
    }


@dataclass
class ExactReport:
    """Outcome of the bit-for-bit comparison over a (n, adversary, seed) grid."""

    cases: int = 0
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def check_exact(
    ns: Sequence[int] = (48, 64),
    adversaries: Sequence[str] = EXACT_ADVERSARIES,
    seeds: Sequence[int] = (0, 1),
    wrong_candidate_mode: str = "common_wrong",
) -> ExactReport:
    """Run both backends on every grid point and demand identical results."""
    report = ExactReport()
    for n in ns:
        for adversary in adversaries:
            for seed in seeds:
                report.cases += 1
                msg = _fingerprint(_run(n, adversary, seed, "message", wrong_candidate_mode))
                vec = _fingerprint(_run(n, adversary, seed, "vectorized", wrong_candidate_mode))
                for key, expected in msg.items():
                    if vec[key] != expected:
                        report.mismatches.append(
                            f"n={n} adversary={adversary} seed={seed}: {key} "
                            f"message={expected!r} vectorized={vec[key]!r}"
                        )
    return report


@dataclass
class StatisticalReport:
    """Per-(n, metric) CI-overlap verdicts of the cross-seed comparison."""

    seeds: int = 0
    #: ``(n, metric) -> (message_ci, vectorized_ci, overlap)``
    verdicts: Dict[Tuple[int, str], Tuple[str, str, bool]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(overlap for _, _, overlap in self.verdicts.values())

    def failures(self) -> List[str]:
        return [
            f"n={n} {metric}: message CI {a} vs vectorized CI {b} are disjoint"
            for (n, metric), (a, b, overlap) in sorted(self.verdicts.items())
            if not overlap
        ]


def check_statistical(
    ns: Sequence[int] = (4096, 10_000),
    adversary: str = "none",
    seeds: Sequence[int] = tuple(range(10)),
    wrong_candidate_mode: str = "common_wrong",
    metrics: Sequence[str] = STATISTICAL_METRICS,
) -> StatisticalReport:
    """Cross-seed CI overlap between the backends for every metric at every n.

    The message backend dominates the cost (it is the slow engine at these
    sizes); both backends see the same seed list so scenario draws match.
    """
    report = StatisticalReport(seeds=len(seeds))
    for n in ns:
        samples: Dict[str, Dict[str, List[float]]] = {
            backend: {metric: [] for metric in metrics}
            for backend in ("message", "vectorized")
        }
        for backend in ("message", "vectorized"):
            for seed in seeds:
                values = _metric_values(_run(n, adversary, seed, backend, wrong_candidate_mode))
                for metric in metrics:
                    samples[backend][metric].append(values[metric])
        for metric in metrics:
            a = samples["message"][metric]
            b = samples["vectorized"][metric]
            overlap = distributions_equivalent(a, b)
            report.verdicts[(n, metric)] = (
                mean_ci(a).format(2),
                mean_ci(b).format(2),
                overlap,
            )
    return report
