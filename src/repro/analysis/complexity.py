"""Growth-law fitting for the complexity comparisons of Figure 1.

The paper's claims are asymptotic shapes, not absolute constants: AER's
per-node communication is ``O(log² n)`` bits, the KLST-style baseline's is
``O~(√n)``, the naive baseline's is ``Θ(n)``.  To turn a finite sweep over
``n`` into a verdict we fit the measured cost ``y(n)`` against candidate
models and report which explains it best:

* ``polylog`` — ``y = a · (log₂ n)^b``;
* ``power``   — ``y = a · n^b`` (``b ≈ 0.5`` for the √n class, ``b ≈ 1`` for
  the linear class).

Both fits are ordinary least squares in the appropriate log-transformed
coordinates; no SciPy optimiser is needed, and the small sweeps used by the
benchmarks (4-6 points) are enough to separate the classes because the
exponents differ by large margins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class GrowthFit:
    """Result of fitting one growth law to a measured curve.

    ``model`` is ``"polylog"`` or ``"power"``; ``exponent`` is the fitted
    ``b``; ``r_squared`` measures the quality of the fit in the transformed
    coordinates (1.0 is a perfect fit).
    """

    model: str
    coefficient: float
    exponent: float
    r_squared: float

    def predict(self, n: float) -> float:
        """Evaluate the fitted law at ``n``."""
        if self.model == "polylog":
            return self.coefficient * (math.log2(max(2.0, n)) ** self.exponent)
        return self.coefficient * (n ** self.exponent)


def _least_squares(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float, float]:
    """Simple OLS of ``y = a + b·x`` returning ``(a, b, r²)``."""
    count = len(xs)
    if count < 2:
        raise ValueError("need at least two points to fit a growth law")
    mean_x = sum(xs) / count
    mean_y = sum(ys) / count
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x == 0:
        return mean_y, 0.0, 1.0
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = cov / var_x
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (intercept + slope * x)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 if ss_tot == 0 else max(0.0, 1.0 - ss_res / ss_tot)
    return intercept, slope, r_squared


def fit_growth(ns: Sequence[int], costs: Sequence[float], model: str) -> GrowthFit:
    """Fit one growth law (``"polylog"`` or ``"power"``) to the measured points."""
    if len(ns) != len(costs):
        raise ValueError("ns and costs must have the same length")
    positive = [(n, c) for n, c in zip(ns, costs) if n > 1 and c > 0]
    if len(positive) < 2:
        raise ValueError("need at least two positive points to fit a growth law")
    if model == "polylog":
        xs = [math.log(math.log2(n)) for n, _ in positive]
    elif model == "power":
        xs = [math.log(n) for n, _ in positive]
    else:
        raise ValueError(f"unknown model {model!r}")
    ys = [math.log(c) for _, c in positive]
    intercept, slope, r_squared = _least_squares(xs, ys)
    return GrowthFit(
        model=model,
        coefficient=math.exp(intercept),
        exponent=slope,
        r_squared=r_squared,
    )


def growth_exponent(ns: Sequence[int], costs: Sequence[float]) -> float:
    """Fitted exponent ``b`` of the power law ``cost ≈ a·n^b``.

    This is the single most informative number for separating the complexity
    classes: ≈ 0 for poly-logarithmic cost, ≈ 0.5 for the ``√n`` class,
    ≈ 1 for linear cost.
    """
    return fit_growth(ns, costs, model="power").exponent


def polylog_ratio(ns: Sequence[int], costs: Sequence[float]) -> float:
    """Max/min of ``cost / log₂(n)²`` across the sweep.

    For a genuinely ``O(log² n)`` quantity this ratio stays ``O(1)`` as ``n``
    grows; for ``√n`` or linear quantities it grows with ``n``.  The
    benchmarks print it next to the fitted exponents.
    """
    normalised = [c / (math.log2(max(2, n)) ** 2) for n, c in zip(ns, costs) if c > 0]
    if not normalised:
        return 1.0
    return max(normalised) / min(normalised)


def classify_growth(ns: Sequence[int], costs: Sequence[float]) -> Dict[str, float]:
    """Return a summary of both fits, keyed for easy table printing."""
    power = fit_growth(ns, costs, model="power")
    poly = fit_growth(ns, costs, model="polylog")
    return {
        "power_exponent": round(power.exponent, 3),
        "power_r2": round(power.r_squared, 3),
        "polylog_exponent": round(poly.exponent, 3),
        "polylog_r2": round(poly.r_squared, 3),
        "polylog_ratio": round(polylog_ratio(ns, costs), 3),
    }
