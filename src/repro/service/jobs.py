"""Framework-free job orchestration for the experiment service.

A :class:`JobManager` is the service's worker half: one daemon thread drains
a FIFO of submitted :class:`~repro.experiments.plan.ExperimentPlan`\\ s and
runs each through the store-aware
:meth:`~repro.experiments.sweep.SweepRunner.run` on one long-lived warm
:class:`~repro.experiments.sweep.WorkerPool`.  Three properties the HTTP
layer builds on:

* **Coalescing** — submitting a plan whose canonical JSON hashes equal to a
  queued or running job's returns *that* job instead of enqueueing
  duplicate work (many clients asking for the same sweep share one
  execution, then all further submissions are instant store hits).
* **Streaming** — records append to the job in completion order under a
  condition variable; :meth:`iter_records` blocks for new ones, so an HTTP
  handler can turn a running job into a chunked NDJSON response.
* **Clean shutdown** — :meth:`close` stops the worker thread and closes the
  pool via its idle-safe graceful path, so a service restart never leaks
  worker processes.

Everything here is importable without fastapi: the manager doubles as the
library API for "run these plans in the background of my process".
"""

from __future__ import annotations

import threading
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from repro.experiments.plan import ExperimentPlan
from repro.experiments.sweep import ExperimentRecord, SweepRunner, WorkerPool
from repro.store import ResultStore
from repro.store.keys import plan_key

#: job lifecycle states
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"


@dataclass
class Job:
    """One submitted plan and its (growing) results.

    ``records`` holds ``(index, record, served_from_store)`` tuples in
    completion order — ``index`` is the record's slot in plan order, so a
    client can reassemble the plan-ordered list from the stream.
    """

    id: str
    plan: ExperimentPlan
    total: int
    status: str = QUEUED
    done: int = 0
    served_from_store: int = 0
    error: Optional[str] = None
    records: List[Tuple[int, ExperimentRecord, bool]] = field(default_factory=list)
    #: how many submissions coalesced onto this job (1 = just the first)
    submissions: int = 1

    def progress(self) -> Dict[str, object]:
        """JSON-safe progress snapshot (the poll endpoint's payload)."""
        return {
            "id": self.id,
            "status": self.status,
            "done": self.done,
            "total": self.total,
            "served_from_store": self.served_from_store,
            "submissions": self.submissions,
            "error": self.error,
        }

    @property
    def finished(self) -> bool:
        return self.status in (DONE, FAILED)


class JobManager:
    """Background execution of experiment plans with store-backed dedup.

    Parameters
    ----------
    store:
        Shared result store (``None`` disables persistence/dedup across
        jobs; in-flight coalescing still applies).
    pool:
        Warm worker pool to run sweeps on; created (and owned) lazily when
        not given and ``jobs != 1``.
    jobs:
        Worker processes per sweep (``1`` = serial in the worker thread,
        what the tests use).
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        pool: Optional[WorkerPool] = None,
        jobs: Optional[int] = None,
    ) -> None:
        self.store = store
        self.jobs = jobs
        self._pool = pool
        self._owns_pool = pool is None and jobs != 1
        if self._owns_pool:
            self._pool = WorkerPool(processes=jobs)
        self._cv = threading.Condition()
        self._queue: Deque[Job] = deque()
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, Job] = {}  # plan_key -> queued/running job
        self._sequence = 0
        self._closed = False
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-job-worker", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # submission and lookup
    # ------------------------------------------------------------------
    def submit(self, plan: ExperimentPlan) -> Tuple[Job, bool]:
        """Queue a plan; returns ``(job, coalesced)``.

        ``coalesced`` is true when an identical plan was already queued or
        running — the returned job is that one, and no new work enters the
        queue.
        """
        plan.validate()
        key = plan_key(plan)
        with self._cv:
            if self._closed:
                raise RuntimeError("JobManager is closed")
            existing = self._inflight.get(key)
            if existing is not None and not existing.finished:
                existing.submissions += 1
                return existing, True
            self._sequence += 1
            job = Job(
                id=f"job-{self._sequence:05d}-{key[:12]}",
                plan=plan,
                total=len(plan.specs()),
            )
            self._jobs[job.id] = job
            self._inflight[key] = job
            self._queue.append(job)
            self._cv.notify_all()
            return job, False

    def get(self, job_id: str) -> Job:
        """The job with that id (``KeyError`` if unknown)."""
        with self._cv:
            return self._jobs[job_id]

    def list_jobs(self) -> List[Dict[str, object]]:
        """Progress snapshots of every known job, newest first."""
        with self._cv:
            return [job.progress() for job in reversed(self._jobs.values())]

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until the job finishes (or the timeout elapses)."""
        job = self.get(job_id)
        with self._cv:
            self._cv.wait_for(lambda: job.finished, timeout=timeout)
        return job

    def iter_records(
        self, job_id: str, start: int = 0, poll_timeout: float = 0.5
    ) -> Iterator[Tuple[int, ExperimentRecord, bool]]:
        """Yield the job's ``(index, record, served)`` tuples from ``start``,
        blocking for new ones until the job finishes — the NDJSON stream."""
        job = self.get(job_id)
        cursor = start
        while True:
            with self._cv:
                self._cv.wait_for(
                    lambda: len(job.records) > cursor or job.finished,
                    timeout=poll_timeout,
                )
                batch = job.records[cursor:]
                finished = job.finished
            for item in batch:
                yield item
            cursor += len(batch)
            if finished and cursor >= len(job.records):
                return

    # ------------------------------------------------------------------
    # worker loop
    # ------------------------------------------------------------------
    def _run_loop(self) -> None:
        while True:
            with self._cv:
                self._cv.wait_for(lambda: self._queue or self._closed)
                if self._closed and not self._queue:
                    return
                job = self._queue.popleft()
                job.status = RUNNING
                self._cv.notify_all()
            self._execute(job)

    def _execute(self, job: Job) -> None:
        def on_record(index: int, record: ExperimentRecord, served: bool) -> None:
            with self._cv:
                job.records.append((index, record, served))
                job.done += 1
                if served:
                    job.served_from_store += 1
                self._cv.notify_all()

        try:
            SweepRunner(job.plan, jobs=self.jobs).run(
                pool=self._pool, store=self.store, on_record=on_record
            )
        except Exception as exc:  # keep serving other jobs after a bad plan
            traceback.print_exc()
            with self._cv:
                job.status = FAILED
                job.error = f"{type(exc).__name__}: {exc}"
                self._cv.notify_all()
            return
        with self._cv:
            job.status = DONE
            self._cv.notify_all()

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def close(self, timeout: float = 30.0) -> None:
        """Finish queued work, stop the worker thread, release the pool.

        Safe to call multiple times; after it returns no worker processes
        remain (the pool's graceful idle-safe close).
        """
        with self._cv:
            if self._closed:
                return
            self._closed = True
            self._cv.notify_all()
        self._thread.join(timeout=timeout)
        if self._owns_pool and self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
