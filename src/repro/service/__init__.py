"""Experiment service: submit plans over HTTP, stream records, query the store.

Two halves, split exactly like the related-work services (an ``api`` layer
over a ``worker`` layer):

* :mod:`repro.service.jobs` — framework-free job orchestration.  A
  :class:`JobManager` owns one background worker thread, one shared warm
  :class:`~repro.experiments.sweep.WorkerPool` and one
  :class:`~repro.store.ResultStore`; submitted
  :class:`~repro.experiments.plan.ExperimentPlan`\\ s queue onto the thread,
  identical in-flight submissions **coalesce onto one job**, and records
  stream out in completion order.  No FastAPI import — the manager is fully
  testable (and usable as a library) without the ``[service]`` extra.
* :mod:`repro.service.app` — the FastAPI application over the manager:
  submit / poll / NDJSON-stream / store-query routers.  Imported lazily so
  this package works without ``fastapi`` installed; ``python -m repro
  serve`` is the uvicorn entry point.
"""

from repro.service.jobs import Job, JobManager

__all__ = ["Job", "JobManager", "create_app", "fastapi_available"]


def fastapi_available() -> bool:
    """Whether the optional ``[service]`` extra (fastapi) is importable."""
    try:
        import fastapi  # noqa: F401
    except ImportError:
        return False
    return True


def create_app(*args, **kwargs):
    """Build the FastAPI app (lazy import; see :func:`repro.service.app.create_app`).

    Raises a ``RuntimeError`` naming the install command when fastapi is
    missing, instead of an ImportError deep inside a router module.
    """
    if not fastapi_available():
        raise RuntimeError(
            "the experiment service needs the optional [service] extra: "
            "pip install 'aer-repro[service]' (fastapi + uvicorn)"
        )
    from repro.service.app import create_app as _create_app

    return _create_app(*args, **kwargs)
