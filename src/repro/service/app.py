"""FastAPI application over the JobManager: the experiment service's API half.

Endpoints (all JSON unless noted):

* ``GET  /healthz`` — liveness + store/job counters.
* ``POST /plans`` — submit an :class:`~repro.experiments.plan.ExperimentPlan`
  as JSON (the ``plan.to_dict()`` layout); returns the job id.  Identical
  in-flight submissions coalesce onto one job (``coalesced: true``).
* ``GET  /jobs`` — progress snapshots of every job, newest first.
* ``GET  /jobs/{job_id}`` — one job's progress (done/total,
  served-from-store count, status).
* ``GET  /jobs/{job_id}/records`` — **chunked NDJSON stream**: one
  ``{"index", "served_from_store", "record"}`` line per record in
  completion order, blocking until the job finishes; ``?start=N`` resumes a
  dropped stream.
* ``GET  /jobs/{job_id}/result`` — the finished plan-ordered record list
  (409 while still running).
* ``GET  /store/stats`` — the store's :meth:`~repro.store.ResultStore.stats`.
* ``GET  /store/records`` — query stored records by protocol/fingerprint.
* ``GET  /dist/coordinators`` — status snapshots of every live distributed
  sweep coordinator in this process (see :mod:`repro.dist`).

This module imports fastapi and must only be loaded through
:func:`repro.service.create_app` (which guards the optional dependency) or
``python -m repro serve``.
"""

from __future__ import annotations

import json
from contextlib import asynccontextmanager
from typing import Optional

from fastapi import APIRouter, FastAPI, HTTPException
from fastapi.responses import StreamingResponse

from repro.experiments.plan import ExperimentPlan
from repro.service.jobs import JobManager
from repro.store import ResultStore, default_store_path


def _record_line(index: int, record, served: bool) -> str:
    payload = {
        "index": index,
        "served_from_store": served,
        "record": record.to_dict(),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def build_router(manager: JobManager) -> APIRouter:
    """The service's routes, bound to one JobManager."""
    router = APIRouter()

    @router.get("/healthz")
    def healthz() -> dict:
        stats = manager.store.stats() if manager.store is not None else None
        return {
            "status": "ok",
            "jobs": len(manager.list_jobs()),
            "store": stats,
        }

    @router.post("/plans", status_code=202)
    def submit_plan(plan: dict) -> dict:
        try:
            parsed = ExperimentPlan.from_dict(plan)
            job, coalesced = manager.submit(parsed)
        except (ValueError, TypeError) as exc:
            raise HTTPException(status_code=422, detail=str(exc)) from None
        return {"job_id": job.id, "coalesced": coalesced, "total": job.total}

    @router.get("/jobs")
    def list_jobs() -> list:
        return manager.list_jobs()

    def _job(job_id: str):
        try:
            return manager.get(job_id)
        except KeyError:
            raise HTTPException(status_code=404, detail=f"unknown job {job_id!r}") from None

    @router.get("/jobs/{job_id}")
    def job_progress(job_id: str) -> dict:
        return _job(job_id).progress()

    @router.get("/jobs/{job_id}/records")
    def job_records(job_id: str, start: int = 0) -> StreamingResponse:
        _job(job_id)  # 404 before the stream starts, not inside it

        def stream():
            for index, record, served in manager.iter_records(job_id, start=start):
                yield _record_line(index, record, served)

        return StreamingResponse(stream(), media_type="application/x-ndjson")

    @router.get("/jobs/{job_id}/result")
    def job_result(job_id: str) -> dict:
        job = _job(job_id)
        if not job.finished:
            raise HTTPException(
                status_code=409,
                detail=f"job {job_id!r} is {job.status} ({job.done}/{job.total})",
            )
        ordered = sorted(job.records, key=lambda item: item[0])
        return {
            **job.progress(),
            "records": [record.to_dict() for _, record, _ in ordered],
        }

    @router.get("/store/stats")
    def store_stats() -> dict:
        if manager.store is None:
            raise HTTPException(status_code=404, detail="service runs without a store")
        return manager.store.stats()

    @router.get("/store/records")
    def store_records(
        protocol: Optional[str] = None,
        fingerprint: Optional[str] = None,
        limit: int = 100,
    ) -> list:
        if manager.store is None:
            raise HTTPException(status_code=404, detail="service runs without a store")
        return manager.store.query(
            protocol=protocol, fingerprint=fingerprint, limit=limit
        )

    @router.get("/dist/coordinators")
    def dist_coordinators() -> list:
        from repro.dist import active_coordinators

        return active_coordinators()

    return router


def create_app(
    store_path: Optional[str] = None,
    jobs: Optional[int] = None,
    manager: Optional[JobManager] = None,
) -> FastAPI:
    """Build the service application.

    ``store_path`` defaults to :func:`repro.store.default_store_path`
    (``$REPRO_STORE`` or ``.repro-store.sqlite``); pass an explicit
    ``manager`` to share one across apps (tests).  The app owns whatever it
    creates: manager, pool and store are released on shutdown through the
    idle-safe close path.
    """
    owned = manager is None
    if manager is None:
        store = ResultStore(store_path or default_store_path())
        manager = JobManager(store=store, jobs=jobs)

    @asynccontextmanager
    async def lifespan(app: FastAPI):
        yield
        if owned:
            manager.close()
            if manager.store is not None:
                manager.store.close()

    app = FastAPI(
        title="aer-repro experiment service",
        description="Submit experiment plans, stream records, query the "
        "content-addressed result store.",
        lifespan=lifespan,
    )
    app.state.manager = manager
    app.include_router(build_router(manager))
    return app
