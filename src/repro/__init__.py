"""repro — reproduction of "Fast Byzantine Agreement" (PODC 2013).

This package implements, from scratch and in pure Python:

* the **AER** almost-everywhere-to-everywhere agreement protocol and the
  composed **BA** Byzantine Agreement protocol of Braud-Santoni, Guerraoui
  and Huc (:mod:`repro.core`);
* the sampler constructions they rely on (:mod:`repro.samplers`);
* a deterministic message-passing simulation substrate with synchronous and
  asynchronous schedulers (:mod:`repro.net`);
* a Byzantine adversary framework with the attacks analysed in the paper
  (:mod:`repro.adversary`);
* an almost-everywhere agreement substrate in the style of [KSSV06]
  (:mod:`repro.ae`);
* baseline protocols for the comparisons of Figure 1 (:mod:`repro.baselines`);
* analysis utilities for the benchmark harness (:mod:`repro.analysis`);
* a registry-based public API surface (:mod:`repro.api`) through which
  protocols, adversaries, delay policies and scenario generators are
  addressed by name — and extended with one decorator.

Quickstart
----------
>>> from repro import api
>>> result = api.run_experiment("aer", n=64, seed=1, adversary="wrong_answer")
>>> result.agreement
True

The pre-registry entry points remain available:

>>> from repro import run_aer_experiment
>>> result = run_aer_experiment(n=64, adversary_name="wrong_answer", seed=1)
>>> result.agreement_reached
True
"""

from repro.core import (
    AERConfig,
    AERNode,
    AERScenario,
    BAConfig,
    BAProtocol,
    BAResult,
    build_aer_nodes,
    make_scenario,
)
from repro.runner import make_adversary, run_aer, run_aer_experiment

__version__ = "1.0.0"

__all__ = [
    "AERConfig",
    "AERNode",
    "AERScenario",
    "BAConfig",
    "BAProtocol",
    "BAResult",
    "build_aer_nodes",
    "make_scenario",
    "make_adversary",
    "run_aer",
    "run_aer_experiment",
    "__version__",
]
