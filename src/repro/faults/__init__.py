"""Fault injection — churn, message loss, partitions and delay classes.

The paper proves AER's guarantees for static membership over reliable (if
adversarially delayed) links; this subsystem measures where those guarantees
degrade empirically.  A :class:`FaultSchedule` rides on an
:class:`~repro.experiments.plan.ExperimentSpec` (the ``faults`` field,
canonical JSON text, default ``"{}"``) and describes four fault families:

* **churn** — crash-recovery of correct nodes: at every integer time
  boundary (synchronous round start / asynchronous unit-time step) each
  *up* correct node crashes with probability ``churn_rate`` and each *down*
  node recovers with probability ``recovery_rate``.  A down node neither
  acts nor receives (deliveries to it are dropped); it keeps its state and
  resumes on recovery — the crash-recovery model of the related work.
* **message loss** — every delivery is dropped i.i.d. with probability
  ``loss_rate`` (links stay FIFO-less and memoryless, the gossip-under-loss
  model).
* **partitions** — during each ``{"start", "end", "fraction"}`` window the
  population is cut into two sides (ids below ``fraction·n`` vs the rest)
  and cross-side deliveries are dropped; the cut heals at ``end``.  The
  side assignment is a pure function of the id, so partitions consume no
  randomness.
* **delay classes** (asynchronous mode only) — mixed populations: a
  ``slow_fraction`` of correct senders get their drawn delays multiplied by
  ``slow_factor`` and Byzantine senders by ``byzantine_factor`` (< 1 models
  the fast-Byzantine/slow-correct race), re-clamped into the model's
  ``(0, 1]`` window.

Determinism contract: a :class:`FaultInjector` draws **all** of its
randomness from dedicated streams (``derive_rng(seed, "faults", ...)``)
that no other component touches, so a disabled schedule — the default — is
*byte-identical* to a run without the subsystem (the golden matrix is the
oracle), and a given schedule is reproducible from the spec's seed alone.
The disabled path is a single ``is None`` check at each hook site.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.net.rng import derive_rng

__all__ = ["PartitionWindow", "FaultSchedule", "FaultInjector", "injector_for_spec"]


@dataclass(frozen=True)
class PartitionWindow:
    """One partition episode: a two-sided cut active on ``[start, end)``.

    ``fraction`` fixes the cut point: ids below ``fraction * n`` form side A,
    the rest side B; messages crossing sides while the window is active are
    dropped, and the cut heals (deliveries resume) at ``end``.  Times are
    scheduler times — round numbers under the synchronous scheduler,
    normalized delay units under the asynchronous one.
    """

    start: float
    end: float
    fraction: float = 0.5

    def validate(self) -> None:
        if not 0 <= self.start < self.end:
            raise ValueError(
                f"fault key 'partitions': require 0 <= start < end "
                f"(got start={self.start}, end={self.end})"
            )
        if not 0.0 < self.fraction < 1.0:
            raise ValueError(
                f"fault key 'partitions': fraction must lie in (0, 1) "
                f"(got {self.fraction})"
            )

    def to_dict(self) -> Dict[str, float]:
        return {"start": self.start, "end": self.end, "fraction": self.fraction}

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "PartitionWindow":
        if not isinstance(data, Mapping):
            raise ValueError(
                f"fault key 'partitions': each window must be a mapping with "
                f"keys start/end/fraction, got {data!r}"
            )
        known = {f.name for f in fields(PartitionWindow)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"fault key 'partitions': unknown window key(s) "
                f"{', '.join(unknown)} (known: {', '.join(sorted(known))})"
            )
        if "start" not in data or "end" not in data:
            raise ValueError(
                "fault key 'partitions': each window needs 'start' and 'end'"
            )
        window = PartitionWindow(
            start=float(data["start"]),  # type: ignore[arg-type]
            end=float(data["end"]),  # type: ignore[arg-type]
            fraction=float(data.get("fraction", 0.5)),  # type: ignore[arg-type]
        )
        window.validate()
        return window


#: value-range validators per scalar schedule knob; each message names the
#: offending key so spec validation errors are actionable
_RANGES = {
    "loss_rate": (lambda v: 0.0 <= v < 1.0, "must lie in [0, 1)"),
    "churn_rate": (lambda v: 0.0 <= v < 1.0, "must lie in [0, 1)"),
    "recovery_rate": (lambda v: 0.0 <= v <= 1.0, "must lie in [0, 1]"),
    "churn_start": (lambda v: v >= 0.0, "must be >= 0"),
    "slow_fraction": (lambda v: 0.0 <= v <= 1.0, "must lie in [0, 1]"),
    "slow_factor": (lambda v: v >= 1.0, "must be >= 1 (slow means slower)"),
    "byzantine_factor": (lambda v: v > 0.0, "must be > 0"),
}


@dataclass(frozen=True)
class FaultSchedule:
    """Declarative description of every fault a run injects (default: none).

    Attached to a spec as canonical JSON (``ExperimentSpec.faults``); the
    all-defaults schedule is a no-op and builds **no** injector, so the
    fault-free path stays byte-identical to a build without this subsystem.
    """

    #: i.i.d. per-delivery drop probability, in [0, 1)
    loss_rate: float = 0.0
    #: per-up-correct-node crash probability at each integer time boundary
    churn_rate: float = 0.0
    #: per-down-node recovery probability at each integer time boundary
    recovery_rate: float = 0.5
    #: boundaries strictly before this time do not churn
    churn_start: float = 0.0
    #: partition episodes (two-sided cuts with heal times)
    partitions: Tuple[PartitionWindow, ...] = ()
    #: fraction of correct nodes in the slow delay class (async only)
    slow_fraction: float = 0.0
    #: delay multiplier for slow-class correct senders (>= 1; async only)
    slow_factor: float = 1.0
    #: delay multiplier for Byzantine senders (> 0; < 1 is fast-Byzantine)
    byzantine_factor: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.partitions, tuple):
            object.__setattr__(self, "partitions", tuple(self.partitions))
        self.validate()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` naming the offending key on a bad knob."""
        for name, (check, message) in _RANGES.items():
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"fault key {name!r} must be a number, got {value!r}")
            if not check(float(value)):
                raise ValueError(f"fault key {name!r} {message} (got {value})")
        for window in self.partitions:
            window.validate()
        if self.churn_rate == 0.0 and self.churn_start != 0.0:
            raise ValueError(
                "fault key 'churn_start' is set but 'churn_rate' is 0 "
                "(churn_start only applies when churn is enabled)"
            )

    @property
    def is_noop(self) -> bool:
        """True when this schedule injects nothing (the all-defaults case)."""
        return self == FaultSchedule()

    @property
    def has_delay_classes(self) -> bool:
        """Whether any sender's delays are rescaled (async-only knobs)."""
        return (
            self.slow_fraction > 0.0 and self.slow_factor != 1.0
        ) or self.byzantine_factor != 1.0

    def validate_for_mode(self, mode: str) -> None:
        """Reject mode/knob combinations that cannot mean anything."""
        if mode == "sync" and self.has_delay_classes:
            raise ValueError(
                "fault key 'slow_fraction'/'slow_factor'/'byzantine_factor': "
                "delay classes rescale asynchronous delays and only apply to "
                "mode='async'"
            )

    # ------------------------------------------------------------------
    # serialization (the spec's ``faults`` field round-trips through here)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain dict holding only the non-default knobs (canonical form)."""
        default = FaultSchedule()
        data: Dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value != getattr(default, f.name):
                data[f.name] = value
        if "partitions" in data:
            data["partitions"] = [w.to_dict() for w in self.partitions]
        return data

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys, no whitespace, defaults omitted)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "FaultSchedule":
        if not isinstance(data, Mapping):
            raise ValueError(f"fault schedule must be a mapping, got {data!r}")
        data = dict(data)
        known = {f.name for f in fields(FaultSchedule)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown fault key(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        if "partitions" in data:
            windows = data["partitions"]
            if not isinstance(windows, Sequence) or isinstance(windows, (str, bytes)):
                raise ValueError(
                    f"fault key 'partitions' must be a list of windows, "
                    f"got {windows!r}"
                )
            data["partitions"] = tuple(
                w if isinstance(w, PartitionWindow) else PartitionWindow.from_dict(w)
                for w in windows
            )
        return FaultSchedule(**data)  # type: ignore[arg-type]

    @staticmethod
    def from_json(text: str) -> "FaultSchedule":
        """Parse the spec-level canonical JSON spelling (``"{}"`` → no-op)."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault schedule is not valid JSON: {exc}") from None
        return FaultSchedule.from_dict(data)

    def with_(self, **changes) -> "FaultSchedule":
        """Return a copy with the given knobs replaced."""
        return replace(self, **changes)


class FaultInjector:
    """Runtime fault state for one run, driven by a :class:`FaultSchedule`.

    Constructed per run by the protocol adapter (never for a no-op schedule)
    and threaded through the :class:`~repro.net.kernel.EventKernel` into both
    schedulers, which call the hooks below.  All randomness comes from
    dedicated ``derive_rng(seed, "faults", ...)`` streams; the per-node churn
    draws and the class assignment iterate correct ids in sorted order, so a
    schedule is a pure function of ``(schedule, n, seed)``.
    """

    def __init__(self, schedule: FaultSchedule, n: int, seed: int = 0) -> None:
        self.schedule = schedule
        self.n = n
        self._rng = derive_rng(seed, "faults")
        self._class_rng = derive_rng(seed, "faults", "classes")
        self._down: set = set()
        #: last integer time boundary whose churn draws were made
        self._boundary = 0
        self._correct: Tuple[int, ...] = ()
        self._byzantine: frozenset = frozenset()
        self._slow: frozenset = frozenset()
        #: active/ pending partition cuts as (start, end, first-side-B id)
        self._partitions: Tuple[Tuple[float, float, int], ...] = tuple(
            (w.start, w.end, int(w.fraction * n)) for w in schedule.partitions
        )
        self._trace = None
        self.crashes = 0
        self.recoveries = 0
        self.dropped_loss = 0
        self.dropped_partition = 0
        self.dropped_down = 0

    # ------------------------------------------------------------------
    # wiring (called by the kernel at construction time)
    # ------------------------------------------------------------------
    def bind_population(self, correct_ids, byzantine_ids) -> None:
        """Attach the run's identity partition and draw the delay classes."""
        self._correct = tuple(sorted(correct_ids))
        self._byzantine = frozenset(byzantine_ids)
        schedule = self.schedule
        if schedule.slow_fraction > 0.0 and self._correct:
            count = round(schedule.slow_fraction * len(self._correct))
            self._slow = frozenset(self._class_rng.sample(self._correct, count))

    def bind_trace(self, trace) -> None:
        """Attach a :class:`~repro.trace.collector.TraceCollector` (optional)."""
        self._trace = trace

    # ------------------------------------------------------------------
    # churn (both schedulers drive this through integer time boundaries)
    # ------------------------------------------------------------------
    def advance_time(self, time: float) -> None:
        """Run the churn draws of every integer boundary reached by ``time``.

        The synchronous scheduler calls this once per round (rounds *are*
        the boundaries); the asynchronous one calls it with each event time,
        and the loop catches up on however many unit boundaries the event
        crossed — so churn has the same per-unit-time semantics under both
        schedulers.
        """
        schedule = self.schedule
        if schedule.churn_rate <= 0.0:
            return
        boundary = self._boundary
        while boundary + 1 <= time:
            boundary += 1
            if boundary >= schedule.churn_start:
                self._churn_step(boundary)
        self._boundary = boundary

    def _churn_step(self, boundary: int) -> None:
        """One boundary's crash/recovery draws, in sorted correct-id order."""
        schedule = self.schedule
        rng = self._rng
        down = self._down
        trace = self._trace
        for node in self._correct:
            if node in down:
                if rng.random() < schedule.recovery_rate:
                    down.discard(node)
                    self.recoveries += 1
                    if trace is not None:
                        trace.emit("fault_recovered", node=node, time=float(boundary))
            elif rng.random() < schedule.churn_rate:
                down.add(node)
                self.crashes += 1
                if trace is not None:
                    trace.emit("fault_crashed", node=node, time=float(boundary))

    def is_down(self, node_id: int) -> bool:
        """Whether ``node_id`` is currently crashed."""
        return node_id in self._down

    # ------------------------------------------------------------------
    # delivery filtering (the kernel / async event loop call per delivery)
    # ------------------------------------------------------------------
    def should_drop(self, sender: int, dest: int, time: float) -> bool:
        """Decide the fate of one delivery; counts (and traces) any drop.

        Check order is fixed — destination down, partition cut, random loss
        — and only the loss check consumes randomness, so enabling a
        partition does not shift the loss stream and vice versa.
        """
        if dest in self._down:
            self.dropped_down += 1
            if self._trace is not None:
                self._trace.emit("fault_dropped", sender=sender, dest=dest, reason="down")
            return True
        for start, end, cut in self._partitions:
            if start <= time < end and (sender < cut) != (dest < cut):
                self.dropped_partition += 1
                if self._trace is not None:
                    self._trace.emit(
                        "fault_dropped", sender=sender, dest=dest, reason="partition"
                    )
                return True
        loss = self.schedule.loss_rate
        if loss > 0.0 and self._rng.random() < loss:
            self.dropped_loss += 1
            if self._trace is not None:
                self._trace.emit("fault_dropped", sender=sender, dest=dest, reason="loss")
            return True
        return False

    # ------------------------------------------------------------------
    # delay classes (asynchronous scheduler only)
    # ------------------------------------------------------------------
    @property
    def has_delay_classes(self) -> bool:
        return self.schedule.has_delay_classes

    def delay_scale(self, sender: int) -> float:
        """Multiplier applied to ``sender``'s drawn delays (1.0 = untouched)."""
        if sender in self._slow:
            return self.schedule.slow_factor
        if sender in self._byzantine:
            return self.schedule.byzantine_factor
        return 1.0

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def extras(self) -> Dict[str, object]:
        """Injected-event counters for ``RunResult.extras`` (always JSON-safe)."""
        return {
            "fault_crashes": self.crashes,
            "fault_recoveries": self.recoveries,
            "fault_dropped_loss": self.dropped_loss,
            "fault_dropped_partition": self.dropped_partition,
            "fault_dropped_down": self.dropped_down,
            "fault_slow_nodes": len(self._slow),
        }


def injector_for_spec(spec) -> Optional[FaultInjector]:
    """Build the injector an :class:`~repro.experiments.plan.ExperimentSpec` asks for.

    A no-op schedule — the default ``"{}"`` *and* any all-defaults spelling
    such as an explicit ``{"loss_rate": 0.0}`` — returns ``None`` (the
    byte-identical fault-free path); everything else gets a fresh injector
    seeded from the spec.
    """
    schedule = FaultSchedule.from_json(getattr(spec, "faults", "{}"))
    if schedule.is_noop:
        return None
    return FaultInjector(schedule, n=spec.n, seed=spec.seed)
