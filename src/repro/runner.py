"""High-level experiment runners.

The examples, tests and benchmarks all drive the system through this module:
build a scenario, pick an adversary by name, run AER under the synchronous or
asynchronous scheduler, get a :class:`~repro.net.results.SimulationResult`
back.  Everything is a pure function of the explicit seed.
"""

from __future__ import annotations

from typing import Optional

# Importing the package registers every built-in strategy with the registry.
import repro.adversary  # noqa: F401
from repro.adversary.base import Adversary, AdversaryKnowledge
from repro.adversary.registry import ADVERSARIES, resolve_adversary
from repro.core.config import AERConfig, SamplerSuite
from repro.core.scenario import AERScenario, build_aer_nodes, make_scenario
from repro.net.asynchronous import AsynchronousSimulator, DelayPolicy
from repro.net.results import SimulationResult
from repro.net.sync import SynchronousSimulator

#: back-compat alias: the adversary registry's read-only mapping view.  New
#: strategies are added with ``@repro.adversary.register_adversary("name")``
#: rather than by mutating this dict; a factory may return ``None`` (the
#: failure-free run), which is why the value type is ``Optional[Adversary]``.
ADVERSARY_FACTORIES = ADVERSARIES.mapping


def make_adversary(
    name: str,
    scenario: AERScenario,
    config: AERConfig,
    samplers: SamplerSuite,
) -> Optional[Adversary]:
    """Instantiate an adversary strategy by registry name (``"none"`` → no adversary)."""
    knowledge = AdversaryKnowledge(config=config, samplers=samplers, scenario=scenario)
    return resolve_adversary(name, scenario.byzantine_ids, knowledge)


def run_aer(
    scenario: AERScenario,
    config: Optional[AERConfig] = None,
    adversary: Optional[Adversary] = None,
    adversary_name: Optional[str] = None,
    mode: str = "sync",
    rushing: bool = False,
    seed: int = 0,
    max_rounds: int = 64,
    delay_policy: Optional[DelayPolicy] = None,
    samplers: Optional[SamplerSuite] = None,
    trace=None,
    backend: str = "message",
    faults=None,
    vec_memory_mb: Optional[float] = None,
) -> SimulationResult:
    """Run AER on a scenario and return the simulation result.

    Parameters
    ----------
    scenario:
        The almost-everywhere input state (see :func:`repro.core.scenario.make_scenario`).
    config:
        Protocol configuration; defaults to :meth:`AERConfig.for_system`.
    adversary / adversary_name:
        Either an already-constructed adversary or the name of a registered
        strategy (``adversary`` wins if both are given).
    mode:
        ``"sync"`` (lock-step rounds) or ``"async"`` (event queue with
        adversarial delays).
    rushing:
        Synchronous mode only: whether the adversary sees the current round's
        correct-node messages before acting.
    trace:
        Optional :class:`~repro.trace.collector.TraceCollector`, threaded
        into the nodes' phase engines and the scheduler; ``None`` (default)
        is the zero-cost disabled path.
    backend:
        ``"message"`` (this per-message kernel, the oracle) or
        ``"vectorized"`` (the whole-round numpy engine of
        :mod:`repro.vec` — sync-only, non-rushing, untraced, adversary
        resolved by name).
    faults:
        Optional :class:`~repro.faults.FaultInjector`, threaded into the
        scheduler; ``None`` (default) is the zero-cost fault-free path.
    vec_memory_mb:
        Vectorized backend only: byte budget (in MB) for the engine's
        temporary working set — chunk sizes and the unpacked-table cache
        scale with it, the result bits never depend on it.  ``None`` uses
        the engine default.
    """
    if config is None:
        config = AERConfig.for_system(scenario.n)
    if backend == "vectorized":
        from repro.vec.engine import run_aer_vectorized

        if faults is not None:
            raise ValueError(
                "backend='vectorized' does not implement fault injection; "
                "use backend='message' for faulted runs"
            )
        if mode != "sync":
            raise ValueError("backend='vectorized' is synchronous only")
        if rushing:
            raise ValueError("backend='vectorized' does not implement rushing")
        if trace is not None:
            raise ValueError("backend='vectorized' does not implement tracing")
        if adversary is not None:
            raise ValueError(
                "backend='vectorized' resolves adversaries by name; pass "
                "adversary_name instead of a constructed adversary"
            )
        return run_aer_vectorized(
            scenario,
            config=config,
            adversary_name=adversary_name or "none",
            seed=seed,
            max_rounds=max_rounds,
            memory_mb=vec_memory_mb,
        )
    if backend != "message":
        raise ValueError(f"unknown backend {backend!r} (expected 'message' or 'vectorized')")
    if vec_memory_mb is not None:
        raise ValueError(
            "vec_memory_mb only applies to backend='vectorized'; the message "
            "kernel has no chunked working set to budget"
        )
    if samplers is None:
        samplers = config.shared_samplers()
    if adversary is None and adversary_name is not None:
        adversary = make_adversary(adversary_name, scenario, config, samplers)

    nodes = build_aer_nodes(scenario, config, samplers=samplers, trace=trace)
    if mode == "sync":
        # In non-eager mode the pull phase only starts at a fixed round, so the
        # scheduler must not mistake the idle rounds before it for quiescence.
        min_rounds = 0 if config.eager_pull else config.pull_start_round + 1
        simulator = SynchronousSimulator(
            nodes=nodes,
            n=scenario.n,
            adversary=adversary,
            seed=seed,
            rushing=rushing,
            max_rounds=max_rounds,
            min_rounds=min_rounds,
            size_model=config.size_model(),
            trace=trace,
            faults=faults,
        )
    elif mode == "async":
        simulator = AsynchronousSimulator(
            nodes=nodes,
            n=scenario.n,
            adversary=adversary,
            seed=seed,
            delay_policy=delay_policy,
            size_model=config.size_model(),
            trace=trace,
            faults=faults,
        )
    else:
        raise ValueError(f"unknown mode {mode!r} (expected 'sync' or 'async')")
    return simulator.run()


def run_aer_experiment(
    n: int,
    adversary_name: str = "none",
    mode: str = "sync",
    rushing: bool = False,
    seed: int = 0,
    t: Optional[int] = None,
    knowledge_fraction: float = 0.78,
    wrong_candidate_mode: str = "random",
    quorum_multiplier: float = 2.0,
    delay_policy: Optional[DelayPolicy] = None,
    max_rounds: int = 64,
    backend: str = "message",
    faults=None,
    vec_memory_mb: Optional[float] = None,
) -> SimulationResult:
    """One-call experiment: synthesise a scenario, pick an adversary, run AER.

    This is the entry point the benchmarks sweep over ``n``; every choice is
    derived deterministically from ``seed``.

    The defaults (``t = n/6`` corrupted nodes, 78% of all nodes correct and
    knowledgeable — i.e. essentially all correct nodes, which the paper's
    "all but a 1/4 fraction of the correct nodes know gstring" formulation
    allows) satisfy the protocol's assumptions with a comfortable margin at
    the laptop-scale ``n`` used in the experiments.  The asymptotic bound
    ``t < (1/3 − ε)n`` with knowledge barely above ``n/2`` requires quorums
    of ``c log n`` nodes for a much larger constant ``c`` than is practical
    at small ``n``; the stress benchmarks sweep these margins explicitly and
    EXPERIMENTS.md discusses the constants.
    """
    if t is None:
        t = max(1, n // 6)
    config = AERConfig.for_system(n, sampler_seed=seed, quorum_multiplier=quorum_multiplier)
    scenario = make_scenario(
        n,
        config=config,
        t=t,
        knowledge_fraction=knowledge_fraction,
        wrong_candidate_mode=wrong_candidate_mode,
        seed=seed,
    )
    if backend == "vectorized":
        return run_aer(
            scenario,
            config=config,
            adversary_name=adversary_name,
            mode=mode,
            rushing=rushing,
            seed=seed,
            max_rounds=max_rounds,
            backend=backend,
            faults=faults,
            vec_memory_mb=vec_memory_mb,
        )
    if vec_memory_mb is not None:
        raise ValueError(
            "vec_memory_mb only applies to backend='vectorized'; the message "
            "kernel has no chunked working set to budget"
        )
    samplers = config.shared_samplers()
    adversary = make_adversary(adversary_name, scenario, config, samplers)
    return run_aer(
        scenario,
        config=config,
        adversary=adversary,
        mode=mode,
        rushing=rushing,
        seed=seed,
        max_rounds=max_rounds,
        delay_policy=delay_policy,
        samplers=samplers,
        backend=backend,
        faults=faults,
    )
