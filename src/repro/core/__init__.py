"""The paper's primary contribution: the AER and BA protocols.

``AER`` (Section 3) solves the *almost-everywhere to everywhere* problem:
given that more than half of the nodes are correct and already know a common
string ``gstring``, it brings **every** correct node to know (and decide on)
``gstring`` w.h.p., with amortized communication ``O~(1)`` per node, in
``O(1)`` rounds against a synchronous non-rushing adversary and
``O(log n / log log n)`` time asynchronously.

``BA`` composes an almost-everywhere agreement substrate (in the style of
[KSSV06], provided by :mod:`repro.ae`) with AER, yielding the paper's
headline result: Byzantine Agreement with poly-logarithmic communication and
time.

Public surface
--------------
``AERConfig``      — all protocol parameters (quorum sizes, thresholds, seeds).
``AERScenario``    — an input instance: who is Byzantine, who knows ``gstring``.
``AERNode``        — the per-node protocol state machine (push + pull phases).
``build_aer_nodes``— construct the correct-node population for a scenario.
``BAConfig`` / ``BAProtocol`` — the composed Byzantine Agreement protocol.
"""

from repro.core.config import AERConfig, SamplerSuite
from repro.core.scenario import AERScenario, build_aer_nodes, make_scenario
from repro.core.aer import AERNode
from repro.core.ba import BAConfig, BAProtocol, BAResult

__all__ = [
    "AERConfig",
    "SamplerSuite",
    "AERScenario",
    "build_aer_nodes",
    "make_scenario",
    "AERNode",
    "BAConfig",
    "BAProtocol",
    "BAResult",
]
