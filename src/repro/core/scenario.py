"""Input instances for AER: who is Byzantine, who already knows ``gstring``.

The precondition of AER (Section 3.1) is an *almost-everywhere* state: more
than half of all nodes are correct **and** hold the same string ``gstring``
(equivalently, at least 3/4 of the correct nodes know it when
``t < (1/3 − ε)n``), the string is ``c log n`` bits long and mostly random.
A :class:`AERScenario` captures one concrete such state; in the full BA
pipeline it is produced by the almost-everywhere agreement substrate
(:mod:`repro.ae`), and in the AER-only experiments it is synthesised directly
by :func:`make_scenario`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.core.aer import AERNode
from repro.core.config import AERConfig, SamplerSuite
from repro.net.rng import derive_rng, random_bitstring


@dataclass(frozen=True)
class AERScenario:
    """A concrete almost-everywhere state handed to AER.

    Attributes
    ----------
    n:
        System size.
    gstring:
        The string that the knowledgeable nodes share and that every correct
        node should end up deciding.
    byzantine_ids:
        Identities controlled by the adversary (chosen non-adaptively).
    candidates:
        Initial candidate string ``s_x`` of every *correct* node.
    """

    n: int
    gstring: str
    byzantine_ids: FrozenSet[int]
    candidates: Dict[int, str]

    @property
    def correct_ids(self) -> List[int]:
        """Identities of the correct nodes, in increasing order."""
        return sorted(self.candidates)

    @property
    def knowledgeable_ids(self) -> List[int]:
        """Correct nodes whose initial candidate already equals ``gstring``."""
        return [i for i, s in sorted(self.candidates.items()) if s == self.gstring]

    @property
    def knowledge_fraction_of_all(self) -> float:
        """Fraction of *all* nodes that are correct and know ``gstring``."""
        return len(self.knowledgeable_ids) / self.n

    def validate(self) -> None:
        """Raise ``ValueError`` if the scenario violates AER's precondition."""
        if set(self.candidates) & set(self.byzantine_ids):
            raise ValueError("a node cannot be both correct and Byzantine")
        if len(self.candidates) + len(self.byzantine_ids) != self.n:
            raise ValueError("candidates and byzantine_ids must partition [0, n)")
        if self.knowledge_fraction_of_all <= 0.5:
            raise ValueError(
                "AER requires more than half of all nodes to be correct and know gstring "
                f"(got {self.knowledge_fraction_of_all:.2f})"
            )


def make_scenario(
    n: int,
    config: Optional[AERConfig] = None,
    t: Optional[int] = None,
    knowledge_fraction: float = 0.56,
    wrong_candidate_mode: str = "random",
    byzantine_ids: Optional[Sequence[int]] = None,
    gstring: Optional[str] = None,
    seed: int = 0,
) -> AERScenario:
    """Synthesise an almost-everywhere state for a system of ``n`` nodes.

    Parameters
    ----------
    config:
        Protocol configuration (used for the string length); defaults to
        :meth:`AERConfig.for_system`.
    t:
        Number of Byzantine nodes; defaults to ``⌊n/4⌋`` (well inside the
        ``t < (1/3 − ε)n`` bound so the precondition is satisfiable even at
        small ``n``).  When ``byzantine_ids`` is given and ``t`` is omitted,
        ``t`` is derived from the explicit corrupt set; giving both with
        mismatching sizes is an error.
    knowledge_fraction:
        Fraction of *all* nodes that are correct and start with ``gstring``;
        must exceed 1/2.
    wrong_candidate_mode:
        What the remaining correct nodes hold initially — ``"random"`` (each
        a fresh random string), ``"default"`` (all the all-zeros string) or
        ``"common_wrong"`` (all the same adversarially useful wrong string,
        the hardest case for Lemma 4).
    byzantine_ids:
        Explicit corrupt set; drawn uniformly at random when omitted (the
        adversary is non-adaptive, so a fixed-before-the-run set is faithful).
    gstring:
        Explicit global string; a fresh random ``c log n``-bit string when
        omitted (Lemma 5 requires most of its bits to be random).
    seed:
        Seed for all the random choices above.
    """
    if config is None:
        config = AERConfig.for_system(n)
    rng = derive_rng(seed, "scenario", n)

    if byzantine_ids is None:
        if t is None:
            t = n // 4
        if t >= n:
            raise ValueError("t must be smaller than n")
        byz = frozenset(rng.sample(range(n), t))
    else:
        byz = frozenset(byzantine_ids)
        if t is None:
            # An explicit corrupt set fully determines t; deriving it here
            # (instead of silently defaulting to n // 4) keeps the size checks
            # below honest.
            t = len(byz)
        elif len(byz) != t:
            raise ValueError(
                f"explicit byzantine_ids ({len(byz)} nodes) conflict with explicit t={t}"
            )
        if t >= n:
            raise ValueError("t must be smaller than n")
    correct = [i for i in range(n) if i not in byz]

    if gstring is None:
        gstring = random_bitstring(rng, config.string_length)

    knowledgeable_target = int(math.floor(knowledge_fraction * n)) + 1
    knowledgeable_target = max(knowledgeable_target, n // 2 + 1)
    if knowledgeable_target > len(correct):
        raise ValueError(
            f"cannot make {knowledgeable_target} of {len(correct)} correct nodes "
            "knowledgeable; lower t or the knowledge fraction"
        )
    knowledgeable = set(rng.sample(correct, knowledgeable_target))

    wrong_common = random_bitstring(rng, config.string_length)
    candidates: Dict[int, str] = {}
    for node_id in correct:
        if node_id in knowledgeable:
            candidates[node_id] = gstring
        elif wrong_candidate_mode == "default":
            candidates[node_id] = "0" * config.string_length
        elif wrong_candidate_mode == "common_wrong":
            candidates[node_id] = wrong_common
        elif wrong_candidate_mode == "random":
            candidates[node_id] = random_bitstring(rng, config.string_length)
        else:
            raise ValueError(f"unknown wrong_candidate_mode {wrong_candidate_mode!r}")

    scenario = AERScenario(
        n=n, gstring=gstring, byzantine_ids=byz, candidates=candidates
    )
    scenario.validate()
    return scenario


def build_aer_nodes(
    scenario: AERScenario,
    config: AERConfig,
    samplers: Optional[SamplerSuite] = None,
    trace=None,
) -> List[AERNode]:
    """Construct the correct-node population for a scenario.

    All nodes share the same :class:`~repro.core.config.SamplerSuite`, built
    from the configuration when not supplied explicitly, and the same
    optional :class:`~repro.trace.collector.TraceCollector`.
    """
    if samplers is None:
        samplers = config.shared_samplers()
    # Per-run scratch (e.g. the pull engines' shared Fw1 memo) starts fresh:
    # cached suites keep their *tables* warm across runs, but per-message
    # memos reference run-local message objects and would otherwise
    # accumulate garbage in the process-local suite cache.
    samplers.pull.shared_scratch["fw1_edge_memo"] = {}
    return [
        AERNode(
            node_id=node_id,
            config=config,
            samplers=samplers,
            initial_candidate=scenario.candidates[node_id],
            trace=trace,
        )
        for node_id in scenario.correct_ids
    ]
