"""BA — the composed Byzantine Agreement protocol (Figure 1b, column "BA").

The paper's headline protocol is a two-stage composition:

1. an **almost-everywhere agreement** stage (along the lines of [KSSV06],
   provided by :mod:`repro.ae`) after which most correct nodes share a
   common, mostly random string ``gstring`` at poly-log per-node cost;
2. the **AER** stage (Section 3), which propagates ``gstring`` from almost
   everywhere to everywhere, again at poly-log amortized cost.

:class:`BAProtocol` performs exactly this composition: it runs the
almost-everywhere phase under the synchronous scheduler, converts its outcome
into an :class:`~repro.core.scenario.AERScenario`, runs AER (synchronously or
asynchronously, with an optional adversary in each phase), and reports the
combined complexity figures that the Figure 1b benchmark prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.config import AERConfig
from repro.core.scenario import AERScenario, build_aer_nodes
from repro.net.asynchronous import AsynchronousSimulator
from repro.net.results import SimulationResult
from repro.net.rng import derive_rng
from repro.net.sync import SynchronousSimulator


@dataclass(frozen=True)
class BAConfig:
    """Parameters of the composed protocol.

    ``ae_committee_multiplier`` / ``quorum_multiplier`` feed the sub-protocol
    configurations; ``t`` is the number of corrupted nodes (``⌊n/6⌋`` by
    default — see the note on finite-``n`` constants in ``run_aer_experiment``
    and EXPERIMENTS.md; the bound tolerated asymptotically is ``(1/3 − ε)n``).
    """

    n: int
    t: Optional[int] = None
    seed: int = 0
    aer_mode: str = "sync"          #: ``"sync"`` or ``"async"`` for the AER stage
    rushing: bool = False           #: rushing adversary in the synchronous AER stage
    quorum_multiplier: float = 2.0
    ae_committee_multiplier: float = 2.0
    max_rounds: int = 64

    @property
    def byzantine_count(self) -> int:
        """Number of corrupted nodes."""
        return self.t if self.t is not None else self.n // 6


@dataclass(frozen=True)
class BAResult:
    """Outcome of one composed run.

    The combined complexity figures add the two stages together; per-node
    loads are added node-wise (both stages run on the same identities), so
    ``max_node_bits`` is exact.
    """

    gstring: str
    scenario: AERScenario
    ae_result: SimulationResult
    aer_result: SimulationResult

    @property
    def agreement_reached(self) -> bool:
        """Every correct node decided, and on the same value."""
        return self.aer_result.agreement_reached

    @property
    def decided_value(self) -> Optional[object]:
        """The common decision (``None`` if agreement failed)."""
        return self.aer_result.agreement_value()

    @property
    def knowledge_fraction_after_ae(self) -> float:
        """Fraction of all nodes that were correct and knew ``gstring`` after stage 1."""
        return self.scenario.knowledge_fraction_of_all

    @property
    def total_bits(self) -> int:
        """Total bits exchanged across both stages."""
        return self.ae_result.metrics.total_bits + self.aer_result.metrics.total_bits

    @property
    def amortized_bits(self) -> float:
        """Total bits divided by ``n`` — the paper's amortized communication measure."""
        return self.total_bits / self.ae_result.n

    @property
    def total_rounds(self) -> float:
        """Rounds of stage 1 plus rounds (or normalized span) of stage 2."""
        stage1 = self.ae_result.rounds or 0
        stage2 = (
            self.aer_result.rounds
            if self.aer_result.rounds is not None
            else (self.aer_result.span or 0.0)
        )
        return stage1 + stage2

    @property
    def max_node_bits(self) -> int:
        """Worst per-node load (sent + received bits) summed over both stages."""
        combined: Dict[int, int] = dict(self.ae_result.metrics.per_node_bits)
        for node_id, bits in self.aer_result.metrics.per_node_bits.items():
            combined[node_id] = combined.get(node_id, 0) + bits
        return max(combined.values()) if combined else 0

    def row(self) -> Dict[str, float]:
        """Flat dict used by the Figure 1b benchmark table."""
        return {
            "n": self.ae_result.n,
            "agreement": int(self.agreement_reached),
            "knowledge_after_ae": round(self.knowledge_fraction_after_ae, 3),
            "total_rounds": round(self.total_rounds, 2),
            "amortized_bits": round(self.amortized_bits, 1),
            "max_node_bits": self.max_node_bits,
        }


class BAProtocol:
    """Orchestrates the two-stage composition.

    Parameters
    ----------
    config:
        The composed-protocol parameters.
    byzantine_ids:
        Explicit corrupt set; drawn uniformly at random when omitted.
    ae_adversary_factory:
        Optional ``f(byzantine_ids, ae_config, tree) -> adversary`` for stage 1.
    aer_adversary_factory:
        Optional ``f(scenario, aer_config, samplers) -> adversary`` for stage 2.
    trace:
        Optional :class:`~repro.trace.collector.TraceCollector` shared by
        both stages: kernel-level probes fire in stage 1 and stage 2, and
        the AER engine probes in stage 2.
    """

    def __init__(
        self,
        config: BAConfig,
        byzantine_ids=None,
        ae_adversary_factory: Optional[Callable] = None,
        aer_adversary_factory: Optional[Callable] = None,
        trace=None,
    ) -> None:
        self.config = config
        self.ae_adversary_factory = ae_adversary_factory
        self.aer_adversary_factory = aer_adversary_factory
        self.trace = trace
        rng = derive_rng(config.seed, "ba", config.n)
        if byzantine_ids is None:
            self.byzantine_ids = frozenset(
                rng.sample(range(config.n), config.byzantine_count)
            )
        else:
            self.byzantine_ids = frozenset(byzantine_ids)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self) -> BAResult:
        """Run both stages and return the composed result."""
        # Imported lazily to avoid a circular import between repro.core and repro.ae.
        from repro.ae.committees import CommitteeTree
        from repro.ae.config import AEConfig
        from repro.ae.protocol import FINALIZE_ROUND, build_ae_nodes, scenario_from_ae_run

        config = self.config
        aer_config = AERConfig.for_system(
            config.n,
            sampler_seed=config.seed,
            quorum_multiplier=config.quorum_multiplier,
        )
        ae_defaults = AEConfig.for_system(
            config.n,
            seed=config.seed,
            committee_multiplier=config.ae_committee_multiplier,
        )
        # Stage 1 must generate strings of exactly the length AER expects.
        ae_config = AEConfig(
            n=ae_defaults.n,
            committee_size=ae_defaults.committee_size,
            string_length=aer_config.string_length,
            seed=ae_defaults.seed,
        )

        # ---- stage 1: almost-everywhere agreement -------------------------
        tree = CommitteeTree(ae_config)
        ae_nodes = build_ae_nodes(ae_config, self.byzantine_ids, tree=tree)
        ae_adversary = None
        if self.ae_adversary_factory is not None:
            ae_adversary = self.ae_adversary_factory(self.byzantine_ids, ae_config, tree)
        ae_sim = SynchronousSimulator(
            nodes=ae_nodes,
            n=config.n,
            adversary=ae_adversary,
            seed=config.seed,
            rushing=config.rushing,
            max_rounds=config.max_rounds,
            min_rounds=FINALIZE_ROUND + 1,
            size_model=aer_config.size_model(),
            trace=self.trace,
        )
        ae_result = ae_sim.run()
        scenario = scenario_from_ae_run(
            ae_nodes, config.n, self.byzantine_ids, aer_config.string_length
        )

        # ---- stage 2: AER ---------------------------------------------------
        samplers = aer_config.shared_samplers()
        if self.trace is not None:
            self.trace.stage_boundary()
            self.trace.mark_string("gstring", scenario.gstring)
        aer_nodes = build_aer_nodes(
            scenario, aer_config, samplers=samplers, trace=self.trace
        )
        aer_adversary = None
        if self.aer_adversary_factory is not None:
            aer_adversary = self.aer_adversary_factory(scenario, aer_config, samplers)

        if config.aer_mode == "sync":
            aer_sim = SynchronousSimulator(
                nodes=aer_nodes,
                n=config.n,
                adversary=aer_adversary,
                seed=config.seed + 1,
                rushing=config.rushing,
                max_rounds=config.max_rounds,
                size_model=aer_config.size_model(),
                trace=self.trace,
            )
        elif config.aer_mode == "async":
            aer_sim = AsynchronousSimulator(
                nodes=aer_nodes,
                n=config.n,
                adversary=aer_adversary,
                seed=config.seed + 1,
                size_model=aer_config.size_model(),
                trace=self.trace,
            )
        else:
            raise ValueError(f"unknown aer_mode {config.aer_mode!r}")
        aer_result = aer_sim.run()

        return BAResult(
            gstring=scenario.gstring,
            scenario=scenario,
            ae_result=ae_result,
            aer_result=aer_result,
        )
