"""Pull phase of AER (Section 3.1.2, Algorithms 1-3).

To verify a candidate ``s ∈ L_x``, the poller ``x`` draws a private random
label ``r`` and addresses two groups simultaneously:

* the *poll list* ``J(x, r)`` — the nodes whose answers are authoritative;
* its *pull quorum* ``H(s, x)`` — proxies that vouch for the request and
  forward it towards the poll list, filtering floods on the way.

The request travels ``x → H(s, x) → H(s, w) → w`` for each ``w ∈ J(x, r)``
(messages ``Pull``, ``Fw1``, ``Fw2``), and each hop forwards only when a
*majority of the previous hop* relayed the request **and** the candidate
matches the forwarder's own believed string.  A poll-list member answers only
within its ``log² n`` answer budget (or after it has itself decided), which
is the filter that bounds the damage of the overload attack analysed in
Lemma 6.  The poller decides ``s`` when a majority of ``J(x, r)`` answered.

Implementation notes (documented deviations from the pseudocode, both
strictly liveness-preserving and safety-neutral — see DESIGN.md §5):

* forwarding state is kept per ``(poller, candidate, poll-list member)``
  rather than per ``(poller, candidate)``, so a node that happens to sit in
  the pull quorums of two different poll-list members serves both;
* majority evidence arriving *before* the node believes the candidate is
  recorded but not acted upon; when the node later decides (and therefore
  updates its believed string, as the pseudocode's "``s_w`` was changed
  accordingly" prescribes) the recorded evidence is re-examined.  This is the
  "Wait for has_decided" branch of Algorithm 3 generalised to every hop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Set, Tuple

from repro.core.messages import (
    AnswerMessage,
    Fw1Message,
    Fw2Message,
    PollMessage,
    PullMessage,
)
from repro.samplers.hash_sampler import QuorumSampler
from repro.samplers.poll_sampler import PollSampler


class PullOwner(Protocol):
    """What the pull engine needs from the node that owns it."""

    @property
    def node_id(self) -> int:
        """The owning node's identity."""

    @property
    def believed(self) -> str:
        """The string the node currently believes to be ``gstring``."""

    @property
    def has_decided(self) -> bool:
        """Whether the node has already decided."""

    def send(self, dest: int, message) -> None:
        """Send a message over the authenticated channel."""

    def send_many(self, dests, message) -> None:
        """Send the same message to every node in ``dests`` (batched multicast)."""

    def decide(self, value: object) -> None:
        """Irrevocably decide on ``value``."""

    def random_label(self, label_space: int) -> int:
        """Draw a fresh private random label."""


class PullEngine:
    """Per-node state of the pull phase (poller, proxy and poll-list roles combined)."""

    def __init__(
        self,
        owner: PullOwner,
        pull_sampler: QuorumSampler,
        poll_sampler: PollSampler,
        answer_budget: int,
        trace=None,
    ) -> None:
        self.owner = owner
        self.pull_sampler = pull_sampler
        self.poll_sampler = poll_sampler
        self.answer_budget = answer_budget
        #: optional TraceCollector for the poll/answer/budget probes
        self.trace = trace
        # Shared across every engine bound to this sampler suite: the sender
        # and poll-list membership checks of an Fw1 message are pure functions
        # of the message and its sender, so the d recipients of one multicast
        # memoise the verdict once instead of recomputing it d times.  Keyed
        # by object identity (with a strong reference, so ids cannot be
        # recycled) plus the authenticated sender.
        self._fw1_shared_check = pull_sampler.shared_scratch.setdefault(
            "fw1_precheck", [None, -1, False]
        )

        # ---- poller state (Algorithm 1) ------------------------------------
        #: candidates for which a poll has been launched, with their labels
        self.labels: Dict[str, int] = {}
        #: per-candidate set of poll-list members that answered
        self._answers: Dict[str, Set[int]] = {}

        # ---- proxy state (Algorithm 2) -------------------------------------
        #: pull requests already served, to prevent re-forwarding floods
        self._served_pulls: Set[Tuple[int, str, int]] = set()
        #: pull requests whose candidate we do not (yet) believe
        self._pending_pulls: List[Tuple[int, str, int]] = []
        #: votes per (origin, candidate, poll member): members of H(s, origin) that sent Fw1
        self._fw1_votes: Dict[Tuple[int, str, int], Set[int]] = {}
        #: labels attached to fw1 traffic, needed to re-examine after deciding
        self._fw1_labels: Dict[Tuple[int, str, int], int] = {}
        #: (origin, candidate, poll member) triples already forwarded with Fw2
        self._fw2_sent: Set[Tuple[int, str, int]] = set()

        # ---- poll-list state (Algorithm 3) ----------------------------------
        #: votes per (origin, candidate): members of H(s, self) that sent Fw2
        self._fw2_votes: Dict[Tuple[int, str], Set[int]] = {}
        #: poll requests received, mapping (origin, candidate) -> label
        self._polled: Dict[Tuple[int, str], int] = {}
        #: labels observed in Fw2 traffic for (origin, candidate)
        self._fw2_labels: Dict[Tuple[int, str], int] = {}
        #: (origin, candidate) pairs already answered
        self._answered: Set[Tuple[int, str]] = set()
        #: answers deferred because the budget was exhausted before deciding
        self._deferred_answers: List[Tuple[int, str]] = []
        #: number of answers sent while undecided (counted against the budget)
        self.answers_sent: int = 0

    # ------------------------------------------------------------------
    # Algorithm 1: the poller
    # ------------------------------------------------------------------
    def start_poll(self, candidate: str) -> None:
        """Launch the verification of ``candidate`` (idempotent)."""
        if candidate in self.labels or self.owner.has_decided:
            return
        label = self.owner.random_label(self.poll_sampler.label_space)
        self.labels[candidate] = label
        self._answers.setdefault(candidate, set())

        poll_list = self.poll_sampler.poll_list(self.owner.node_id, label)
        quorum = self.pull_sampler.quorum(candidate, self.owner.node_id)
        if self.trace is not None:
            self.trace.poll_started(self.owner.node_id, len(poll_list), len(quorum))
            self.trace.quorum_contacted(self.owner.node_id, len(quorum))
        self.owner.send_many(poll_list, PollMessage(candidate=candidate, label=label))
        self.owner.send_many(quorum, PullMessage(candidate=candidate, label=label))

    def on_answer(self, sender: int, message: AnswerMessage) -> None:
        """Count an ``Answer`` towards the decision threshold (Algorithm 1)."""
        candidate = message.candidate
        label = self.labels.get(candidate)
        if label is None or self.owner.has_decided:
            return
        poll_entry = self.poll_sampler.entry(self.owner.node_id, label)
        if sender not in poll_entry.member_set:
            return
        answers = self._answers.setdefault(candidate, set())
        if sender in answers:
            return  # each poll-list member is counted at most once
        answers.add(sender)
        if len(answers) >= poll_entry.threshold:
            self.owner.decide(candidate)

    # ------------------------------------------------------------------
    # Algorithm 2: the proxy hops
    # ------------------------------------------------------------------
    def on_pull(self, sender: int, message: PullMessage) -> None:
        """A poller asked us (as a member of ``H(s, sender)``) to vouch for its request."""
        candidate, label = message.candidate, message.label
        key = (sender, candidate, label)
        if key in self._served_pulls:
            return  # each pull request is served at most once (anti-flooding)
        if not self.pull_sampler.contains(candidate, sender, self.owner.node_id):
            return
        if candidate != self.owner.believed:
            # Remember the request; if we later come to believe this candidate
            # (by deciding on it) we will serve it then.
            self._pending_pulls.append(key)
            return
        self._serve_pull(sender, candidate, label)

    def _serve_pull(self, origin: int, candidate: str, label: int) -> None:
        key = (origin, candidate, label)
        if key in self._served_pulls:
            return
        self._served_pulls.add(key)
        pull_table = self.pull_sampler.table(candidate)
        for target in self.poll_sampler.poll_list(origin, label):
            fw1 = Fw1Message(origin=origin, candidate=candidate, label=label, target=target)
            self.owner.send_many(pull_table.quorum(target), fw1)

    def on_fw1(self, sender: int, message: Fw1Message) -> None:
        """First forwarding hop reached us (as a member of ``H(s, w)``)."""
        origin, candidate = message.origin, message.candidate
        label, target = message.label, message.target
        pull_table = self.pull_sampler.table(candidate)
        if not pull_table.contains(target, self.owner.node_id):
            return
        # Sender/poll-list legitimacy is receiver-independent; consult the
        # multicast-wide memo before recomputing (see __init__).
        shared = self._fw1_shared_check
        if shared[0] is message and shared[1] == sender:
            if not shared[2]:
                return
        else:
            legitimate = pull_table.contains(origin, sender) and self.poll_sampler.contains(
                origin, label, target
            )
            shared[0] = message
            shared[1] = sender
            shared[2] = legitimate
            if not legitimate:
                return

        key = (origin, candidate, target)
        votes = self._fw1_votes.get(key)
        if votes is None:
            votes = set()
            self._fw1_votes[key] = votes
        votes.add(sender)
        self._fw1_labels[key] = label
        if candidate != self.owner.believed:
            return  # evidence recorded; acted upon if we ever believe the candidate
        self._maybe_forward_fw2(origin, candidate, target, pull_table, votes)

    def _maybe_forward_fw2(
        self, origin: int, candidate: str, target: int, pull_table=None, votes=None
    ) -> None:
        key = (origin, candidate, target)
        if key in self._fw2_sent:
            return
        if votes is None:
            votes = self._fw1_votes.get(key)
            if votes is None:
                return  # no Fw1 evidence recorded for this key yet
        if pull_table is None:
            pull_table = self.pull_sampler.table(candidate)
        if len(votes) >= pull_table.threshold(origin):
            label = self._fw1_labels[key]
            self._fw2_sent.add(key)
            self.owner.send(
                target, Fw2Message(origin=origin, candidate=candidate, label=label)
            )

    # ------------------------------------------------------------------
    # Algorithm 3: the poll-list member
    # ------------------------------------------------------------------
    def on_fw2(self, sender: int, message: Fw2Message) -> None:
        """Second forwarding hop reached us (as a member of ``J(origin, label)``)."""
        origin, candidate, label = message.origin, message.candidate, message.label
        if not self.poll_sampler.contains(origin, label, self.owner.node_id):
            return
        if not self.pull_sampler.contains(candidate, self.owner.node_id, sender):
            return

        key = (origin, candidate)
        votes = self._fw2_votes.setdefault(key, set())
        votes.add(sender)
        self._fw2_labels[key] = label
        if candidate != self.owner.believed:
            return  # recorded; re-examined after a decision updates the belief
        self._maybe_answer(origin, candidate)

    def on_poll(self, sender: int, message: PollMessage) -> None:
        """The poller itself asked us directly (the ``Poll`` branch of Algorithm 3)."""
        candidate, label = message.candidate, message.label
        if not self.poll_sampler.contains(sender, label, self.owner.node_id):
            return
        key = (sender, candidate)
        self._polled[key] = label
        # "Necessary in the asynchronous case": the Fw2 majority may already be there.
        if candidate == self.owner.believed:
            self._maybe_answer(sender, candidate)

    def _maybe_answer(self, origin: int, candidate: str) -> None:
        key = (origin, candidate)
        if key in self._answered or key not in self._polled:
            return
        votes = self._fw2_votes.get(key, set())
        threshold = self.pull_sampler.table(candidate).threshold(self.owner.node_id)
        if len(votes) < threshold:
            return
        if not self.owner.has_decided and self.answers_sent >= self.answer_budget:
            # Algorithm 3: "if Count > log² n: wait for has_decided".
            self._deferred_answers.append(key)
            if self.trace is not None:
                self.trace.budget_exhausted(self.owner.node_id)
            return
        self._answered.add(key)
        if not self.owner.has_decided:
            self.answers_sent += 1
        if self.trace is not None:
            self.trace.poll_answered(self.owner.node_id, origin)
        self.owner.send(origin, AnswerMessage(candidate=candidate))

    # ------------------------------------------------------------------
    # decision hook
    # ------------------------------------------------------------------
    def on_decided(self, value: str) -> None:
        """The owning node decided ``value``: flush work that was waiting on the belief.

        This implements both the "wait for has_decided" branch of Algorithm 3
        and the pseudocode's premise that a decided node has updated ``s_w``
        and therefore now participates in the propagation of ``gstring``.
        """
        # Serve pull requests for the value we now believe.
        pending, self._pending_pulls = self._pending_pulls, []
        for origin, candidate, label in pending:
            if candidate == value:
                self._serve_pull(origin, candidate, label)

        # Re-examine first-hop forwarding evidence.
        for origin, candidate, target in list(self._fw1_votes):
            if candidate == value:
                self._maybe_forward_fw2(origin, candidate, target)

        # Re-examine answering evidence, including previously deferred answers.
        deferred, self._deferred_answers = self._deferred_answers, []
        for origin, candidate in deferred:
            if candidate == value:
                self._maybe_answer(origin, candidate)
        for origin, candidate in list(self._fw2_votes):
            if candidate == value:
                self._maybe_answer(origin, candidate)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def answers_for(self, candidate: str) -> int:
        """Number of distinct poll-list members that answered ``candidate`` so far."""
        return len(self._answers.get(candidate, set()))

    @property
    def polls_launched(self) -> int:
        """Number of candidates this node has started verifying."""
        return len(self.labels)
