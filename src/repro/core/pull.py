"""Pull phase of AER (Section 3.1.2, Algorithms 1-3).

To verify a candidate ``s ∈ L_x``, the poller ``x`` draws a private random
label ``r`` and addresses two groups simultaneously:

* the *poll list* ``J(x, r)`` — the nodes whose answers are authoritative;
* its *pull quorum* ``H(s, x)`` — proxies that vouch for the request and
  forward it towards the poll list, filtering floods on the way.

The request travels ``x → H(s, x) → H(s, w) → w`` for each ``w ∈ J(x, r)``
(messages ``Pull``, ``Fw1``, ``Fw2``), and each hop forwards only when a
*majority of the previous hop* relayed the request **and** the candidate
matches the forwarder's own believed string.  A poll-list member answers only
within its ``log² n`` answer budget (or after it has itself decided), which
is the filter that bounds the damage of the overload attack analysed in
Lemma 6.  The poller decides ``s`` when a majority of ``J(x, r)`` answered.

Implementation notes (documented deviations from the pseudocode, both
strictly liveness-preserving and safety-neutral — see DESIGN.md §5):

* forwarding state is kept per ``(poller, candidate, poll-list member)``
  rather than per ``(poller, candidate)``, so a node that happens to sit in
  the pull quorums of two different poll-list members serves both;
* majority evidence arriving *before* the node believes the candidate is
  recorded but not acted upon; when the node later decides (and therefore
  updates its believed string, as the pseudocode's "``s_w`` was changed
  accordingly" prescribes) the recorded evidence is re-examined.  This is the
  "Wait for has_decided" branch of Algorithm 3 generalised to every hop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Set, Tuple

from repro.core.messages import (
    AnswerMessage,
    Fw1Message,
    Fw2Message,
    PollMessage,
    PullMessage,
)
from repro.samplers.hash_sampler import QuorumSampler
from repro.samplers.poll_sampler import PollSampler

#: safety bound on the shared per-message Fw1 edge memo; overflow clears the
#: memo (a pure cache of sampler facts — only recomputation is lost)
_EDGE_MEMO_LIMIT = 1 << 17


class PullOwner(Protocol):
    """What the pull engine needs from the node that owns it."""

    @property
    def node_id(self) -> int:
        """The owning node's identity."""

    @property
    def believed(self) -> str:
        """The string the node currently believes to be ``gstring``."""

    @property
    def has_decided(self) -> bool:
        """Whether the node has already decided."""

    def send(self, dest: int, message) -> None:
        """Send a message over the authenticated channel."""

    def send_many(self, dests, message) -> None:
        """Send the same message to every node in ``dests`` (batched multicast)."""

    def decide(self, value: object) -> None:
        """Irrevocably decide on ``value``."""

    def random_label(self, label_space: int) -> int:
        """Draw a fresh private random label."""


class PullEngine:
    """Per-node state of the pull phase (poller, proxy and poll-list roles combined)."""

    def __init__(
        self,
        owner: PullOwner,
        pull_sampler: QuorumSampler,
        poll_sampler: PollSampler,
        answer_budget: int,
        trace=None,
    ) -> None:
        self.owner = owner
        self.pull_sampler = pull_sampler
        self.poll_sampler = poll_sampler
        self.answer_budget = answer_budget
        #: optional TraceCollector for the poll/answer/budget probes
        self.trace = trace
        #: the owning node's identity, cached off the property chain — read
        #: once per delivered message on the hot paths
        self._node_id = owner.node_id
        # Shared across every engine bound to this sampler suite: whether an
        # Fw1 message's (origin, label, target) triple names a real poll-list
        # edge is a pure function of the message alone, so the d² recipients
        # of the d copies of one Fw1 share the verdict through this memo.  It
        # is keyed by object identity (entries hold a strong reference to
        # their message, so an id can never be recycled while its entry
        # lives) — a plain int lookup per delivery, robust to the arbitrary
        # delivery interleavings of the asynchronous scheduler, and exact
        # regardless of payload interning (a non-interned duplicate simply
        # misses and recomputes the same pure fact).
        self._fw1_edge_memo: Dict[int, tuple] = pull_sampler.shared_scratch.setdefault(
            "fw1_edge_memo", {}
        )

        # ---- poller state (Algorithm 1) ------------------------------------
        #: candidates for which a poll has been launched, with their labels
        self.labels: Dict[str, int] = {}
        #: per-candidate set of poll-list members that answered
        self._answers: Dict[str, Set[int]] = {}

        # ---- proxy state (Algorithm 2) -------------------------------------
        #: pull requests already served, to prevent re-forwarding floods
        self._served_pulls: Set[Tuple[int, str, int]] = set()
        #: pull requests whose candidate we do not (yet) believe
        self._pending_pulls: List[Tuple[int, str, int]] = []
        #: consolidated first-hop state per (origin, candidate, poll member):
        #: ``[votes, latest label, fw2 sent, sender quorum set, threshold]``
        #: — one dict lookup per Fw1 where three (votes/labels/sent) plus
        #: two sampler-table queries used to be
        self._fw1_state: Dict[Tuple[int, str, int], list] = {}

        # ---- poll-list state (Algorithm 3) ----------------------------------
        #: votes per (origin, candidate): members of H(s, self) that sent Fw2
        self._fw2_votes: Dict[Tuple[int, str], Set[int]] = {}
        #: poll requests received, mapping (origin, candidate) -> label
        self._polled: Dict[Tuple[int, str], int] = {}
        #: labels observed in Fw2 traffic for (origin, candidate)
        self._fw2_labels: Dict[Tuple[int, str], int] = {}
        #: (origin, candidate) pairs already answered
        self._answered: Set[Tuple[int, str]] = set()
        #: answers deferred because the budget was exhausted before deciding
        self._deferred_answers: List[Tuple[int, str]] = []
        #: number of answers sent while undecided (counted against the budget)
        self.answers_sent: int = 0

    # ------------------------------------------------------------------
    # Algorithm 1: the poller
    # ------------------------------------------------------------------
    def start_poll(self, candidate: str) -> None:
        """Launch the verification of ``candidate`` (idempotent)."""
        if candidate in self.labels or self.owner.has_decided:
            return
        label = self.owner.random_label(self.poll_sampler.label_space)
        self.labels[candidate] = label
        self._answers.setdefault(candidate, set())

        poll_list = self.poll_sampler.poll_list(self.owner.node_id, label)
        quorum = self.pull_sampler.quorum(candidate, self.owner.node_id)
        if self.trace is not None:
            self.trace.poll_started(self.owner.node_id, len(poll_list), len(quorum))
            self.trace.quorum_contacted(self.owner.node_id, len(quorum))
        self.owner.send_many(poll_list, PollMessage(candidate=candidate, label=label))
        self.owner.send_many(quorum, PullMessage(candidate=candidate, label=label))

    def on_answer(self, sender: int, message: AnswerMessage) -> None:
        """Count an ``Answer`` towards the decision threshold (Algorithm 1)."""
        candidate = message.candidate
        label = self.labels.get(candidate)
        if label is None or self.owner.has_decided:
            return
        poll_entry = self.poll_sampler.entry(self._node_id, label)
        if sender not in poll_entry.member_set:
            return
        answers = self._answers.setdefault(candidate, set())
        if sender in answers:
            return  # each poll-list member is counted at most once
        answers.add(sender)
        if len(answers) >= poll_entry.threshold:
            self.owner.decide(candidate)

    # ------------------------------------------------------------------
    # Algorithm 2: the proxy hops
    # ------------------------------------------------------------------
    def on_pull(self, sender: int, message: PullMessage) -> None:
        """A poller asked us (as a member of ``H(s, sender)``) to vouch for its request."""
        candidate, label = message.candidate, message.label
        key = (sender, candidate, label)
        if key in self._served_pulls:
            return  # each pull request is served at most once (anti-flooding)
        if not self.pull_sampler.contains(candidate, sender, self._node_id):
            return
        if candidate != self.owner.believed:
            # Remember the request; if we later come to believe this candidate
            # (by deciding on it) we will serve it then.
            self._pending_pulls.append(key)
            return
        self._serve_pull(sender, candidate, label)

    def _serve_pull(self, origin: int, candidate: str, label: int) -> None:
        key = (origin, candidate, label)
        if key in self._served_pulls:
            return
        self._served_pulls.add(key)
        pull_table = self.pull_sampler.table(candidate)
        for target in self.poll_sampler.poll_list(origin, label):
            fw1 = Fw1Message(origin=origin, candidate=candidate, label=label, target=target)
            self.owner.send_many(pull_table.quorum(target), fw1)

    def on_fw1(self, sender: int, message: Fw1Message) -> None:
        """First forwarding hop reached us (as a member of ``H(s, w)``)."""
        origin, candidate = message.origin, message.candidate
        target = message.target
        key = (origin, candidate, target)
        state = self._fw1_state.get(key)
        if state is not None:
            if state[2]:
                # The Fw2 for this key is already on the wire: further
                # first-hop evidence is moot (the vote set is only ever read
                # by threshold checks, which the sent flag guards), so the
                # remaining pure per-delivery checks are skipped outright.
                return
            # An existing state proves our own membership in H(candidate,
            # target) and carries the sender quorum and threshold, so the
            # steady-state cost per delivery is one set lookup plus one
            # label comparison.
            if sender not in state[3]:
                return
            label = message.label
            if label != state[1]:
                # state[1] only ever holds a *verified* label, so a message
                # carrying it has, by purity of the edge check, a legitimate
                # (origin, label, target) poll edge.  A different label must
                # prove its own edge before the vote counts — exactly the
                # per-message filter the pre-columnar engine applied.
                memo = self._fw1_edge_memo
                cached = memo.get(id(message))
                if cached is None or cached[0] is not message:
                    cached = self._fill_edge_memo(
                        message, self.pull_sampler.table(candidate)
                    )
                if cached[1] is None:
                    return
                state[1] = label
            votes = state[0]
            votes.add(sender)
        else:
            pull_table = self.pull_sampler.table(candidate)
            if not pull_table.contains(target, self._node_id):
                return
            memo = self._fw1_edge_memo
            cached = memo.get(id(message))
            if cached is None or cached[0] is not message:
                cached = self._fill_edge_memo(message, pull_table)
            quorum_set = cached[1]
            if quorum_set is None or sender not in quorum_set:
                return
            state = self._fw1_state[key] = [
                {sender}, message.label, False, quorum_set, cached[2]
            ]
            votes = state[0]
        if candidate != self.owner.believed:
            return  # evidence recorded; acted upon if we ever believe the candidate
        if len(votes) >= state[4]:
            state[2] = True
            self.owner.send(
                target, Fw2Message(origin=origin, candidate=candidate, label=state[1])
            )

    def _fill_edge_memo(self, message: Fw1Message, pull_table) -> tuple:
        """Compute and memoise the pure per-message Fw1 facts (memo miss path).

        The entry — whether ``(origin, label, target)`` names a real
        poll-list edge, plus the member set and majority threshold of
        ``H(candidate, origin)`` — is a pure function of the message, shared
        by the d² recipients of the d copies of one Fw1 (see ``__init__``).
        """
        origin = message.origin
        if self.poll_sampler.contains(origin, message.label, message.target):
            cached = (message, pull_table.members(origin), pull_table.threshold(origin))
        else:
            cached = (message, None, 0)
        memo = self._fw1_edge_memo
        if len(memo) >= _EDGE_MEMO_LIMIT:
            memo.clear()
        memo[id(message)] = cached
        return cached

    def _maybe_forward_fw2(self, origin: int, candidate: str, target: int) -> None:
        state = self._fw1_state.get((origin, candidate, target))
        if state is None or state[2]:
            return  # no Fw1 evidence recorded for this key yet, or already sent
        if len(state[0]) >= state[4]:
            state[2] = True
            self.owner.send(
                target, Fw2Message(origin=origin, candidate=candidate, label=state[1])
            )

    # ------------------------------------------------------------------
    # Algorithm 3: the poll-list member
    # ------------------------------------------------------------------
    def on_fw2(self, sender: int, message: Fw2Message) -> None:
        """Second forwarding hop reached us (as a member of ``J(origin, label)``)."""
        origin, candidate, label = message.origin, message.candidate, message.label
        node_id = self._node_id
        if not self.poll_sampler.contains(origin, label, node_id):
            return
        if not self.pull_sampler.table(candidate).contains(node_id, sender):
            return

        key = (origin, candidate)
        votes = self._fw2_votes.setdefault(key, set())
        votes.add(sender)
        self._fw2_labels[key] = label
        if candidate != self.owner.believed:
            return  # recorded; re-examined after a decision updates the belief
        self._maybe_answer(origin, candidate)

    def on_poll(self, sender: int, message: PollMessage) -> None:
        """The poller itself asked us directly (the ``Poll`` branch of Algorithm 3)."""
        candidate, label = message.candidate, message.label
        if not self.poll_sampler.contains(sender, label, self._node_id):
            return
        key = (sender, candidate)
        self._polled[key] = label
        # "Necessary in the asynchronous case": the Fw2 majority may already be there.
        if candidate == self.owner.believed:
            self._maybe_answer(sender, candidate)

    def _maybe_answer(self, origin: int, candidate: str) -> None:
        key = (origin, candidate)
        if key in self._answered or key not in self._polled:
            return
        votes = self._fw2_votes.get(key, set())
        threshold = self.pull_sampler.table(candidate).threshold(self._node_id)
        if len(votes) < threshold:
            return
        if not self.owner.has_decided and self.answers_sent >= self.answer_budget:
            # Algorithm 3: "if Count > log² n: wait for has_decided".
            self._deferred_answers.append(key)
            if self.trace is not None:
                self.trace.budget_exhausted(self.owner.node_id)
            return
        self._answered.add(key)
        if not self.owner.has_decided:
            self.answers_sent += 1
        if self.trace is not None:
            self.trace.poll_answered(self.owner.node_id, origin)
        self.owner.send(origin, AnswerMessage(candidate=candidate))

    # ------------------------------------------------------------------
    # decision hook
    # ------------------------------------------------------------------
    def on_decided(self, value: str) -> None:
        """The owning node decided ``value``: flush work that was waiting on the belief.

        This implements both the "wait for has_decided" branch of Algorithm 3
        and the pseudocode's premise that a decided node has updated ``s_w``
        and therefore now participates in the propagation of ``gstring``.
        """
        # Serve pull requests for the value we now believe.
        pending, self._pending_pulls = self._pending_pulls, []
        for origin, candidate, label in pending:
            if candidate == value:
                self._serve_pull(origin, candidate, label)

        # Re-examine first-hop forwarding evidence.
        for origin, candidate, target in list(self._fw1_state):
            if candidate == value:
                self._maybe_forward_fw2(origin, candidate, target)

        # Re-examine answering evidence, including previously deferred answers.
        deferred, self._deferred_answers = self._deferred_answers, []
        for origin, candidate in deferred:
            if candidate == value:
                self._maybe_answer(origin, candidate)
        for origin, candidate in list(self._fw2_votes):
            if candidate == value:
                self._maybe_answer(origin, candidate)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def answers_for(self, candidate: str) -> int:
        """Number of distinct poll-list members that answered ``candidate`` so far."""
        return len(self._answers.get(candidate, set()))

    @property
    def polls_launched(self) -> int:
        """Number of candidates this node has started verifying."""
        return len(self.labels)
