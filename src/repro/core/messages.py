"""Wire messages of the AER protocol (Algorithms 1-3).

Six message types appear in the paper:

======== ======================================================================
``Push``  a node diffuses its candidate string (Section 3.1.1)
``Poll``  the poller asks its poll list ``J(x, r)`` about a candidate
``Pull``  the poller asks its pull quorum ``H(s, x)`` to vouch for the request
``Fw1``   first forwarding hop: ``H(s, x)`` → ``H(s, w)`` for ``w ∈ J(x, r)``
``Fw2``   second forwarding hop: ``H(s, w)`` → ``w``
``Answer`` a poll-list member confirms the candidate back to the poller
======== ======================================================================

Every message carries exactly the fields the pseudocode gives it, and its
:meth:`~repro.net.messages.Message.bits` method charges exactly the cost the
paper's accounting assigns: candidate strings cost their length, node ids
cost ``⌈log₂ n⌉`` bits, labels cost ``⌈log₂ |R|⌉`` bits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.messages import Message, SizeModel


@dataclass(frozen=True, slots=True)
class PushMessage(Message):
    """Push phase: the sender vouches that its candidate string is ``candidate``."""

    candidate: str
    kind: str = "push"

    def bits(self, size_model: SizeModel) -> int:
        return size_model.kind_bits + len(self.candidate)


@dataclass(frozen=True, slots=True)
class PollMessage(Message):
    """Pull phase, Algorithm 1: poller ``x`` asks a poll-list member about ``candidate``."""

    candidate: str
    label: int
    kind: str = "poll"

    def bits(self, size_model: SizeModel) -> int:
        return size_model.kind_bits + len(self.candidate) + size_model.label_bits


@dataclass(frozen=True, slots=True)
class PullMessage(Message):
    """Pull phase, Algorithm 1: poller ``x`` asks its pull quorum ``H(s, x)`` to forward."""

    candidate: str
    label: int
    kind: str = "pull"

    def bits(self, size_model: SizeModel) -> int:
        return size_model.kind_bits + len(self.candidate) + size_model.label_bits


@dataclass(frozen=True, slots=True)
class Fw1Message(Message):
    """Algorithm 2, first hop: a member of ``H(s, x)`` forwards towards ``H(s, w)``.

    Carries the original poller ``origin`` (= ``x``), the candidate, the
    label ``r`` and the poll-list member ``target`` (= ``w``) the request is
    ultimately destined for.
    """

    origin: int
    candidate: str
    label: int
    target: int
    kind: str = "fw1"

    def bits(self, size_model: SizeModel) -> int:
        return (
            size_model.kind_bits
            + 2 * size_model.id_bits
            + len(self.candidate)
            + size_model.label_bits
        )


@dataclass(frozen=True, slots=True)
class Fw2Message(Message):
    """Algorithm 2/3, second hop: a member of ``H(s, w)`` forwards the request to ``w``."""

    origin: int
    candidate: str
    label: int
    kind: str = "fw2"

    def bits(self, size_model: SizeModel) -> int:
        return (
            size_model.kind_bits
            + size_model.id_bits
            + len(self.candidate)
            + size_model.label_bits
        )


@dataclass(frozen=True, slots=True)
class AnswerMessage(Message):
    """Algorithm 3: a poll-list member confirms ``candidate`` back to the poller."""

    candidate: str
    kind: str = "answer"

    def bits(self, size_model: SizeModel) -> int:
        return size_model.kind_bits + len(self.candidate)
