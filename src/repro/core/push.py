"""Push phase of AER (Section 3.1.1).

Every node ``y`` diffuses its initial candidate string ``s_y`` to exactly the
nodes ``x`` whose push quorum ``I(s_y, x)`` contains ``y``.  A node ``x``
accepts a string ``s`` into its candidate list ``L_x`` only when **more than
half** of the members of ``I(s, x)`` have pushed ``s`` to it.

Two properties follow (and are measured by the Lemma 3/4 benchmarks):

* because no node is overloaded by the sampler ``I``, each correct node sends
  only ``O(log n)`` push messages (Lemma 3);
* because ``I`` is a sampler and more than half of all nodes are correct and
  know ``gstring``, only ``O(n)`` quorums can have a majority pushing a wrong
  string, so the candidate lists sum to ``O(n)`` (Lemma 4) — crucially the
  phase is *impervious to flooding*: nodes never react to a push by sending
  messages, so the adversary cannot amplify traffic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.samplers.hash_sampler import QuorumSampler


class PushEngine:
    """Per-node state of the push phase.

    Parameters
    ----------
    node_id:
        Identity of the owning node.
    push_sampler:
        The shared sampler ``I`` defining push quorums.
    initial_candidate:
        The node's own candidate string ``s_x`` (always part of ``L_x``).
    max_tracked_strings:
        Defensive cap on the number of distinct strings for which push votes
        are tracked; a flooding adversary can make a node *track* strings (it
        cannot make it accept them), and this cap bounds the memory cost of
        doing so.  The cap is far above anything reachable in the experiments
        and exists only so that memory use is provably bounded.
    trace:
        Optional :class:`~repro.trace.collector.TraceCollector` receiving the
        ``push_ignored`` / ``candidate_added`` probes; ``None`` disables
        tracing at zero cost.
    """

    def __init__(
        self,
        node_id: int,
        push_sampler: QuorumSampler,
        initial_candidate: str,
        max_tracked_strings: int = 100_000,
        trace=None,
    ) -> None:
        self.node_id = node_id
        self.push_sampler = push_sampler
        self.initial_candidate = initial_candidate
        self.max_tracked_strings = max_tracked_strings
        self.trace = trace
        if trace is not None:
            trace.candidate_holder(node_id, initial_candidate)
        #: the candidate list ``L_x``
        self.candidates: Set[str] = {initial_candidate}
        #: per-string vote state ``[quorum members that pushed it, majority
        #: threshold]`` — the threshold is a pure function of the string and
        #: this node, memoised with the votes instead of re-queried per push
        self._votes: Dict[str, list] = {}
        #: pushes ignored because the sender was not in the relevant quorum
        self.ignored_pushes: int = 0

    # ------------------------------------------------------------------
    # outgoing
    # ------------------------------------------------------------------
    def push_targets(self) -> Tuple[int, ...]:
        """Nodes to which this node must push its candidate: ``I⁻¹(s_x, x)``.

        These are exactly the nodes ``x`` with ``self.node_id ∈ I(s_x, x)``;
        by the no-overload property of Lemma 1 there are ``O(log n)`` of them.
        """
        return self.push_sampler.inverse(self.initial_candidate, self.node_id)

    # ------------------------------------------------------------------
    # incoming
    # ------------------------------------------------------------------
    def receive_push(self, sender: int, candidate: str) -> Optional[str]:
        """Process a push of ``candidate`` from ``sender``.

        Returns the candidate string if this push completed a quorum majority
        and the string was therefore *newly* added to ``L_x``; returns
        ``None`` otherwise (already accepted, sender not in the quorum, or
        majority not yet reached).
        """
        if candidate in self.candidates:
            return None
        table = self.push_sampler.table(candidate)
        if not table.contains(self.node_id, sender):
            # The filter of Section 3.1.1: pushes from outside I(s, x) are ignored.
            self.ignored_pushes += 1
            if self.trace is not None:
                self.trace.push_ignored(self.node_id)
            return None

        state = self._votes.get(candidate)
        if state is None:
            if len(self._votes) >= self.max_tracked_strings:
                self.ignored_pushes += 1
                if self.trace is not None:
                    self.trace.push_ignored(self.node_id)
                return None
            state = self._votes[candidate] = [{sender}, table.threshold(self.node_id)]
        else:
            state[0].add(sender)

        if len(state[0]) >= state[1]:
            self.candidates.add(candidate)
            del self._votes[candidate]
            if self.trace is not None:
                self.trace.candidate_added(self.node_id, candidate)
            return candidate
        return None

    # ------------------------------------------------------------------
    # introspection (used by tests and the Lemma 4 benchmark)
    # ------------------------------------------------------------------
    @property
    def candidate_list_size(self) -> int:
        """``|L_x|`` — summed over nodes this is the Lemma 4 quantity."""
        return len(self.candidates)

    def tracked_strings(self) -> List[str]:
        """Strings with partial (sub-majority) vote counts — diagnostics only."""
        return sorted(self._votes)
