"""The AER node: the per-node state machine of the paper's Section 3 protocol.

An :class:`AERNode` glues together the two phase engines:

* :class:`~repro.core.push.PushEngine` — diffusion and filtering of candidate
  strings (Section 3.1.1);
* :class:`~repro.core.pull.PullEngine` — verification of candidates through
  poll lists and pull quorums (Section 3.1.2, Algorithms 1-3).

The node's externally visible outcome is its :attr:`~repro.net.node.Node.decision`,
which Lemma 7 shows equals ``gstring`` w.h.p. for every correct node.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import AERConfig, SamplerSuite
from repro.core.messages import (
    AnswerMessage,
    Fw1Message,
    Fw2Message,
    PollMessage,
    PullMessage,
    PushMessage,
)
from repro.core.pull import PullEngine
from repro.core.push import PushEngine
from repro.net.messages import Message
from repro.net.node import Node


class AERNode(Node):
    """A correct participant of the AER protocol.

    Parameters
    ----------
    node_id:
        The node's identity in ``[0, n)``.
    config:
        Protocol parameters (quorum sizes, answer budget, ...).
    samplers:
        The shared sampler suite ``(I, H, J)``; all nodes must be constructed
        with the *same* suite, mirroring the paper's shared-sampler
        assumption.
    initial_candidate:
        The node's candidate string ``s_x`` — equal to ``gstring`` for
        knowledgeable nodes, arbitrary otherwise.
    trace:
        Optional :class:`~repro.trace.collector.TraceCollector` shared by
        every node of the run; threaded into both phase engines.  ``None``
        (the default) disables tracing at zero cost.
    """

    def __init__(
        self,
        node_id: int,
        config: AERConfig,
        samplers: SamplerSuite,
        initial_candidate: str,
        trace=None,
    ) -> None:
        super().__init__(node_id)
        self.config = config
        self.samplers = samplers
        self.initial_candidate = initial_candidate
        self.trace = trace
        #: the string this node currently believes to be ``gstring`` (``s_this``)
        self.believed: str = initial_candidate
        self._pull_phase_started = False

        self.push_engine = PushEngine(
            node_id=node_id,
            push_sampler=samplers.push,
            initial_candidate=initial_candidate,
            trace=trace,
        )
        self.pull_engine = PullEngine(
            owner=self,
            pull_sampler=samplers.pull,
            poll_sampler=samplers.poll,
            answer_budget=config.answer_budget,
            trace=trace,
        )
        # Exact-type dispatch table for the hot message loop; unknown types
        # fall back to the isinstance chain (and are ultimately ignored).
        pull = self.pull_engine
        self._on_fw1 = pull.on_fw1
        self._handlers = {
            PushMessage: self._on_push,
            PullMessage: pull.on_pull,
            PollMessage: pull.on_poll,
            Fw1Message: pull.on_fw1,
            Fw2Message: pull.on_fw2,
            AnswerMessage: pull.on_answer,
        }

    # ------------------------------------------------------------------
    # PullOwner interface
    # ------------------------------------------------------------------
    def random_label(self, label_space: int) -> int:
        """Draw a private uniformly random poll label (Algorithm 1's ``UniformRand``)."""
        return self.context.rng.randrange(label_space)

    def decide(self, value: object) -> None:
        """Decide on ``value`` and update the believed string accordingly.

        The pseudocode's ``s_this ← s`` upon decision; flushing of work that
        was waiting for the belief change is delegated to the pull engine.
        """
        if self.has_decided:
            return
        super().decide(value)
        self.believed = str(value)
        self.pull_engine.on_decided(self.believed)

    # ------------------------------------------------------------------
    # protocol callbacks
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Send the push-phase messages and (eagerly) start verifying ``s_x``."""
        targets = self.push_engine.push_targets()
        if self.trace is not None:
            self.trace.phase_started(self.node_id, "push")
            self.trace.push_sent(self.node_id, len(targets))
        self.send_many(targets, PushMessage(candidate=self.initial_candidate))
        if self.config.eager_pull:
            self._pull_phase_started = True
            if self.trace is not None:
                self.trace.phase_started(self.node_id, "pull")
            self.pull_engine.start_poll(self.initial_candidate)

    def on_round(self, round_no: int) -> None:
        """Non-eager mode only: start the pull phase at the configured round."""
        if self.config.eager_pull or self._pull_phase_started:
            return
        if round_no >= self.config.pull_start_round:
            self._pull_phase_started = True
            if self.trace is not None:
                self.trace.phase_started(self.node_id, "pull")
            for candidate in sorted(self.push_engine.candidates):
                self.pull_engine.start_poll(candidate)

    def _on_push(self, sender: int, message: PushMessage) -> None:
        accepted = self.push_engine.receive_push(sender, message.candidate)
        if accepted is not None and self._pull_phase_started:
            self.pull_engine.start_poll(accepted)

    def on_message(self, sender: int, message: Message) -> None:
        """Dispatch to the phase engines by (exact) message type."""
        if type(message) is Fw1Message:
            # ~90% of a run's traffic is the Fw1 forwarding hop (d² messages
            # per poll edge); branch straight to it before the dict dispatch.
            self._on_fw1(sender, message)
            return
        handler = self._handlers.get(type(message))
        if handler is not None:
            handler(sender, message)
            return
        # Subclassed protocol messages still reach their handler; anything
        # else (e.g. junk injected by the adversary) is ignored.
        for message_type, fallback in self._handlers.items():
            if isinstance(message, message_type):
                fallback(sender, message)
                return

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def candidate_list(self) -> frozenset:
        """The node's candidate list ``L_x``."""
        return frozenset(self.push_engine.candidates)

    @property
    def knows_gstring(self) -> Optional[bool]:
        """Whether the node has decided (``None`` while undecided)."""
        if not self.has_decided:
            return None
        return True
