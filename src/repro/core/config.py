"""Protocol parameters for AER.

Everything the analysis of Section 4 treats as a constant or a function of
``n`` lives here: the quorum size ``d = O(log n)``, the length ``c log n`` of
``gstring``, the label space ``R`` of the poll sampler, and the per-node
answer budget ``log² n`` of Algorithm 3.  Keeping them in one dataclass makes
the ablation benchmarks (``bench_ablation_*``) one-liners: build a config,
tweak one knob, re-run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.net.messages import SizeModel
from repro.samplers.base import (
    SamplerSpec,
    default_label_space,
    default_quorum_size,
    default_string_length,
)
from repro.samplers.hash_sampler import QuorumSampler
from repro.samplers.poll_sampler import PollSampler
from repro.samplers.tables import LRUCache

#: process-local suite cache capacity (suites are a few MB of tables each)
_SUITE_CACHE_CAPACITY = 8


@dataclass(frozen=True)
class SamplerSuite:
    """The three shared samplers of Section 3.1: push quorums, pull quorums, poll lists."""

    push: QuorumSampler   #: ``I`` — push quorums (Section 3.1.1)
    pull: QuorumSampler   #: ``H`` — pull quorums (Section 3.1.2)
    poll: PollSampler     #: ``J`` — poll lists (Lemma 2)


@dataclass(frozen=True)
class AERConfig:
    """All tunable parameters of the AER protocol.

    Attributes
    ----------
    n:
        System size.
    epsilon:
        The slack ``ε`` in the assumptions ``t < (1/3 − ε)n`` and
        "``1/2 + ε`` fraction of the nodes are correct and know ``gstring``".
    quorum_size:
        ``d`` — size of push quorums, pull quorums and poll lists.
    string_length:
        Length of ``gstring`` in bits (``c log n`` per Lemma 5).
    label_space:
        Cardinality of the label domain ``R`` of the poll sampler.
    answer_budget:
        Maximum number of ``Answer`` messages a node sends *before it has
        decided* (the ``log² n`` filter of Algorithm 3); requests beyond the
        budget are deferred until the node decides.
    sampler_seed:
        Public seed defining the shared samplers.
    eager_pull:
        When true (default) a node starts verifying a candidate as soon as it
        enters its list ``L_x``; when false it waits ``pull_start_round``
        synchronous rounds — used by the ablation benchmarks only.
    pull_start_round:
        Round at which the pull phase starts when ``eager_pull`` is false.
    """

    n: int
    epsilon: float = 1 / 12
    quorum_size: int = 0
    string_length: int = 0
    label_space: int = 0
    answer_budget: int = 0
    sampler_seed: int = 0
    eager_pull: bool = True
    pull_start_round: int = 2

    @staticmethod
    def for_system(
        n: int,
        epsilon: float = 1 / 12,
        sampler_seed: int = 0,
        quorum_multiplier: float = 2.0,
        string_multiplier: int = 4,
    ) -> "AERConfig":
        """Build the default configuration for ``n`` nodes.

        The defaults follow the asymptotic prescriptions of the paper:
        ``d = Θ(log n)`` quorums, ``c log n``-bit strings, ``|R| = n²`` labels
        and a ``⌈log₂ n⌉²`` answer budget.
        """
        log_n = math.log2(max(2, n))
        return AERConfig(
            n=n,
            epsilon=epsilon,
            quorum_size=default_quorum_size(n, multiplier=quorum_multiplier),
            string_length=default_string_length(n, multiplier=string_multiplier),
            label_space=default_label_space(n),
            answer_budget=max(4, int(math.ceil(log_n)) ** 2),
            sampler_seed=sampler_seed,
        )

    # ------------------------------------------------------------------
    # derived objects
    # ------------------------------------------------------------------
    def sampler_spec(self) -> SamplerSpec:
        """The sampler parameters implied by this configuration."""
        return SamplerSpec(
            n=self.n,
            quorum_size=self.quorum_size,
            label_space=self.label_space,
            seed=self.sampler_seed,
        )

    def build_samplers(self) -> SamplerSuite:
        """Instantiate the shared samplers ``I``, ``H`` and ``J`` (always fresh)."""
        spec = self.sampler_spec()
        return SamplerSuite(
            push=QuorumSampler(spec, name="I"),
            pull=QuorumSampler(spec, name="H"),
            poll=PollSampler(spec, name="J"),
        )

    def shared_samplers(self) -> SamplerSuite:
        """The process-local cached suite for this configuration (warm tables).

        Sampler suites are deterministic pure functions of the config: every
        table, membership set, threshold and inverse entry they hold is a
        memo of a keyed hash, so *reusing* a suite across runs is
        behaviour-neutral — the golden equivalence tests pin this.  What
        reuse buys is warmth: repeated runs of the same spec (the min-of-N
        benchmark repetitions, the trace-overhead guard, back-to-back report
        sections on one grid point) skip rebuilding the quorum/poll tables
        entirely.  The cache is bounded (LRU, capacity
        ``_SUITE_CACHE_CAPACITY``) and per process; sweep workers prewarm it
        through :func:`prewarm_samplers`.
        """
        return _suite_cache.get_or_create(self, lambda config: config.build_samplers())

    def size_model(self) -> SizeModel:
        """Bit-accounting model matching this configuration."""
        return SizeModel(n=self.n, label_space=self.label_space)

    def max_byzantine(self) -> int:
        """Largest number of corrupted nodes tolerated: ``t < (1/3 − ε)·n``."""
        return max(0, int(math.floor((1 / 3 - self.epsilon) * self.n)) - 0)

    def with_(self, **changes) -> "AERConfig":
        """Return a copy with the given fields replaced (ablation helper)."""
        return replace(self, **changes)


#: the process-local suite cache behind :meth:`AERConfig.shared_samplers`
_suite_cache: "LRUCache[AERConfig, SamplerSuite]" = LRUCache(_SUITE_CACHE_CAPACITY)


def prewarm_samplers(config: AERConfig) -> SamplerSuite:
    """Prime the process-local suite cache for ``config`` (worker warm-up)."""
    return config.shared_samplers()
