"""The protocol-adapter contract and the normalized run result.

The repo implements several protocols with heterogeneous native result types
(:class:`~repro.net.results.SimulationResult` for single-stage runs,
:class:`~repro.core.ba.BAResult` / ``ComposedBAResult`` for two-stage
compositions).  To compare them in one Figure-1-style table — and to fan any
mix of them across sweep workers with one JSON schema — every protocol is
wrapped in a :class:`ProtocolAdapter` that returns a :class:`RunResult`: one
flat record with the paper's metrics columns (bits, rounds, per-node load,
agreement), regardless of how the underlying protocol reports them.

Adding a protocol is one class::

    from repro.protocols import ProtocolAdapter, RunResult, register_protocol

    @register_protocol
    class MyProtocol(ProtocolAdapter):
        name = "my_protocol"
        params = {"t": None, "fanout": 4}

        def run(self, spec):
            p = self.resolve_params(spec)
            result = ...  # run it
            return RunResult.from_simulation(self.name, result)

after which ``ExperimentSpec(n=64, protocol="my_protocol")``, the sweep
runner and the ``python -m repro {run,sweep,compare}`` CLI all work with it.
"""

from __future__ import annotations

import statistics
from dataclasses import asdict, dataclass, field, fields, replace
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple

from repro.net.results import SimulationResult
from repro.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.experiments.plan import ExperimentSpec

#: the global protocol registry; values are ProtocolAdapter *instances*
PROTOCOLS = Registry("protocol")


def register_protocol(cls):
    """Class decorator: instantiate the adapter and register it under ``cls.name``."""
    PROTOCOLS.register(cls.name, cls())
    return cls


def get_protocol(name: str) -> "ProtocolAdapter":
    """Return the adapter registered under ``name`` (``ValueError`` if unknown)."""
    return PROTOCOLS.get(name)  # type: ignore[return-value]


def list_protocols() -> list:
    """Sorted names of all registered protocols."""
    return PROTOCOLS.names()


@dataclass(frozen=True)
class RunResult:
    """One protocol run, normalized to the paper's comparison columns.

    Whatever the protocol (single-stage AER, a two-stage BA composition, a
    baseline), the same fields mean the same thing, so records of different
    protocols can share a table, a JSON file and a sweep.

    Attributes
    ----------
    protocol:
        Registry name of the protocol that produced this result.
    agreement:
        Every correct node decided, and on the same value.
    rounds / span:
        Synchronous rounds (summed across stages for compositions) and
        normalized asynchronous completion time (``None`` where inapplicable).
    total_messages / total_bits:
        Totals over *all* traffic, including Byzantine senders.
    amortized_bits:
        Correct-node total bits divided by ``n`` — the paper's amortized
        communication complexity.
    max_node_bits / median_node_bits / load_imbalance:
        Per-node load distribution over correct nodes (stage-summed node-wise
        for compositions), behind Figure 1a's "Load-Balanced" row.
    extras:
        Protocol-specific scalars (e.g. ``knowledge_after_ae`` for the
        compositions); JSON-safe.
    trace:
        Optional condensed :class:`~repro.trace.collector.TraceSummary` as a
        plain JSON dict — present only when the spec asked for
        ``trace="summary"`` / ``"full"``; round-trips through sweep files.
    raw:
        The protocol's native result object; excluded from equality and
        serialization.
    """

    protocol: str
    n: int
    agreement: bool
    decided_count: int
    correct_count: int
    rounds: Optional[float]
    span: Optional[float]
    max_decision_time: Optional[float]
    total_messages: int
    total_bits: int
    amortized_bits: float
    max_node_bits: int
    median_node_bits: float
    load_imbalance: float
    extras: Dict[str, object] = field(default_factory=dict)
    trace: Optional[Dict[str, object]] = None
    raw: object = field(default=None, compare=False, repr=False)

    # -- aliases kept for parity with SimulationResult consumers ------------
    @property
    def agreement_reached(self) -> bool:
        """Alias of :attr:`agreement` (the SimulationResult spelling)."""
        return self.agreement

    @property
    def decided_fraction(self) -> float:
        """Fraction of correct nodes that decided."""
        if not self.correct_count:
            return 0.0
        return self.decided_count / self.correct_count

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict (drops :attr:`raw`)."""
        data = asdict(self)
        data.pop("raw", None)
        return data

    def with_trace(self, trace: Optional[Dict[str, object]]) -> "RunResult":
        """Copy of this result carrying the given condensed trace block."""
        return replace(self, trace=trace)

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "RunResult":
        known = {f.name for f in fields(RunResult)}
        return RunResult(**{k: v for k, v in data.items() if k in known})  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # builders from the native result types
    # ------------------------------------------------------------------
    @staticmethod
    def from_simulation(
        protocol: str,
        result: SimulationResult,
        extras: Optional[Dict[str, object]] = None,
    ) -> "RunResult":
        """Normalize a single-stage :class:`SimulationResult`."""
        metrics = result.metrics
        return RunResult(
            protocol=protocol,
            n=result.n,
            agreement=result.agreement_reached,
            decided_count=len(result.decisions),
            correct_count=len(result.correct_ids),
            rounds=result.rounds,
            span=result.span,
            max_decision_time=metrics.max_decision_time,
            total_messages=result.metrics_all.total_messages,
            total_bits=result.metrics_all.total_bits,
            amortized_bits=metrics.amortized_bits,
            max_node_bits=metrics.max_node_bits,
            median_node_bits=metrics.median_node_bits,
            load_imbalance=metrics.load_imbalance,
            extras=dict(extras or {}),
            raw=result,
        )

    @staticmethod
    def from_stages(
        protocol: str,
        stages: Tuple[SimulationResult, ...],
        raw: object = None,
        extras: Optional[Dict[str, object]] = None,
    ) -> "RunResult":
        """Normalize a multi-stage composition (e.g. ae-stage + everywhere-stage).

        Totals are summed across stages; per-node loads are added node-wise
        (both stages run on the same identities) before taking the max and
        median; agreement and decisions are those of the *final* stage.
        """
        if not stages:
            raise ValueError("a composed run needs at least one stage")
        final = stages[-1]
        n = final.n
        rounds = 0.0
        for stage in stages:
            rounds += (
                stage.rounds
                if stage.rounds is not None
                else (stage.span if stage.span is not None else 0.0)
            )
        combined: Dict[int, int] = {}
        for stage in stages:
            for node_id, bits in stage.metrics.per_node_bits.items():
                combined[node_id] = combined.get(node_id, 0) + bits
        loads = sorted(combined.values())
        max_node_bits = loads[-1] if loads else 0
        median_node_bits = float(statistics.median(loads)) if loads else 0.0
        total_correct_bits = sum(stage.metrics.total_bits for stage in stages)
        return RunResult(
            protocol=protocol,
            n=n,
            agreement=final.agreement_reached,
            decided_count=len(final.decisions),
            correct_count=len(final.correct_ids),
            rounds=rounds,
            span=final.span,
            max_decision_time=final.metrics.max_decision_time,
            total_messages=sum(s.metrics_all.total_messages for s in stages),
            total_bits=sum(s.metrics_all.total_bits for s in stages),
            amortized_bits=total_correct_bits / n,
            max_node_bits=max_node_bits,
            median_node_bits=median_node_bits,
            load_imbalance=max_node_bits / max(1.0, median_node_bits),
            extras=dict(extras or {}),
            raw=raw,
        )


class ProtocolAdapter:
    """Contract every runnable protocol implements.

    Class attributes declare the adapter's public surface:

    ``name``
        Registry name (also the ``--protocol`` CLI value).
    ``description``
        One-line summary shown by the CLI.
    ``params``
        Mapping of accepted parameter names to their defaults.  A spec may
        set these either through its first-class knob fields (``adversary``,
        ``mode``, ``rushing``, ``t``, ...) or through its free-form
        ``params`` dict; anything not declared here is rejected by
        :meth:`validate`.
    ``modes``
        Scheduler modes the protocol supports (``"sync"`` and/or ``"async"``).
    ``supports_trace``
        Whether the adapter honours the spec-level ``trace`` knob (builds a
        :class:`~repro.trace.collector.TraceCollector` and attaches the
        resulting summary to ``RunResult.trace``).  Adapters that do not are
        rejected by :meth:`validate` for ``trace != "off"`` rather than
        silently returning untraced results.
    ``supports_backends``
        Engine backends the adapter can dispatch to.  Every adapter supports
        ``"message"`` (the per-message oracle kernel); adapters with a
        vectorized whole-round implementation (see :mod:`repro.vec`) add
        ``"vectorized"``.  Specs naming an unsupported backend — or
        combining ``backend="vectorized"`` with async mode, rushing or
        tracing, none of which the vectorized engines implement — are
        rejected by :meth:`validate` rather than silently falling back.
    ``supports_faults``
        Whether the adapter honours the spec-level ``faults`` knob (builds a
        :class:`~repro.faults.FaultInjector` and threads it through the
        scheduler).  Adapters that do not are rejected by :meth:`validate`
        for a non-empty schedule rather than silently running fault-free.
    """

    name: str = ""
    description: str = ""
    params: Mapping[str, object] = {}
    modes: Tuple[str, ...] = ("sync",)
    supports_trace: bool = False
    supports_backends: Tuple[str, ...] = ("message",)
    supports_faults: bool = False

    #: spec knob fields that route into the protocol parameter space; their
    #: spec-level defaults, used to detect "was this knob actually set?"
    _KNOB_DEFAULTS: Dict[str, object] = {
        "adversary": "none",
        "mode": "sync",
        "rushing": False,
        "t": None,
        "knowledge_fraction": 0.78,
        "wrong_candidate_mode": "random",
        "quorum_multiplier": 2.0,
    }

    # ------------------------------------------------------------------
    # validation and parameter resolution
    # ------------------------------------------------------------------
    def validate(self, spec: "ExperimentSpec") -> None:
        """Reject specs that set parameters this protocol does not understand.

        A knob field left at its spec-level default is always fine (that is
        what lets one plan mix protocols with different parameter spaces);
        a *non-default* knob or any explicit ``params`` entry must be
        declared in :attr:`params`.
        """
        if spec.mode not in self.modes:
            raise ValueError(
                f"protocol {self.name!r} does not support mode {spec.mode!r} "
                f"(supported: {', '.join(self.modes)})"
            )
        if spec.trace != "off" and not self.supports_trace:
            raise ValueError(
                f"protocol {self.name!r} does not support tracing "
                f"(got trace={spec.trace!r}; only trace='off' is accepted)"
            )
        if spec.backend not in self.supports_backends:
            raise ValueError(
                f"protocol {self.name!r} does not support backend "
                f"{spec.backend!r} (supported: {', '.join(self.supports_backends)})"
            )
        if spec.faults != "{}":
            if not self.supports_faults:
                raise ValueError(
                    f"protocol {self.name!r} does not support fault injection "
                    f"(got faults={spec.faults}; only an empty schedule is accepted)"
                )
            if spec.backend == "vectorized":
                raise ValueError(
                    "backend='vectorized' does not implement fault injection; "
                    "use backend='message' for faulted runs"
                )
        if spec.backend == "vectorized":
            if spec.mode != "sync":
                raise ValueError(
                    "backend='vectorized' is synchronous only "
                    f"(got mode={spec.mode!r}); use backend='message' for async runs"
                )
            if spec.rushing:
                raise ValueError(
                    "backend='vectorized' does not implement a rushing adversary; "
                    "use backend='message' for rushing runs"
                )
            if spec.trace != "off":
                raise ValueError(
                    "backend='vectorized' does not implement trace probes "
                    f"(got trace={spec.trace!r}); use backend='message' for traced runs"
                )
        for knob, default in self._KNOB_DEFAULTS.items():
            if knob in self.params:
                continue
            if getattr(spec, knob) != default:
                raise ValueError(
                    f"protocol {self.name!r} does not accept parameter {knob!r} "
                    f"(accepted: {', '.join(sorted(self.params))})"
                )
        for key in spec.params_dict():
            if key not in self.params:
                raise ValueError(
                    f"unknown parameter {key!r} for protocol {self.name!r} "
                    f"(accepted: {', '.join(sorted(self.params))})"
                )

    def relax_spec(self, spec: "ExperimentSpec") -> "ExperimentSpec":
        """Drop whatever this protocol does not accept back to the defaults.

        The cross-protocol ``compare`` flow shares one set of knobs (e.g.
        ``adversary="silent"``) across a protocol mix; protocols that do not
        take a given knob or param should run with their defaults rather
        than abort the whole comparison.  Plain ``sweep``/``run`` keep the
        strict :meth:`validate` behaviour.
        """
        changes: Dict[str, object] = {
            knob: default
            for knob, default in self._KNOB_DEFAULTS.items()
            if knob not in self.params and getattr(spec, knob) != default
        }
        if spec.trace != "off" and not self.supports_trace:
            changes["trace"] = "off"
        if spec.backend not in self.supports_backends:
            changes["backend"] = "message"
        if spec.faults != "{}" and not self.supports_faults:
            changes["faults"] = "{}"
        kept_params = {
            key: value for key, value in spec.params_dict().items() if key in self.params
        }
        if kept_params != spec.params_dict():
            changes["params"] = kept_params
        return spec.with_(**changes) if changes else spec

    def resolve_params(self, spec: "ExperimentSpec") -> Dict[str, object]:
        """Merge adapter defaults, spec knob fields and spec extras.

        Precedence (lowest to highest): adapter default, spec knob field,
        explicit ``spec.params`` entry.
        """
        resolved: Dict[str, object] = dict(self.params)
        for knob in self._KNOB_DEFAULTS:
            if knob in resolved:
                resolved[knob] = getattr(spec, knob)
        resolved.update(spec.params_dict())
        return resolved

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, spec: "ExperimentSpec") -> RunResult:
        """Execute the spec and return the normalized result."""
        raise NotImplementedError
