"""Protocol registry: one spec/sweep/CLI surface for every runnable protocol.

This package defines the :class:`~repro.protocols.base.ProtocolAdapter`
contract and registers the built-in protocols (``aer``, ``full_ba``,
``composed_ba``, ``sample_majority``, ``naive_broadcast``) so that
experiment specs, the sweep runner and the ``python -m repro`` CLI address
any of them by name and get back one normalized
:class:`~repro.protocols.base.RunResult` record.

Sibling registries plug into the same surface:

* adversaries — :mod:`repro.adversary.registry` (``@register_adversary``);
* delay policies — :mod:`repro.net.asynchronous` (``@register_delay_policy``);
* scenario generators — :mod:`repro.protocols.scenarios`
  (``@register_scenario``).
"""

from repro.protocols.base import (
    PROTOCOLS,
    ProtocolAdapter,
    RunResult,
    get_protocol,
    list_protocols,
    register_protocol,
)
from repro.protocols.scenarios import (
    SCENARIOS,
    make_scenario_by_name,
    register_scenario,
)

# Importing the module registers the built-in adapters.
from repro.protocols import builtin as _builtin  # noqa: F401

__all__ = [
    "PROTOCOLS",
    "ProtocolAdapter",
    "RunResult",
    "get_protocol",
    "list_protocols",
    "register_protocol",
    "SCENARIOS",
    "make_scenario_by_name",
    "register_scenario",
]
