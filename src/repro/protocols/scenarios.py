"""Named scenario generators: where a protocol's input state comes from.

The almost-everywhere-to-everywhere protocols (AER and the two baselines) all
consume an :class:`~repro.core.scenario.AERScenario`.  The registry makes the
*source* of that scenario a named, pluggable choice:

* ``synthetic`` — :func:`repro.core.scenario.make_scenario`: the corrupt set,
  ``gstring`` and the knowledgeable set are drawn directly from the seed.
  This is the default and what every golden test pins.
* ``from_ae`` — actually run the committee-tree almost-everywhere substrate
  (:mod:`repro.ae`) and convert its outcome, so AER (or a baseline) runs on a
  *realistically generated* almost-everywhere state instead of a synthesized
  one.

A generator is called as ``generator(n, config, seed, **kwargs)`` and must
return an ``AERScenario``.  Register custom ones with
:func:`register_scenario`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import AERConfig
from repro.core.scenario import AERScenario, make_scenario
from repro.registry import Registry

#: named scenario-generator registry
SCENARIOS = Registry("scenario generator")


def register_scenario(name: str, *, replace: bool = False):
    """Decorator registering a scenario generator under ``name``."""
    return SCENARIOS.register(name, replace=replace)


def make_scenario_by_name(
    name: str, n: int, config: AERConfig, seed: int, **kwargs
) -> AERScenario:
    """Build a scenario with the generator registered under ``name``."""
    generator = SCENARIOS.get(name)
    return generator(n, config, seed, **kwargs)  # type: ignore[operator]


@register_scenario("synthetic")
def synthetic_scenario(
    n: int,
    config: AERConfig,
    seed: int,
    t: Optional[int] = None,
    knowledge_fraction: float = 0.78,
    wrong_candidate_mode: str = "random",
    **_ignored,
) -> AERScenario:
    """Draw the almost-everywhere state directly from the seed (the default)."""
    return make_scenario(
        n,
        config=config,
        t=t,
        knowledge_fraction=knowledge_fraction,
        wrong_candidate_mode=wrong_candidate_mode,
        seed=seed,
    )


@register_scenario("from_ae")
def ae_generated_scenario(
    n: int,
    config: AERConfig,
    seed: int,
    t: Optional[int] = None,
    ae_committee_multiplier: float = 2.0,
    max_rounds: int = 64,
    **_ignored,
) -> AERScenario:
    """Run the committee-tree almost-everywhere substrate and convert its outcome.

    The corrupt set is drawn exactly as the composed-BA runs draw it, so a
    protocol run on this scenario is the second stage of a real composition
    rather than a synthetic experiment.  The returned scenario is *not*
    validated: whether the substrate achieved the ``> 1/2`` knowledge
    precondition is itself an experimental outcome.
    """
    # Imported lazily: repro.ae sits beside (not below) this layer.
    from repro.ae.committees import CommitteeTree
    from repro.ae.config import AEConfig
    from repro.ae.protocol import FINALIZE_ROUND, build_ae_nodes, scenario_from_ae_run
    from repro.net.messages import SizeModel
    from repro.net.rng import derive_rng
    from repro.net.sync import SynchronousSimulator

    if t is None:
        t = max(1, n // 6)
    rng = derive_rng(seed, "scenario-from-ae", n)
    byzantine_ids = frozenset(rng.sample(range(n), t))

    ae_defaults = AEConfig.for_system(
        n, seed=seed, committee_multiplier=ae_committee_multiplier
    )
    ae_config = AEConfig(
        n=n,
        committee_size=ae_defaults.committee_size,
        string_length=config.string_length,
        seed=seed,
    )
    tree = CommitteeTree(ae_config)
    ae_nodes = build_ae_nodes(ae_config, byzantine_ids, tree=tree)
    simulator = SynchronousSimulator(
        nodes=ae_nodes,
        n=n,
        seed=seed,
        max_rounds=max_rounds,
        min_rounds=FINALIZE_ROUND + 1,
        size_model=SizeModel(n=n),
    )
    simulator.run()
    return scenario_from_ae_run(ae_nodes, n, byzantine_ids, config.string_length)
