"""Built-in protocol adapters: AER, the full BA composition, and the baselines.

One adapter per runnable protocol of the repo, all returning the normalized
:class:`~repro.protocols.base.RunResult`:

* ``aer`` — the paper's almost-everywhere-to-everywhere protocol (Section 3);
* ``full_ba`` — the headline two-stage BA composition (ae-substrate + AER);
* ``composed_ba`` — ae-substrate + a baseline everywhere stage (Figure 1b's
  ``O~(√n)`` and ``Ω(n²)`` columns, selected by the ``strategy`` param);
* ``sample_majority`` — the KLST11-style load-balanced baseline, standalone;
* ``naive_broadcast`` — the all-to-all broadcast baseline, standalone.

The ``aer``, ``sample_majority`` and ``naive_broadcast`` adapters draw their
input scenario from the same generator with the same seed, so a cross-protocol
``compare`` runs every protocol on *identical* almost-everywhere states.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.ba import BAConfig, BAProtocol
from repro.core.config import AERConfig
from repro.core.scenario import AERScenario
from repro.faults import injector_for_spec
from repro.net.asynchronous import DelayPolicy, make_delay_policy
from repro.net.results import SimulationResult
from repro.protocols.base import ProtocolAdapter, RunResult, register_protocol
from repro.protocols.scenarios import make_scenario_by_name
from repro.trace.collector import collector_for_spec


def _gstring_extras(result: SimulationResult, scenario: AERScenario) -> Dict[str, object]:
    """Scalars every scenario-driven protocol reports alongside the metrics."""
    return {
        "scenario_knowledge_fraction": round(scenario.knowledge_fraction_of_all, 4),
        "decided_gstring": round(result.fraction_decided(scenario.gstring), 4),
    }


def _resolve_delay_policy(params: Dict[str, object]) -> Optional[DelayPolicy]:
    name = params.get("delay_policy")
    if not name:
        return None
    policy_params = dict(params.get("delay_params") or {})  # type: ignore[call-overload]
    return make_delay_policy(str(name), **policy_params)


@register_protocol
class AERProtocolAdapter(ProtocolAdapter):
    """The paper's AER protocol on a named scenario generator."""

    name = "aer"
    description = "AER almost-everywhere-to-everywhere agreement (the paper's Section 3)"
    modes = ("sync", "async")
    supports_trace = True
    supports_backends = ("message", "vectorized")
    supports_faults = True
    params = {
        "adversary": "none",
        "mode": "sync",
        "rushing": False,
        "t": None,
        "knowledge_fraction": 0.78,
        "wrong_candidate_mode": "random",
        "quorum_multiplier": 2.0,
        "scenario": "synthetic",
        "delay_policy": None,
        "delay_params": {},
        "max_rounds": 64,
        "answer_budget": None,
        "vec_memory_mb": None,
    }

    def validate(self, spec) -> None:
        super().validate(spec)
        if spec.mode == "sync" and dict(spec.params_dict()).get("delay_policy"):
            raise ValueError(
                "delay_policy only applies to mode='async' (sync rounds have no delays)"
            )
        if spec.backend == "vectorized":
            from repro.vec.engine import VEC_ADVERSARIES

            adversary = str(self.resolve_params(spec)["adversary"])
            if adversary not in VEC_ADVERSARIES:
                raise ValueError(
                    f"backend='vectorized' does not support adversary "
                    f"{adversary!r} (supported: {', '.join(VEC_ADVERSARIES)}); "
                    "use backend='message'"
                )
        elif self.resolve_params(spec)["vec_memory_mb"] is not None:
            raise ValueError(
                "vec_memory_mb only applies to backend='vectorized' (the "
                "message kernel has no chunked working set to budget)"
            )

    def run(self, spec) -> RunResult:
        # The parameter resolution below mirrors repro.runner.run_aer_experiment
        # call for call, so the default path stays byte-identical to it (the
        # golden tests pin that path); the scenario generator and the delay
        # policy are the two extension points the plain runner does not have.
        from repro.runner import make_adversary, run_aer

        p = self.resolve_params(spec)
        n, seed = spec.n, spec.seed
        t = p["t"] if p["t"] is not None else max(1, n // 6)
        config = AERConfig.for_system(
            n, sampler_seed=seed, quorum_multiplier=p["quorum_multiplier"]
        )
        if p["answer_budget"] is not None:
            # The Algorithm 3 budget ablation knob; scenario and samplers are
            # unaffected (neither depends on the budget).
            config = config.with_(answer_budget=int(p["answer_budget"]))  # type: ignore[call-overload]
        scenario = make_scenario_by_name(
            str(p["scenario"]),
            n,
            config,
            seed,
            t=t,
            knowledge_fraction=p["knowledge_fraction"],
            wrong_candidate_mode=p["wrong_candidate_mode"],
        )
        if spec.backend == "vectorized":
            # validate() already pinned sync mode, no rushing, no trace and a
            # supported adversary; the vectorized engine resolves the
            # adversary by name and replays its RNG stream itself.
            vec_memory_mb = p["vec_memory_mb"]
            result = run_aer(
                scenario,
                config=config,
                adversary_name=str(p["adversary"]),
                seed=seed,
                max_rounds=int(p["max_rounds"]),  # type: ignore[call-overload]
                backend="vectorized",
                vec_memory_mb=(
                    float(vec_memory_mb) if vec_memory_mb is not None else None  # type: ignore[arg-type]
                ),
            )
            return RunResult.from_simulation(
                self.name, result, _gstring_extras(result, scenario)
            )
        samplers = config.shared_samplers()
        adversary = make_adversary(str(p["adversary"]), scenario, config, samplers)
        trace = collector_for_spec(spec)
        if trace is not None:
            trace.mark_string("gstring", scenario.gstring)
        faults = injector_for_spec(spec)
        result = run_aer(
            scenario,
            config=config,
            adversary=adversary,
            mode=str(p["mode"]),
            rushing=bool(p["rushing"]),
            seed=seed,
            max_rounds=int(p["max_rounds"]),  # type: ignore[call-overload]
            delay_policy=_resolve_delay_policy(p),
            samplers=samplers,
            trace=trace,
            faults=faults,
        )
        extras = _gstring_extras(result, scenario)
        if faults is not None:
            extras.update(faults.extras())
        if trace is not None:
            # Adversary-side counters (e.g. the quorum-flood attack's forced
            # strings, the Lemma 4 comparison column) ride along when traced.
            forced = getattr(adversary, "total_forced", None)
            if forced is not None:
                extras["strings_forced"] = int(forced)
            return RunResult.from_simulation(self.name, result, extras).with_trace(
                trace.finalize()
            )
        return RunResult.from_simulation(self.name, result, extras)


@register_protocol
class FullBAAdapter(ProtocolAdapter):
    """The headline composition: ae-substrate + AER (Figure 1b, column "BA")."""

    name = "full_ba"
    description = "full Byzantine Agreement: committee-tree ae-stage composed with AER"
    modes = ("sync", "async")
    supports_trace = True
    params = {
        "adversary": "none",
        "mode": "sync",
        "rushing": False,
        "t": None,
        "quorum_multiplier": 2.0,
        "ae_committee_multiplier": 2.0,
        "max_rounds": 64,
    }

    def run(self, spec) -> RunResult:
        from repro.runner import make_adversary

        p = self.resolve_params(spec)
        config = BAConfig(
            n=spec.n,
            t=p["t"],  # type: ignore[arg-type]
            seed=spec.seed,
            aer_mode=str(p["mode"]),
            rushing=bool(p["rushing"]),
            quorum_multiplier=float(p["quorum_multiplier"]),  # type: ignore[arg-type]
            ae_committee_multiplier=float(p["ae_committee_multiplier"]),  # type: ignore[arg-type]
            max_rounds=int(p["max_rounds"]),  # type: ignore[call-overload]
        )
        aer_adversary_factory = None
        adversary_name = str(p["adversary"])
        if adversary_name != "none":
            def aer_adversary_factory(scenario, aer_config, samplers):
                return make_adversary(adversary_name, scenario, aer_config, samplers)

        trace = collector_for_spec(spec)
        result = BAProtocol(
            config, aer_adversary_factory=aer_adversary_factory, trace=trace
        ).run()
        extras = {
            "knowledge_after_ae": round(result.knowledge_fraction_after_ae, 4),
            "decided_gstring": round(
                result.aer_result.fraction_decided(result.gstring), 4
            ),
            "ae_rounds": result.ae_result.rounds,
            "aer_rounds": result.aer_result.rounds,
        }
        run_result = RunResult.from_stages(
            self.name, (result.ae_result, result.aer_result), raw=result, extras=extras
        )
        if trace is not None:
            run_result = run_result.with_trace(trace.finalize())
        return run_result


@register_protocol
class ComposedBAAdapter(ProtocolAdapter):
    """ae-substrate + a baseline everywhere stage (the Figure 1b comparison columns)."""

    name = "composed_ba"
    description = (
        "BA composed from the ae-stage and a baseline everywhere stage "
        "(strategy: sample_majority | naive)"
    )
    modes = ("sync",)
    supports_trace = True
    params = {
        "t": None,
        "strategy": "sample_majority",
        "max_rounds": 64,
    }

    def run(self, spec) -> RunResult:
        from repro.baselines.composed_ba import run_composed_ba

        p = self.resolve_params(spec)
        trace = collector_for_spec(spec)
        result = run_composed_ba(
            spec.n,
            strategy=str(p["strategy"]),
            t=p["t"],  # type: ignore[arg-type]
            seed=spec.seed,
            max_rounds=int(p["max_rounds"]),  # type: ignore[call-overload]
            trace=trace,
        )
        extras = {
            "strategy": str(p["strategy"]),
            "knowledge_after_ae": round(result.scenario.knowledge_fraction_of_all, 4),
            "decided_gstring": round(
                result.everywhere_result.fraction_decided(result.gstring), 4
            ),
            "ae_rounds": result.ae_result.rounds,
        }
        run_result = RunResult.from_stages(
            self.name,
            (result.ae_result, result.everywhere_result),
            raw=result,
            extras=extras,
        )
        if trace is not None:
            run_result = run_result.with_trace(trace.finalize())
        return run_result


class _ScenarioBaselineAdapter(ProtocolAdapter):
    """Shared machinery of the standalone scenario-driven baselines."""

    modes = ("sync",)
    supports_trace = True
    params = {
        "adversary": "none",
        "t": None,
        "knowledge_fraction": 0.78,
        "wrong_candidate_mode": "random",
        "scenario": "synthetic",
        "max_rounds": 16,
    }

    def _scenario(self, spec, p) -> AERScenario:
        n, seed = spec.n, spec.seed
        t = p["t"] if p["t"] is not None else max(1, n // 6)
        # Same config/scenario derivation as the AER adapter, so cross-protocol
        # comparisons run on identical almost-everywhere input states.
        config = AERConfig.for_system(n, sampler_seed=seed)
        scenario = make_scenario_by_name(
            str(p["scenario"]),
            n,
            config,
            seed,
            t=t,
            knowledge_fraction=p["knowledge_fraction"],
            wrong_candidate_mode=p["wrong_candidate_mode"],
        )
        return scenario

    def _adversary(self, spec, p, scenario: AERScenario):
        """Resolve the adversary knob against the baseline's scenario.

        The registered strategies are written against AER's message types;
        under a baseline the protocol-specific reactions simply never fire,
        while the generic behaviours (silence, noise floods of push/answer
        messages) attack the baseline's vote counting for real.
        """
        name = str(p["adversary"])
        if name == "none":
            return None
        from repro.runner import make_adversary

        config = AERConfig.for_system(spec.n, sampler_seed=spec.seed)
        return make_adversary(name, scenario, config, config.shared_samplers())


@register_protocol
class SampleMajorityAdapter(_ScenarioBaselineAdapter):
    """KLST11-style sampled-majority baseline (the ``O~(√n)`` row of Figure 1a)."""

    name = "sample_majority"
    description = "load-balanced sampled-majority baseline (KLST11-style, O~(sqrt n))"
    supports_backends = ("message", "vectorized")
    params = {**_ScenarioBaselineAdapter.params, "sample_multiplier": 1.0}

    def validate(self, spec) -> None:
        super().validate(spec)
        if spec.backend == "vectorized":
            from repro.vec.majority import VEC_MAJORITY_ADVERSARIES

            adversary = str(self.resolve_params(spec)["adversary"])
            if adversary not in VEC_MAJORITY_ADVERSARIES:
                raise ValueError(
                    f"backend='vectorized' does not support adversary "
                    f"{adversary!r} for sample_majority "
                    f"(supported: {', '.join(VEC_MAJORITY_ADVERSARIES)}); "
                    "use backend='message'"
                )

    def run(self, spec) -> RunResult:
        from repro.baselines.sample_majority import (
            SampleMajorityConfig,
            run_sample_majority,
        )

        p = self.resolve_params(spec)
        scenario = self._scenario(spec, p)
        config = SampleMajorityConfig.for_system(
            spec.n,
            string_length=len(scenario.gstring),
            sample_multiplier=float(p["sample_multiplier"]),  # type: ignore[arg-type]
        )
        if spec.backend == "vectorized":
            from repro.vec.majority import run_sample_majority_vectorized

            result = run_sample_majority_vectorized(
                scenario,
                config=config,
                adversary_name=str(p["adversary"]),
                seed=spec.seed,
                max_rounds=int(p["max_rounds"]),  # type: ignore[call-overload]
            )
            return RunResult.from_simulation(
                self.name, result, _gstring_extras(result, scenario)
            )
        trace = collector_for_spec(spec)
        result = run_sample_majority(
            scenario,
            config=config,
            adversary=self._adversary(spec, p, scenario),
            seed=spec.seed,
            max_rounds=int(p["max_rounds"]),  # type: ignore[call-overload]
            trace=trace,
        )
        run_result = RunResult.from_simulation(
            self.name, result, _gstring_extras(result, scenario)
        )
        if trace is not None:
            run_result = run_result.with_trace(trace.finalize())
        return run_result


@register_protocol
class NaiveBroadcastAdapter(_ScenarioBaselineAdapter):
    """All-to-all broadcast baseline (the ``Ω(n²)`` row of Figure 1)."""

    name = "naive_broadcast"
    description = "naive all-to-all broadcast baseline (quadratic total bits)"
    params = {**_ScenarioBaselineAdapter.params, "max_rounds": 8}

    def run(self, spec) -> RunResult:
        from repro.baselines.naive_broadcast import run_naive_broadcast

        p = self.resolve_params(spec)
        scenario = self._scenario(spec, p)
        trace = collector_for_spec(spec)
        result = run_naive_broadcast(
            scenario,
            adversary=self._adversary(spec, p, scenario),
            seed=spec.seed,
            max_rounds=int(p["max_rounds"]),  # type: ignore[call-overload]
            trace=trace,
        )
        run_result = RunResult.from_simulation(
            self.name, result, _gstring_extras(result, scenario)
        )
        if trace is not None:
            run_result = run_result.with_trace(trace.finalize())
        return run_result


@register_protocol
class SamplerBorderAdapter(ProtocolAdapter):
    """Section 4.1 / Property 2 Monte-Carlo as a runnable 'protocol'.

    Not a message-passing protocol: one run evaluates the expansion property
    of the poll-list sampler ``J`` — the random digraph model's border
    failure probability and the worst border ratio an adversary finds on the
    *concrete* keyed-hash sampler (random families and the greedy
    label-shopping attack).  Wrapping the analysis in an adapter puts it on
    the same spec/sweep/record rails as every other experiment, which is
    what lets the ``property2`` report section and its benchmark share one
    row source.

    The traffic columns of the normalized record are all zero;
    ``agreement`` reports whether Property 2 held for untailored (random)
    families, and the measured ratios live in ``extras``.
    """

    name = "sampler_border"
    description = (
        "Property 2 expansion analysis of the poll sampler J "
        "(random digraph model + adversarial search on the concrete sampler)"
    )
    modes = ("sync",)
    params = {
        "quorum_multiplier": 2.0,
        "family_size": None,       # None → max(2, n / log2 n), the Lemma 2 regime
        "model_trials": 60,        # Monte-Carlo trials on the random digraph model
        "random_trials": 20,       # uniformly random families on the concrete J
        "greedy_trials": 3,        # greedy label-shopping attacks on the concrete J
    }

    def run(self, spec) -> RunResult:
        import math
        import random as random_module

        from repro.samplers.poll_sampler import PollSampler
        from repro.samplers.properties import worst_family_border_ratio
        from repro.samplers.random_graph import estimate_border_probability

        p = self.resolve_params(spec)
        n, seed = spec.n, spec.seed
        config = AERConfig.for_system(
            n, sampler_seed=seed, quorum_multiplier=float(p["quorum_multiplier"])  # type: ignore[arg-type]
        )
        sampler = PollSampler(config.sampler_spec())
        family_size = p["family_size"]
        if family_size is None:
            family_size = max(2, int(n / math.log2(n)))
        family_size = int(family_size)  # type: ignore[arg-type]

        model_failures = estimate_border_probability(
            n=n, trials=int(p["model_trials"]), seed=seed  # type: ignore[call-overload]
        )
        # One shared rng, random families first: the exact draw sequence of
        # the original bench_property2 benchmark, so its tables reproduce.
        rng = random_module.Random(seed)
        worst_random = worst_family_border_ratio(
            sampler, family_size, trials=int(p["random_trials"]), rng=rng, greedy=False  # type: ignore[call-overload]
        )
        worst_greedy = worst_family_border_ratio(
            sampler, family_size, trials=int(p["greedy_trials"]), rng=rng, greedy=True  # type: ignore[call-overload]
        )

        extras = {
            "family_size": family_size,
            "worst_ratio_random_families": round(worst_random, 4),
            "worst_ratio_greedy_attack": round(worst_greedy, 4),
            "property2_threshold": round(2 / 3, 4),
            "model_trials": int(p["model_trials"]),  # type: ignore[call-overload]
            "model_max_failure_probability": (
                max(model_failures.values()) if model_failures else 0.0
            ),
            "model_failures": {
                str(size): probability
                for size, probability in sorted(model_failures.items())
            },
        }
        return RunResult(
            protocol=self.name,
            n=n,
            agreement=worst_random > 2 / 3,
            decided_count=n,
            correct_count=n,
            rounds=None,
            span=None,
            max_decision_time=None,
            total_messages=0,
            total_bits=0,
            amortized_bits=0.0,
            max_node_bits=0,
            median_node_bits=0.0,
            load_imbalance=0.0,
            extras=extras,
        )
