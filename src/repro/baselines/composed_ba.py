"""Byzantine Agreement compositions built from the baseline ae→e protocols.

The paper obtains its headline BA by composing an almost-everywhere agreement
stage ([KSSV06]) with AER.  The prior state of the art composed the same kind
of first stage with [KLST11]'s ``O~(√n)`` everywhere stage.  To reproduce the
Figure 1b comparison we therefore provide the same composition with the
baseline everywhere stages of this package:

* ``strategy="sample_majority"`` — almost-everywhere stage + sampled-majority
  everywhere stage: the ``O~(√n)``-bits BA column ([KLST11]).
* ``strategy="naive"`` — almost-everywhere stage + all-to-all broadcast: the
  ``Ω(n²)``-bits BA column.
* (the composition with AER itself is :class:`repro.core.ba.BAProtocol`.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.ae.committees import CommitteeTree
from repro.ae.config import AEConfig
from repro.ae.protocol import FINALIZE_ROUND, build_ae_nodes, scenario_from_ae_run
from repro.baselines.naive_broadcast import run_naive_broadcast
from repro.baselines.sample_majority import SampleMajorityConfig, run_sample_majority
from repro.core.config import AERConfig
from repro.core.scenario import AERScenario
from repro.net.messages import SizeModel
from repro.net.results import SimulationResult
from repro.net.rng import derive_rng
from repro.net.sync import SynchronousSimulator


@dataclass(frozen=True)
class ComposedBAResult:
    """Outcome of an ae-stage + baseline-everywhere-stage composition."""

    gstring: str
    scenario: AERScenario
    ae_result: SimulationResult
    everywhere_result: SimulationResult

    @property
    def agreement_reached(self) -> bool:
        """Every correct node decided on the same value in the everywhere stage."""
        return self.everywhere_result.agreement_reached

    @property
    def total_bits(self) -> int:
        """Total bits exchanged across both stages."""
        return (
            self.ae_result.metrics.total_bits
            + self.everywhere_result.metrics.total_bits
        )

    @property
    def amortized_bits(self) -> float:
        """Total bits divided by ``n``."""
        return self.total_bits / self.ae_result.n

    @property
    def total_rounds(self) -> float:
        """Rounds of both stages combined."""
        return (self.ae_result.rounds or 0) + (self.everywhere_result.rounds or 0)

    @property
    def max_node_bits(self) -> int:
        """Worst per-node load (bits) across both stages, added node-wise."""
        combined: Dict[int, int] = dict(self.ae_result.metrics.per_node_bits)
        for node_id, bits in self.everywhere_result.metrics.per_node_bits.items():
            combined[node_id] = combined.get(node_id, 0) + bits
        return max(combined.values()) if combined else 0

    def row(self) -> Dict[str, float]:
        """Flat dict used by the Figure 1b benchmark table."""
        return {
            "n": self.ae_result.n,
            "agreement": int(self.agreement_reached),
            "total_rounds": round(self.total_rounds, 2),
            "amortized_bits": round(self.amortized_bits, 1),
            "max_node_bits": self.max_node_bits,
        }


def run_composed_ba(
    n: int,
    strategy: str = "sample_majority",
    t: Optional[int] = None,
    seed: int = 0,
    max_rounds: int = 64,
    trace=None,
) -> ComposedBAResult:
    """Run the almost-everywhere stage and then a baseline everywhere stage.

    The corrupted set, committee structure and string length are chosen
    exactly as :class:`repro.core.ba.BAProtocol` chooses them, so the
    Figure 1b rows are an apples-to-apples comparison.
    """
    if t is None:
        t = n // 6
    rng = derive_rng(seed, "composed-ba", n, strategy)
    byzantine_ids = frozenset(rng.sample(range(n), t))

    aer_config = AERConfig.for_system(n, sampler_seed=seed)
    ae_defaults = AEConfig.for_system(n, seed=seed)
    ae_config = AEConfig(
        n=n,
        committee_size=ae_defaults.committee_size,
        string_length=aer_config.string_length,
        seed=seed,
    )

    tree = CommitteeTree(ae_config)
    ae_nodes = build_ae_nodes(ae_config, byzantine_ids, tree=tree)
    ae_sim = SynchronousSimulator(
        nodes=ae_nodes,
        n=n,
        seed=seed,
        max_rounds=max_rounds,
        min_rounds=FINALIZE_ROUND + 1,
        size_model=SizeModel(n=n),
        trace=trace,
    )
    ae_result = ae_sim.run()
    scenario = scenario_from_ae_run(ae_nodes, n, byzantine_ids, aer_config.string_length)
    if trace is not None:
        trace.stage_boundary()

    if strategy == "sample_majority":
        config = SampleMajorityConfig.for_system(n, string_length=aer_config.string_length)
        everywhere = run_sample_majority(scenario, config=config, seed=seed + 1, trace=trace)
    elif strategy == "naive":
        everywhere = run_naive_broadcast(scenario, seed=seed + 1, trace=trace)
    else:
        raise ValueError(f"unknown composition strategy {strategy!r}")

    return ComposedBAResult(
        gstring=scenario.gstring,
        scenario=scenario,
        ae_result=ae_result,
        everywhere_result=everywhere,
    )
