"""Baseline protocols for the comparisons of Figure 1.

Three comparators are provided, covering the complexity classes the paper's
Figure 1 compares AER/BA against:

* :mod:`repro.baselines.sample_majority` — a load-balanced, KLST11-style
  almost-everywhere-to-everywhere protocol in which every node samples
  ``Θ(√n · log n)`` peers and adopts the majority answer.  Per-node cost is
  ``O~(√n)`` bits, the load is balanced, and it fails only when sampling
  misses the knowledgeable majority — the ``O~(√n)`` row of Figure 1a.

* :mod:`repro.baselines.naive_broadcast` — the trivial everywhere protocol:
  everyone sends its candidate to everyone and adopts the majority.  ``O(n)``
  messages per node, the ``Ω(n²)``-total-bits class of Figure 1b's [PR10]
  column (constant rounds, quadratic communication).

* :mod:`repro.baselines.composed_ba` — Byzantine Agreement compositions that
  pair the almost-everywhere stage of :mod:`repro.ae` with either baseline
  above, mirroring how the paper composes [KSSV06] with [KLST11] to obtain
  the ``O~(√n)`` BA it improves upon.
"""

from repro.baselines.sample_majority import SampleMajorityConfig, SampleMajorityNode, run_sample_majority
from repro.baselines.naive_broadcast import NaiveBroadcastNode, run_naive_broadcast
from repro.baselines.composed_ba import ComposedBAResult, run_composed_ba

__all__ = [
    "SampleMajorityConfig",
    "SampleMajorityNode",
    "run_sample_majority",
    "NaiveBroadcastNode",
    "run_naive_broadcast",
    "ComposedBAResult",
    "run_composed_ba",
]
