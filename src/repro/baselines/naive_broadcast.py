"""The trivial everywhere protocol: all-to-all broadcast and majority vote.

Every node sends its candidate to every other node and decides on the value
reported by more than half of the population.  This is correct whenever more
than half of all nodes are correct and knowledgeable (the same precondition
as AER), takes a constant number of rounds, and costs ``Θ(n · |s|)`` bits per
node — ``Θ(n² · |s|)`` in total, the quadratic-communication class that
Figure 1b's ``Ω(n² log n)`` column represents and that the paper's
poly-logarithmic protocol improves upon.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.core.messages import PushMessage
from repro.core.scenario import AERScenario
from repro.net.messages import Message, SizeModel
from repro.net.node import Node
from repro.net.results import SimulationResult
from repro.net.simulator import AdversaryProtocol
from repro.net.sync import SynchronousSimulator


class NaiveBroadcastNode(Node):
    """A correct participant of the all-to-all broadcast baseline."""

    def __init__(self, node_id: int, n: int, initial_candidate: str) -> None:
        super().__init__(node_id)
        self.n = n
        self.initial_candidate = initial_candidate
        self._votes: Dict[str, Set[int]] = {}

    def on_start(self) -> None:
        """Broadcast the candidate to every other node (and count the own vote)."""
        message = PushMessage(candidate=self.initial_candidate)
        for peer in range(self.n):
            if peer != self.node_id:
                self.send(peer, message)
        self._record_vote(self.node_id, self.initial_candidate)

    def on_message(self, sender: int, message: Message) -> None:
        if isinstance(message, PushMessage):
            self._record_vote(sender, message.candidate)

    def _record_vote(self, voter: int, candidate: str) -> None:
        if self.has_decided:
            return
        votes = self._votes.setdefault(candidate, set())
        votes.add(voter)
        if len(votes) > self.n // 2:
            self.decide(candidate)


def run_naive_broadcast(
    scenario: AERScenario,
    adversary: Optional[AdversaryProtocol] = None,
    seed: int = 0,
    max_rounds: int = 8,
    trace=None,
) -> SimulationResult:
    """Run the naive broadcast baseline on an AER scenario.

    ``trace`` attaches an optional collector; the baseline has no engine
    probes of its own, so it contributes kernel-level events only
    (message-kind histograms, decision times).
    """
    nodes = [
        NaiveBroadcastNode(node_id, scenario.n, scenario.candidates[node_id])
        for node_id in scenario.correct_ids
    ]
    simulator = SynchronousSimulator(
        nodes=nodes,
        n=scenario.n,
        adversary=adversary,
        seed=seed,
        max_rounds=max_rounds,
        size_model=SizeModel(n=scenario.n),
        trace=trace,
    )
    return simulator.run()
