"""KLST11-style load-balanced almost-everywhere-to-everywhere baseline.

[KLST11] ("Load balanced scalable Byzantine agreement through quorum
building") achieves everywhere agreement from almost-everywhere knowledge at
``O~(√n)`` bits per node while keeping every node's load balanced.  The
essential mechanism this baseline reproduces is *sampled majority voting*:

* every node queries a uniformly random sample of ``Θ(√n · log n)`` peers;
* queried nodes reply with their current candidate string (subject to a
  per-node reply budget, so a Byzantine node cannot trigger unbounded work);
* the querier adopts (and decides) the majority answer.

Because more than half of all nodes are correct and knowledgeable, a sample
of that size contains a majority of knowledgeable nodes w.h.p., so every
correct node decides ``gstring``.  Per-node communication is
``Θ(√n · log n · |s|)`` bits — the ``O~(√n)`` row of Figure 1a — and, unlike
AER, the protocol is load-balanced: every node sends and answers roughly the
same number of messages, which the Figure 1a benchmark verifies by comparing
max and median per-node load.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.core.messages import AnswerMessage
from repro.core.scenario import AERScenario
from repro.net.messages import Message, SizeModel
from repro.net.node import Node
from repro.net.results import SimulationResult
from repro.net.simulator import AdversaryProtocol
from repro.net.sync import SynchronousSimulator


@dataclass(frozen=True)
class QueryMessage(Message):
    """A request for the recipient's current candidate string."""

    kind: str = "query"

    def bits(self, size_model: SizeModel) -> int:
        return size_model.kind_bits


@dataclass(frozen=True)
class SampleMajorityConfig:
    """Parameters of the sampled-majority baseline.

    ``sample_size`` defaults to ``⌈√n · log₂ n⌉`` (capped at ``n − 1``) and
    ``reply_budget`` to ``4 ×`` that, which keeps the protocol load-balanced
    while guaranteeing replies to all honest queries w.h.p.
    """

    n: int
    sample_size: int
    reply_budget: int
    string_length: int

    @staticmethod
    def for_system(n: int, string_length: int, sample_multiplier: float = 1.0) -> "SampleMajorityConfig":
        """Default parameters for a system of ``n`` nodes."""
        sample = int(math.ceil(sample_multiplier * math.sqrt(n) * math.log2(max(2, n))))
        sample = max(5, min(sample, max(1, n - 1)))
        return SampleMajorityConfig(
            n=n,
            sample_size=sample,
            reply_budget=4 * sample,
            string_length=string_length,
        )


class SampleMajorityNode(Node):
    """A correct participant of the sampled-majority baseline."""

    def __init__(
        self,
        node_id: int,
        config: SampleMajorityConfig,
        initial_candidate: str,
        trace=None,
    ) -> None:
        super().__init__(node_id)
        self.config = config
        self.initial_candidate = initial_candidate
        self.trace = trace
        self._replies: Dict[str, Set[int]] = {}
        self._queried: Set[int] = set()
        self._replies_sent = 0

    def on_start(self) -> None:
        """Query a fresh uniformly random sample of peers."""
        population = [i for i in range(self.config.n) if i != self.node_id]
        sample_size = min(self.config.sample_size, len(population))
        sample = self.context.rng.sample(population, sample_size)
        self._queried = set(sample)
        query = QueryMessage()
        for peer in sample:
            self.send(peer, query)

    def on_message(self, sender: int, message: Message) -> None:
        if isinstance(message, QueryMessage):
            if self._replies_sent < self.config.reply_budget:
                self._replies_sent += 1
                if self.trace is not None:
                    self.trace.poll_answered(self.node_id, sender)
                self.send(sender, AnswerMessage(candidate=self.initial_candidate))
            elif self.trace is not None:
                # The per-node reply budget (the baseline's flood filter) bit.
                self.trace.budget_exhausted(self.node_id)
        elif isinstance(message, AnswerMessage):
            if self.has_decided or sender not in self._queried:
                return
            votes = self._replies.setdefault(message.candidate, set())
            votes.add(sender)
            if len(votes) > len(self._queried) // 2:
                self.decide(message.candidate)


def run_sample_majority(
    scenario: AERScenario,
    config: Optional[SampleMajorityConfig] = None,
    adversary: Optional[AdversaryProtocol] = None,
    seed: int = 0,
    max_rounds: int = 16,
    trace=None,
) -> SimulationResult:
    """Run the baseline on an AER scenario and return the simulation result."""
    if config is None:
        config = SampleMajorityConfig.for_system(
            scenario.n, string_length=len(scenario.gstring)
        )
    nodes = [
        SampleMajorityNode(node_id, config, scenario.candidates[node_id], trace=trace)
        for node_id in scenario.correct_ids
    ]
    simulator = SynchronousSimulator(
        nodes=nodes,
        n=scenario.n,
        adversary=adversary,
        seed=seed,
        max_rounds=max_rounds,
        size_model=SizeModel(n=scenario.n),
        trace=trace,
    )
    return simulator.run()
