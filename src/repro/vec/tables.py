"""Array-shaped sampler tables for the vectorized backend.

The message kernel asks the samplers scalar questions (``is y in I(s, x)?``)
millions of times; the vectorized engine instead wants whole tables as
``(rows, d)`` integer matrices it can gather from.  :class:`VecSamplerTables`
provides them, bit-identical to the Python samplers, through two paths:

* **sampler path** (small ``n``): rows are copied straight out of the shared
  :class:`~repro.core.config.SamplerSuite`, so identity with the message
  backend is true by construction (and the suite's LRU tables stay warm for
  any message-backend run of the same config);
* **hash path** (large ``n``): rows come from
  :mod:`repro.vec.hashing`'s batched blake2b, which
  ``tests/test_vec_hashing.py`` pins bit-identical to the samplers' draws.

Storage is the ``n = 10⁶`` part of the story (ARCHITECTURE.md "vec memory
model"): member rows are held **bit-packed** at ``ceil(log2 n)`` bits per id
(:mod:`repro.vec.bitpack`), ~3× smaller than the int64 rows the engine used
to keep, and unpacked on demand into int32 gather rows.  A byte-budgeted LRU
caches fully unpacked tables for hot strings — at ``n = 10⁵`` the whole
``H`` table fits the default budget and gathers stay as fast as the old
materialised tables, while at ``n = 10⁶`` the same code streams chunked
unpacks instead of holding 160 MB per string.

Providers are cached per process (keyed by the sampler parameters) so bench
repetitions and sweep workers reuse the expensive full tables, mirroring
``AERConfig.shared_samplers``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import AERConfig
from repro.samplers.tables import LRUCache
from repro.vec.bitpack import bits_for, pack_rows, packed_width, unpack_rows
from repro.vec.hashing import batch_digest_mod, encode_parts, first_distinct_rows

#: below this system size the exact Python samplers are cheaper than spinning
#: up the batched-hash machinery (both paths produce identical rows)
NUMPY_MIN_N = 1024

#: process-local provider cache (packed tables are ~100 MB per string at
#: ``n = 10⁶``; keeping a few providers warm is the point)
_PROVIDER_CACHE: LRUCache = LRUCache(4)

#: default byte budget of the unpacked-table LRU (the engine overrides it
#: from its per-run ``vec_memory_mb`` contract)
DEFAULT_UNPACKED_CACHE_BYTES = 64 << 20

#: table rows materialised per build/stream chunk — bounds the transient
#: int64 row block and uint8 bit planes of the batched-hash build to a few
#: tens of MB
_BUILD_CHUNK = 1 << 15


class _PackedFamilyTable:
    """Lazily row-materialised, bit-packed member matrix for ``(family, string)``."""

    __slots__ = ("packed", "built", "size", "bits")

    def __init__(self, n: int, size: int, bits: int) -> None:
        self.size = size
        self.bits = bits
        self.packed = np.zeros((n, packed_width(size, bits)), dtype=np.uint8)
        self.built = np.zeros(n, dtype=bool)


class VecSamplerTables:
    """Quorum/poll membership as integer matrices, shared across runs.

    ``family`` is ``"I"`` (push quorums) or ``"H"`` (pull quorums); poll
    rows (``J``) are keyed by ``(node, label)`` pairs.  All rows are sorted
    tuples of distinct members — the samplers' canonical representation.
    """

    def __init__(self, config: AERConfig, use_numpy: Optional[bool] = None) -> None:
        self.config = config
        self.n = config.n
        self.size = min(config.quorum_size, config.n)
        self.bits = bits_for(config.n)
        self.use_numpy = config.n >= NUMPY_MIN_N if use_numpy is None else use_numpy
        self._suite = config.shared_samplers()
        self._tables: Dict[Tuple[str, str], _PackedFamilyTable] = {}
        self._poll_rows: Dict[Tuple[int, int], np.ndarray] = {}
        #: byte-budgeted LRU of fully unpacked (family, string) tables
        self._unpacked: "OrderedDict[Tuple[str, str], np.ndarray]" = OrderedDict()
        self._unpacked_bytes = 0
        self.unpacked_budget = DEFAULT_UNPACKED_CACHE_BYTES

    # ------------------------------------------------------------------
    # unpacked-table LRU
    # ------------------------------------------------------------------
    def set_unpacked_budget(self, budget_bytes: int) -> None:
        """Re-bound the unpacked-table cache (the engine's memory contract)."""
        self.unpacked_budget = max(0, int(budget_bytes))
        self._evict_unpacked()

    def _evict_unpacked(self) -> None:
        while self._unpacked and self._unpacked_bytes > self.unpacked_budget:
            _, evicted = self._unpacked.popitem(last=False)
            self._unpacked_bytes -= evicted.nbytes

    def _cached_unpacked(self, key: Tuple[str, str]) -> Optional[np.ndarray]:
        cached = self._unpacked.get(key)
        if cached is not None:
            self._unpacked.move_to_end(key)
        return cached

    def _maybe_promote(self, key: Tuple[str, str], table: _PackedFamilyTable) -> Optional[np.ndarray]:
        """Unpack a fully built table into the LRU when it fits the budget."""
        full_bytes = self.n * self.size * 4
        if full_bytes > self.unpacked_budget or not table.built.all():
            return None
        full = unpack_rows(table.packed, self.size, self.bits)
        self._unpacked[key] = full
        self._unpacked_bytes += full.nbytes
        self._evict_unpacked()
        return full

    # ------------------------------------------------------------------
    # quorum families I and H
    # ------------------------------------------------------------------
    def _sampler(self, family: str):
        return self._suite.push if family == "I" else self._suite.pull

    def _table(self, family: str, s: str) -> _PackedFamilyTable:
        key = (family, s)
        table = self._tables.get(key)
        if table is None:
            table = _PackedFamilyTable(self.n, self.size, self.bits)
            self._tables[key] = table
        return table

    def _build_rows(self, family: str, s: str, xs: np.ndarray) -> np.ndarray:
        """Member rows for ``xs`` straight from the samplers/hash (unpacked)."""
        if self.use_numpy:
            prefix = encode_parts(self.config.sampler_seed, family, s)
            return first_distinct_rows(prefix, [xs], self.size, self.n, dtype=np.int32)
        quorum = self._sampler(family).table(s).quorum
        rows = np.empty((len(xs), self.size), dtype=np.int64)
        for i, x in enumerate(xs.tolist()):
            rows[i] = quorum(int(x))
        return rows

    def ensure_rows(self, family: str, s: str, xs: np.ndarray) -> None:
        """Materialise the quorum rows for the nodes in ``xs`` (idempotent)."""
        table = self._table(family, s)
        missing = np.asarray(xs, dtype=np.int64)
        missing = np.unique(missing[~table.built[missing]])
        if len(missing) == 0:
            return
        for lo in range(0, len(missing), _BUILD_CHUNK):
            chunk = missing[lo : lo + _BUILD_CHUNK]
            rows = self._build_rows(family, s, chunk)
            table.packed[chunk] = pack_rows(rows, self.bits)
        table.built[missing] = True

    def ensure_all(self, family: str, s: str) -> None:
        """Materialise every row of one ``(family, string)`` table."""
        table = self._table(family, s)
        if not table.built.all():
            self.ensure_rows(family, s, np.arange(self.n))

    def rows(self, family: str, s: str, xs: np.ndarray) -> np.ndarray:
        """Member rows for the nodes in ``xs`` as an ``(len(xs), d)`` matrix."""
        key = (family, s)
        idx = np.asarray(xs, dtype=np.int64)
        cached = self._cached_unpacked(key)
        if cached is not None:
            return cached[idx]
        self.ensure_rows(family, s, idx)
        table = self._tables[key]
        promoted = self._maybe_promote(key, table)
        if promoted is not None:
            return promoted[idx]
        return unpack_rows(table.packed[idx], self.size, self.bits)

    def iter_rows(
        self, family: str, s: str, chunk_rows: int
    ) -> Iterator[Tuple[int, np.ndarray]]:
        """Stream the complete table as ``(start, (k, d) rows)`` chunks.

        Builds every row first (packed), then unpacks ``chunk_rows`` at a
        time — the full unpacked matrix never exists unless it already sits
        in the LRU.
        """
        self.ensure_all(family, s)
        key = (family, s)
        cached = self._cached_unpacked(key)
        if cached is None:
            cached = self._maybe_promote(key, self._tables[key])
        step = max(1, int(chunk_rows))
        for start in range(0, self.n, step):
            stop = min(self.n, start + step)
            if cached is not None:
                yield start, cached[start:stop]
            else:
                packed = self._tables[key].packed[start:stop]
                yield start, unpack_rows(packed, self.size, self.bits)

    def full(self, family: str, s: str) -> np.ndarray:
        """The complete ``(n, d)`` member matrix for one string (unpacked)."""
        self.ensure_all(family, s)
        key = (family, s)
        cached = self._cached_unpacked(key)
        if cached is None:
            cached = self._maybe_promote(key, self._tables[key])
        if cached is not None:
            return cached
        return unpack_rows(self._tables[key].packed, self.size, self.bits)

    def packed_nbytes(self) -> int:
        """Resident bytes of the packed member tables (tests/instrumentation)."""
        return sum(table.packed.nbytes for table in self._tables.values())

    # ------------------------------------------------------------------
    # poll family J
    # ------------------------------------------------------------------
    def poll_rows(
        self, xs: Sequence[int], labels: Sequence[int], cache: bool = True
    ) -> np.ndarray:
        """Poll-list rows ``J(x, r)`` for the given pairs.

        ``cache=True`` memoises per ``(x, label)`` pair — right for the
        scalar adversary/dead-poll paths that revisit pairs.  The engine's
        bulk launches pass ``cache=False``: every pair is fresh there, and
        an unbounded per-pair dict would dominate memory at ``n = 10⁶``.
        """
        xs = np.asarray(xs, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.int64)
        if not cache:
            return self._poll_rows_raw(xs, labels).astype(np.int32, copy=False)
        out = np.empty((len(xs), self.size), dtype=np.int32)
        missing = []
        for i, (x, r) in enumerate(zip(xs.tolist(), labels.tolist())):
            row = self._poll_rows.get((x, r))
            if row is None:
                missing.append(i)
            else:
                out[i] = row
        if missing:
            idx = np.asarray(missing, dtype=np.int64)
            out[idx] = self._poll_rows_raw(xs[idx], labels[idx])
            for i in missing:
                self._poll_rows[(int(xs[i]), int(labels[i]))] = out[i].copy()
        return out

    def _poll_rows_raw(self, xs: np.ndarray, labels: np.ndarray) -> np.ndarray:
        if self.use_numpy:
            prefix = encode_parts(self.config.sampler_seed, self._suite.poll.name)
            return first_distinct_rows(
                prefix, [xs, labels], self.size, self.n, dtype=np.int32
            )
        poll_list = self._suite.poll.poll_list
        rows = np.empty((len(xs), self.size), dtype=np.int64)
        for i in range(len(xs)):
            rows[i] = poll_list(int(xs[i]), int(labels[i]))
        return rows

    # ------------------------------------------------------------------
    # batched raw draws (exposed for tests and future samplers)
    # ------------------------------------------------------------------
    def raw_draws(self, family: str, s: str, xs: np.ndarray, counters: np.ndarray) -> np.ndarray:
        """``stable_hash(seed, family, s, x, counter) % n`` for each pair."""
        prefix = encode_parts(self.config.sampler_seed, family, s)
        return batch_digest_mod(prefix, [xs, counters], self.n)


def tables_for(config: AERConfig, use_numpy: Optional[bool] = None) -> VecSamplerTables:
    """The process-local cached table provider for ``config``.

    Mirrors :meth:`AERConfig.shared_samplers`: tables are pure functions of
    the sampler parameters, so reuse across runs is behaviour-neutral and
    buys warmth for benchmark repetitions and sweep workers.
    """
    key = (
        config.n,
        config.quorum_size,
        config.label_space,
        config.sampler_seed,
        use_numpy,
    )
    cached = _PROVIDER_CACHE.get(key)
    if cached is None:
        cached = VecSamplerTables(config, use_numpy=use_numpy)
        _PROVIDER_CACHE.put(key, cached)
    return cached


def prewarm_vec_tables(config: AERConfig) -> VecSamplerTables:
    """Instantiate (and cache) the vectorized table provider for ``config``.

    Sweep workers call this from their initializer, next to the existing
    :func:`repro.core.config.prewarm_samplers`, so that per-spec runs in the
    pool start from a warm provider.
    """
    return tables_for(config)
