"""Array-shaped sampler tables for the vectorized backend.

The message kernel asks the samplers scalar questions (``is y in I(s, x)?``)
millions of times; the vectorized engine instead wants whole tables as
``(rows, d)`` integer matrices it can gather from.  :class:`VecSamplerTables`
provides them, bit-identical to the Python samplers, through two paths:

* **sampler path** (small ``n``): rows are copied straight out of the shared
  :class:`~repro.core.config.SamplerSuite`, so identity with the message
  backend is true by construction (and the suite's LRU tables stay warm for
  any message-backend run of the same config);
* **hash path** (large ``n``): rows come from
  :mod:`repro.vec.hashing`'s batched blake2b, which
  ``tests/test_vec_hashing.py`` pins bit-identical to the samplers' draws.

Providers are cached per process (keyed by the sampler parameters) so bench
repetitions and sweep workers reuse the expensive full tables, mirroring
``AERConfig.shared_samplers``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import AERConfig
from repro.samplers.tables import LRUCache
from repro.vec.hashing import batch_digest_mod, encode_parts, first_distinct_rows

#: below this system size the exact Python samplers are cheaper than spinning
#: up the batched-hash machinery (both paths produce identical rows)
NUMPY_MIN_N = 1024

#: process-local provider cache (tables are tens of MB at large ``n``)
_PROVIDER_CACHE: LRUCache = LRUCache(4)


class _FamilyTable:
    """Lazily row-materialised member matrix for one ``(family, string)``."""

    __slots__ = ("members", "built")

    def __init__(self, n: int, size: int) -> None:
        self.members = np.zeros((n, size), dtype=np.int32)
        self.built = np.zeros(n, dtype=bool)


class VecSamplerTables:
    """Quorum/poll membership as integer matrices, shared across runs.

    ``family`` is ``"I"`` (push quorums) or ``"H"`` (pull quorums); poll
    rows (``J``) are keyed by ``(node, label)`` pairs.  All rows are sorted
    tuples of distinct members — the samplers' canonical representation.
    """

    def __init__(self, config: AERConfig, use_numpy: Optional[bool] = None) -> None:
        self.config = config
        self.n = config.n
        self.size = min(config.quorum_size, config.n)
        self.use_numpy = config.n >= NUMPY_MIN_N if use_numpy is None else use_numpy
        self._suite = config.shared_samplers()
        self._tables: Dict[Tuple[str, str], _FamilyTable] = {}
        self._poll_rows: Dict[Tuple[int, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    # quorum families I and H
    # ------------------------------------------------------------------
    def _sampler(self, family: str):
        return self._suite.push if family == "I" else self._suite.pull

    def _table(self, family: str, s: str) -> _FamilyTable:
        key = (family, s)
        table = self._tables.get(key)
        if table is None:
            table = _FamilyTable(self.n, self.size)
            self._tables[key] = table
        return table

    def ensure_rows(self, family: str, s: str, xs: np.ndarray) -> None:
        """Materialise the quorum rows for the nodes in ``xs`` (idempotent)."""
        table = self._table(family, s)
        missing = np.asarray(xs, dtype=np.int64)
        missing = np.unique(missing[~table.built[missing]])
        if len(missing) == 0:
            return
        if self.use_numpy:
            prefix = encode_parts(self.config.sampler_seed, family, s)
            rows = first_distinct_rows(prefix, [missing], self.size, self.n)
            table.members[missing] = rows
        else:
            quorum = self._sampler(family).table(s).quorum
            for x in missing:
                table.members[x] = quorum(int(x))
        table.built[missing] = True

    def rows(self, family: str, s: str, xs: np.ndarray) -> np.ndarray:
        """Member rows for the nodes in ``xs`` as an ``(len(xs), d)`` matrix."""
        self.ensure_rows(family, s, xs)
        return self._table(family, s).members[np.asarray(xs, dtype=np.int64)]

    def full(self, family: str, s: str) -> np.ndarray:
        """The complete ``(n, d)`` member matrix for one string."""
        table = self._table(family, s)
        if not table.built.all():
            self.ensure_rows(family, s, np.arange(self.n))
        return table.members

    # ------------------------------------------------------------------
    # poll family J
    # ------------------------------------------------------------------
    def poll_rows(self, xs: Sequence[int], labels: Sequence[int]) -> np.ndarray:
        """Poll-list rows ``J(x, r)`` for the given pairs, cached per pair."""
        xs = np.asarray(xs, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.int64)
        out = np.empty((len(xs), self.size), dtype=np.int32)
        cache = self._poll_rows
        missing = []
        for i, (x, r) in enumerate(zip(xs.tolist(), labels.tolist())):
            row = cache.get((x, r))
            if row is None:
                missing.append(i)
            else:
                out[i] = row
        if missing:
            idx = np.asarray(missing, dtype=np.int64)
            if self.use_numpy:
                prefix = encode_parts(self.config.sampler_seed, self._suite.poll.name)
                rows = first_distinct_rows(prefix, [xs[idx], labels[idx]], self.size, self.n)
                out[idx] = rows
            else:
                poll_list = self._suite.poll.poll_list
                for i in missing:
                    out[i] = poll_list(int(xs[i]), int(labels[i]))
            for i in missing:
                cache[(int(xs[i]), int(labels[i]))] = out[i].copy()
        return out

    # ------------------------------------------------------------------
    # batched raw draws (exposed for tests and future samplers)
    # ------------------------------------------------------------------
    def raw_draws(self, family: str, s: str, xs: np.ndarray, counters: np.ndarray) -> np.ndarray:
        """``stable_hash(seed, family, s, x, counter) % n`` for each pair."""
        prefix = encode_parts(self.config.sampler_seed, family, s)
        return batch_digest_mod(prefix, [xs, counters], self.n)


def tables_for(config: AERConfig, use_numpy: Optional[bool] = None) -> VecSamplerTables:
    """The process-local cached table provider for ``config``.

    Mirrors :meth:`AERConfig.shared_samplers`: tables are pure functions of
    the sampler parameters, so reuse across runs is behaviour-neutral and
    buys warmth for benchmark repetitions and sweep workers.
    """
    key = (
        config.n,
        config.quorum_size,
        config.label_space,
        config.sampler_seed,
        use_numpy,
    )
    cached = _PROVIDER_CACHE.get(key)
    if cached is None:
        cached = VecSamplerTables(config, use_numpy=use_numpy)
        _PROVIDER_CACHE.put(key, cached)
    return cached


def prewarm_vec_tables(config: AERConfig) -> VecSamplerTables:
    """Instantiate (and cache) the vectorized table provider for ``config``.

    Sweep workers call this from their initializer, next to the existing
    :func:`repro.core.config.prewarm_samplers`, so that per-spec runs in the
    pool start from a warm provider.
    """
    return tables_for(config)
