"""Vectorized whole-round AER engine (``backend="vectorized"``).

The message kernel simulates AER one Python dispatch per message; this
module simulates the same synchronous execution as a handful of numpy array
passes per round.  The unit of state is not the node but the **poll row** —
one launched poll ``(origin, candidate, label)`` with its poll list
``J(origin, label)`` as a ``(rows, d)`` integer matrix (the pull quorum
``H(candidate, origin)`` is re-gathered from the packed tables when a phase
needs it).  Everything the pull phase does (serving, the two
forwarding hops, answering, deciding) is expressible as gathers, masked
sums and ``bincount`` scatter-adds over those matrices, because of one
structural fact: all recipients of one poll's Fw1 stream observe the *same*
set of forwarding senders, so the first-hop vote count is a per-row scalar
rather than per-(row, member) state.

Memory model (ARCHITECTURE.md "vec memory model") — the ``n = 10⁶``
contract.  Nothing scales worse than ``O(n·d)`` and every super-constant
temporary is chunked under an explicit byte budget (``vec_memory_mb``):

* member tables are bit-packed (:mod:`repro.vec.bitpack`) and unpacked in
  budget-sized chunks, with a byte-budgeted LRU for hot strings;
* the Fw1/Fw2 fan-outs never materialise ``(rows, d, d)`` gathers: because
  every recipient set ``H(s, t)`` depends only on the target ``t``, both
  hops reduce to per-target weights (``bincount`` over flattened target
  indices) gathered once per *unique* active target;
* per-node RNG streams are replayed lazily from a draw counter instead of
  holding ``n`` ``random.Random`` objects (the old dominant term);
* poll-row state is int32/bit-packed and built in batch blocks, not one
  Python array per row; pull-quorum rows are never duplicated into the row
  state — they stay bit-packed in the tables and are re-gathered per serve
  chunk.

Equivalence contract (ARCHITECTURE.md "engine backends"):

* on the draw-order-compatible subset — adversaries in
  :data:`VEC_ADVERSARIES` minus ``cornering*``, synchronous, non-rushing,
  ``eager_pull``, no trace — results are **bit-identical** to
  :func:`repro.runner.run_aer` (same ``SimulationResult``, same metrics,
  same decision rounds), pinned by the golden backend tests; the bits are
  also invariant to ``vec_memory_mb`` (chunk sizes change, sums do not);
* ``cornering``/``cornering_nodelay`` are supported **statistically** only:
  the message kernel merges second-hop votes for one ``(origin,
  candidate)`` across poll labels, while rows here are per-label, so
  per-bit metrics may differ slightly (agreement/decisions still hold) —
  pinned by the ``python -m repro equivalence --mode statistical``
  CI-overlap harness;
* everything else (async mode, rushing, tracing, the remaining adversary
  strategies) is rejected loudly with ``ValueError``.

The deterministic RNG streams are replayed exactly: each correct node's
private ``derive_rng(seed, "node", i)`` stream is consumed in the same
order as in the kernel (one ``randrange`` per launched poll, in delivery
order of the push crossings), and the adversary's strategy object is driven
through a capture context so its own RNG usage is identical.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional, Tuple

import numpy as np

# Importing the package registers every built-in adversary strategy.
import repro.adversary  # noqa: F401
from repro.adversary.base import AdversaryKnowledge
from repro.adversary.registry import resolve_adversary
from repro.core.config import AERConfig
from repro.core.messages import PollMessage, PullMessage, PushMessage
from repro.core.scenario import AERScenario
from repro.net.metrics import MetricsSummary
from repro.net.results import SimulationResult
from repro.net.rng import derive_rng
from repro.vec.bitpack import BitMatrix
from repro.vec.tables import VecSamplerTables, tables_for

#: adversary strategies the vectorized backend can replay.  ``cornering`` and
#: ``cornering_nodelay`` are statistical-equivalence only (see module docs);
#: the rest are exact.
VEC_ADVERSARIES: Tuple[str, ...] = (
    "none",
    "silent",
    "push_flood",
    "quorum_flood",
    "cornering",
    "cornering_nodelay",
)

#: default per-run temporary-memory budget (MB) when ``vec_memory_mb`` is not
#: given.  Generous enough that n ≤ 10⁵ runs keep their hot tables unpacked
#: (the pre-budget behaviour); n = 10⁶ streams chunked unpacks under it.
DEFAULT_VEC_MEMORY_MB = 512.0


class _CaptureContext:
    """Adversary-facing stand-in for :class:`repro.net.kernel.AdversaryContext`.

    The built-in strategies act only at round 0 of a synchronous run (their
    ``on_start`` / non-rushing ``on_round(0, None)`` hooks) and depend only
    on their :class:`AdversaryKnowledge` and their RNG.  Driving the *real*
    strategy object against this context therefore reproduces its message
    records and RNG consumption exactly; the engine then folds the records
    into its array state instead of delivering them one by one.
    """

    def __init__(self, n: int, byzantine_ids: frozenset, seed: int) -> None:
        self.n = n
        self.rng = derive_rng(seed, "adversary")
        self._byzantine_ids = byzantine_ids
        #: captured ``(byz_id, dest, message)`` sends, in dispatch order
        self.records: List[tuple] = []

    def now(self) -> float:
        return 0.0

    def send_as(self, byz_id: int, dest: int, message) -> None:
        if byz_id not in self._byzantine_ids:
            raise PermissionError(
                f"adversary tried to forge sender id {byz_id}, which it does not control"
            )
        self.records.append((byz_id, dest, message))


def _capture_adversary_records(
    adversary_name: str,
    scenario: AERScenario,
    config: AERConfig,
    seed: int,
) -> List[tuple]:
    """Round-0 message records of the named adversary, in dispatch order."""
    if adversary_name == "none":
        return []
    samplers = config.shared_samplers()
    knowledge = AdversaryKnowledge(config=config, samplers=samplers, scenario=scenario)
    adversary = resolve_adversary(adversary_name, scenario.byzantine_ids, knowledge)
    if adversary is None:
        return []
    context = _CaptureContext(scenario.n, frozenset(adversary.byzantine_ids), seed)
    adversary.bind(context)
    adversary.on_start()
    adversary.on_round(0, None)  # non-rushing synchronous turn
    return context.records


def _summary_from_arrays(
    n: int,
    sent_msgs: np.ndarray,
    sent_bits: np.ndarray,
    recv_bits: np.ndarray,
    decision_times: Dict[int, float],
    rounds: int,
    restrict_to: Optional[List[int]],
) -> MetricsSummary:
    """Columnar equivalent of :meth:`repro.net.metrics.MetricsCollector.summary`.

    Totals always cover every sender; per-node statistics cover
    ``restrict_to`` (or all of ``[0, n)``), exactly like the collector.  All
    values are converted to Python ints/floats so the summary serialises
    identically to the message backend's.
    """
    total_bits_arr = sent_bits + recv_bits
    if restrict_to is None:
        node_ids = list(range(n))
        decisions = dict(decision_times)
    else:
        node_ids = list(restrict_to)
        keep = set(restrict_to)
        decisions = {i: t for i, t in decision_times.items() if i in keep}
    loads = [int(total_bits_arr[i]) for i in node_ids]
    per_node = dict(zip(node_ids, loads))
    if not loads:
        loads = [0]
    median_load = statistics.median(loads)
    mean_load = statistics.fmean(loads)
    max_load = max(loads)
    return MetricsSummary(
        n=n,
        total_messages=int(sent_msgs.sum()),
        total_bits=int(sent_bits.sum()),
        amortized_bits=int(sent_bits.sum()) / max(1, n),
        max_node_bits=max_load,
        median_node_bits=median_load,
        mean_node_bits=mean_load,
        load_imbalance=max_load / max(1.0, median_load),
        rounds=rounds,
        span=None,
        decision_times=decisions,
        per_node_bits=per_node,
    )


class _RowBatch:
    """One contiguous block of poll rows staged before the round-1 freeze."""

    __slots__ = ("origins", "sid", "start", "jmem", "polled")

    def __init__(self, origins, sid, start, jmem, polled) -> None:
        self.origins = origins      # (k,) int
        self.sid = sid              # one sid per batch
        self.start = start
        self.jmem = jmem            # (k, d) int32
        self.polled = polled        # None (all True) or (k, d) bool


class _VecRun:
    """Array state of one vectorized synchronous AER execution."""

    def __init__(
        self,
        scenario: AERScenario,
        config: AERConfig,
        adversary_name: str,
        seed: int,
        max_rounds: int,
        tables: VecSamplerTables,
        memory_mb: Optional[float] = None,
    ) -> None:
        self.scenario = scenario
        self.config = config
        self.adversary_name = adversary_name
        self.seed = seed
        self.max_rounds = max_rounds
        self.tables = tables

        n = scenario.n
        self.n = n
        self.size = min(config.quorum_size, n)
        self.thr = self.size // 2 + 1
        size_model = config.size_model()
        self._id_bits = size_model.id_bits
        self._label_bits = size_model.label_bits
        self._kind_bits = size_model.kind_bits

        # ---- memory budget ----------------------------------------------
        # All super-constant temporaries are chunked under this budget; the
        # chunk sizes change with it, the bits never do (sums commute).
        if memory_mb is not None and float(memory_mb) <= 0:
            raise ValueError(f"vec_memory_mb must be positive, got {memory_mb!r}")
        self.memory_mb = float(memory_mb) if memory_mb is not None else DEFAULT_VEC_MEMORY_MB
        budget = int(self.memory_mb * (1 << 20))
        d = self.size
        # (k, d) row-state gathers: ~48 bytes per (row, member) across the
        # simultaneous temporaries of the serve/fw2/answer phases
        self._gather_chunk = max(1024, budget // (4 * 48 * d))
        # table unpacks: the transient bit matrix is ~(bits + 8) bytes/member
        self._table_chunk = max(1024, budget // (4 * (tables.bits + 8) * d))
        # a quarter of the budget backs the shared unpacked-table LRU, so hot
        # strings whose full (n, d) table fits stay gather-fast
        tables.set_unpacked_budget(budget // 4)

        # ---- population -------------------------------------------------
        self.is_correct = np.zeros(n, dtype=bool)
        self.is_correct[scenario.correct_ids] = True
        self.correct = np.asarray(scenario.correct_ids, dtype=np.int64)

        # ---- candidate strings as small integers ("sids") ---------------
        self.sid_of: Dict[str, int] = {}
        self.strings: List[str] = []
        self.initial_sid = np.full(n, -1, dtype=np.int32)
        for node_id in scenario.correct_ids:
            candidate = scenario.candidates[node_id]
            sid = self.sid_of.get(candidate)
            if sid is None:
                sid = self.sid_of[candidate] = len(self.strings)
                self.strings.append(candidate)
            self.initial_sid[node_id] = sid
        #: per-sid boolean holder masks (correct initial holders)
        self.holders = [self.initial_sid == sid for sid in range(len(self.strings))]

        # ---- per-node protocol state ------------------------------------
        self.D = np.full(n, -1, dtype=np.int32)          # decision round
        self.dec_sid = np.full(n, -1, dtype=np.int32)    # decided sid
        self.answers_sent = np.zeros(n, dtype=np.int64)  # pre-decision answers

        # ---- metrics ----------------------------------------------------
        self.sent_msgs = np.zeros(n, dtype=np.int64)
        self.sent_bits = np.zeros(n, dtype=np.int64)
        self.recv_msgs = np.zeros(n, dtype=np.int64)
        self.recv_bits = np.zeros(n, dtype=np.int64)
        # deliveries staged for the *next* round (discarded if the run ends
        # first, exactly as the kernel never counts undelivered outbox sends)
        self.stage_recv_msgs = np.zeros(n, dtype=np.int64)
        self.stage_recv_bits = np.zeros(n, dtype=np.int64)
        self._dispatched = False  # any send accepted in the current round

        # ---- poll rows (batch blocks until round-1 finalization) --------
        self._batches: List[_RowBatch] = []

        # staged per-row arrival effects, applied at the start of the next
        # round (phase A); all built after the round-1 finalization
        self.rows = 0
        self._stage_sv: List[tuple] = []    # (row_indices, counts)
        self._stage_fw2: List[tuple] = []   # (row_indices, (k, d) occ)
        self._stage_ans: List[np.ndarray] = []  # row_indices, one per answer

        #: per-node private draw counters — the node's ``derive_rng(seed,
        #: "node", x)`` stream is re-derived and fast-forwarded on demand,
        #: replacing the old dict of n live ``random.Random`` objects
        self._draw_count = np.zeros(n, dtype=np.int32)
        #: per-sid push votes at every node, kept from round 0 for round 1
        self._push_votes: List[np.ndarray] = []
        #: adversary push records grouped as {(dest, candidate): [(idx, byz)]}
        self._adv_pushes: Dict[tuple, List[tuple]] = {}

    # ------------------------------------------------------------------
    # bit costs (mirror repro.core.messages exactly)
    # ------------------------------------------------------------------
    def _push_bits(self, s: str) -> int:
        return self._kind_bits + len(s)

    def _poll_bits(self, s: str) -> int:
        return self._kind_bits + len(s) + self._label_bits

    _pull_bits = _poll_bits

    def _fw1_bits(self, s: str) -> int:
        return self._kind_bits + 2 * self._id_bits + len(s) + self._label_bits

    def _fw2_bits(self, s: str) -> int:
        return self._kind_bits + self._id_bits + len(s) + self._label_bits

    def _answer_bits(self, s: str) -> int:
        return self._kind_bits + len(s)

    # ------------------------------------------------------------------
    # lazy per-node RNG replay
    # ------------------------------------------------------------------
    def _draw_label(self, x: int) -> int:
        """The node's next private label draw, replayed from its counter.

        Bit-identical to holding the node's ``derive_rng`` stream open: the
        k-th call re-derives the stream and discards the first k-1 draws
        (every draw in both backends is exactly one ``randrange``).
        """
        rng = derive_rng(self.seed, "node", x)
        space = self.config.label_space
        done = int(self._draw_count[x])
        for _ in range(done):
            rng.randrange(space)
        self._draw_count[x] = done + 1
        return rng.randrange(space)

    # ------------------------------------------------------------------
    # round 0: on_start of every correct node + the adversary's turn
    # ------------------------------------------------------------------
    def _make_row(
        self,
        origin: int,
        sid: int,
        start: int,
        jmem: np.ndarray,
        polled: np.ndarray,
    ) -> None:
        """Append one adversary-shaped row as a single-row batch."""
        self._batches.append(
            _RowBatch(
                np.asarray([origin], dtype=np.int32),
                int(sid),
                start,
                jmem.astype(np.int32, copy=False).reshape(1, -1),
                polled.reshape(1, -1),
            )
        )

    def _stage_poll_pull_recv(self, jmem: np.ndarray, hmem: np.ndarray, s: str) -> None:
        """Stage next-round deliveries of one poll's Poll and Pull multicasts."""
        np.add.at(self.stage_recv_msgs, jmem, 1)
        np.add.at(self.stage_recv_bits, jmem, self._poll_bits(s))
        np.add.at(self.stage_recv_msgs, hmem, 1)
        np.add.at(self.stage_recv_bits, hmem, self._pull_bits(s))

    def _launch_polls(self, xs: np.ndarray, sids: np.ndarray, labels: np.ndarray, start: int) -> None:
        """Create live rows for polls launched by ``xs`` and account their sends."""
        if len(xs) == 0:
            return
        jmem_all = self.tables.poll_rows(xs, labels, cache=False)
        for sid in np.unique(sids):
            s = self.strings[int(sid)]
            sel = np.nonzero(sids == sid)[0]
            jmem = jmem_all[sel]
            # the pull-quorum rows are *not* stored: H(s, origin) lives in
            # the packed tables and the serve phase re-gathers it from there
            hmem = self.tables.rows("H", s, xs[sel])
            self._batches.append(
                _RowBatch(xs[sel].astype(np.int32), int(sid), start, jmem, None)
            )
            self.sent_msgs[xs[sel]] += 2 * self.size
            self.sent_bits[xs[sel]] += self.size * (self._poll_bits(s) + self._pull_bits(s))
            recv = np.bincount(jmem.ravel(), minlength=self.n)
            self.stage_recv_msgs += recv
            self.stage_recv_bits += recv * self._poll_bits(s)
            recv = np.bincount(hmem.ravel(), minlength=self.n)
            self.stage_recv_msgs += recv
            self.stage_recv_bits += recv * self._pull_bits(s)
        self._dispatched = True

    def _round0(self) -> None:
        n = self.n
        # Push diffusion: every correct holder of s pushes to I⁻¹(s, ·); the
        # votes gathered at each node double as the staged push deliveries.
        # The I table streams through in budget-sized chunks — the full
        # (n, d) matrix is never resident.
        for sid, s in enumerate(self.strings):
            holders = self.holders[sid]
            push_bits = self._push_bits(s)
            votes = np.zeros(n, dtype=np.int64)
            targets_per_sender = np.zeros(n, dtype=np.int64)
            for start, rows in self.tables.iter_rows("I", s, self._table_chunk):
                votes[start : start + len(rows)] = holders[rows].sum(axis=1)
                targets_per_sender += np.bincount(rows.ravel(), minlength=n)
            self.sent_msgs[holders] += targets_per_sender[holders]
            self.sent_bits[holders] += targets_per_sender[holders] * push_bits
            self.stage_recv_msgs += votes
            self.stage_recv_bits += votes * push_bits
            self._push_votes.append(votes)

        # Eager pull: every correct node polls its own candidate.  The label
        # is the node's first private RNG draw, exactly as in the kernel.
        labels = np.asarray(
            [self._draw_label(x) for x in self.correct.tolist()], dtype=np.int64
        )
        self._launch_polls(self.correct, self.initial_sid[self.correct], labels, start=0)

        self._adversary_round0()

    def _adversary_round0(self) -> None:
        records = _capture_adversary_records(
            self.adversary_name, self.scenario, self.config, self.seed
        )
        if not records:
            return
        # cornering bookkeeping: Poll records mark polled victims, Pull
        # records trigger (deduplicated) proxy serves
        poll_marks: Dict[tuple, List[int]] = {}
        pull_keys: List[tuple] = []
        for idx, (byz_id, dest, message) in enumerate(records):
            if isinstance(message, PushMessage):
                bits = self._push_bits(message.candidate)
                key = (dest, message.candidate)
                self._adv_pushes.setdefault(key, []).append((idx, byz_id))
            elif isinstance(message, PollMessage):
                bits = self._poll_bits(message.candidate)
                poll_marks.setdefault((byz_id, message.label, message.candidate), []).append(dest)
            elif isinstance(message, PullMessage):
                bits = self._pull_bits(message.candidate)
                key = (byz_id, message.label, message.candidate)
                if key not in pull_keys:
                    pull_keys.append(key)
            else:  # pragma: no cover - no built-in strategy sends other kinds
                raise NotImplementedError(
                    f"vectorized backend cannot replay {type(message).__name__}"
                )
            self.sent_msgs[byz_id] += 1
            self.sent_bits[byz_id] += bits
            self.stage_recv_msgs[dest] += 1
            self.stage_recv_bits[dest] += bits
        self._dispatched = True

        # One row per distinct (origin, label, candidate) pull request: the
        # proxies in H(candidate, origin) serve each such key exactly once.
        for byz_id, label, candidate in pull_keys:
            sid = self.sid_of.get(candidate)
            if sid is None:
                continue  # no correct node believes it: the request is inert
            jmem = self.tables.poll_rows([byz_id], [label])[0]
            polled = np.zeros(self.size, dtype=bool)
            for victim in poll_marks.get((byz_id, label, candidate), ()):
                polled |= jmem == victim
            self._make_row(int(byz_id), int(sid), 0, jmem, polled)

    # ------------------------------------------------------------------
    # round 1: push deliveries, acceptances, new polls
    # ------------------------------------------------------------------
    def _round1_acceptances(self) -> None:
        """Replay round 1's push crossings in the kernel's delivery order.

        At each node the pushes arrive sender-ascending (the round-0 dispatch
        order), so an acceptance of string ``s`` happens at the arrival of
        the ``thr``-th correct holder in ``I(s, x)`` — and the node's label
        draws for its newly started polls follow that per-node order, with
        adversary-forced acceptances (whose records were dispatched after
        every correct multicast) strictly last, in record order.
        """
        events: List[tuple] = []  # (node, phase, order key, sid-or-candidate)
        for sid, s in enumerate(self.strings):
            votes = self._push_votes[sid]
            acc = (votes >= self.thr) & self.is_correct & (self.initial_sid != sid)
            xs = np.nonzero(acc)[0]
            if len(xs) == 0:
                continue
            rows_xs = self.tables.rows("I", s, xs)
            arrival = self.holders[sid][rows_xs]  # (k, d): senders ascending
            cum = np.cumsum(arrival, axis=1)
            pos = np.argmax(cum == self.thr, axis=1)
            crossing_sender = rows_xs[np.arange(len(xs)), pos]
            for x, y in zip(xs.tolist(), crossing_sender.tolist()):
                events.append((x, 0, int(y), sid))

        if self._adv_pushes:
            push_sampler = self.config.shared_samplers().push
            for (dest, candidate), recs in self._adv_pushes.items():
                if candidate in self.sid_of:
                    raise NotImplementedError(
                        "vectorized backend: adversary pushed a string also held "
                        "by correct nodes; use backend='message' for this case"
                    )
                if not self.is_correct[dest]:
                    continue
                seen = set()
                crossing_idx = None
                for idx, byz_id in recs:
                    if byz_id in seen:
                        continue
                    if push_sampler.contains(candidate, dest, byz_id):
                        seen.add(byz_id)
                        if len(seen) == self.thr:
                            crossing_idx = idx
                            break
                if crossing_idx is not None:
                    events.append((int(dest), 1, crossing_idx, candidate))

        events.sort(key=lambda event: (event[0], event[1], event[2]))
        live_xs: List[int] = []
        live_sids: List[int] = []
        live_labels: List[int] = []
        for x, phase, _key, payload in events:
            label = self._draw_label(x)
            if phase == 0:
                live_xs.append(x)
                live_sids.append(payload)
                live_labels.append(label)
            else:
                self._dead_poll(x, payload, label)
        self._launch_polls(
            np.asarray(live_xs, dtype=np.int64),
            np.asarray(live_sids, dtype=np.int64),
            np.asarray(live_labels, dtype=np.int64),
            start=1,
        )

    def _dead_poll(self, x: int, candidate: str, label: int) -> None:
        """A poll for an adversary-forced string no correct node will ever believe.

        The poll's own sends and next-round deliveries are accounted, but no
        row is created: without believers in ``H(candidate, ·)`` the request
        is never served, so it generates no further traffic — the kernel
        leaves exactly the same inert pending state behind.
        """
        suite = self.config.shared_samplers()
        jmem = np.asarray(suite.poll.poll_list(x, label), dtype=np.int64)
        hmem = np.asarray(suite.pull.quorum(candidate, x), dtype=np.int64)
        self.sent_msgs[x] += 2 * self.size
        self.sent_bits[x] += self.size * (self._poll_bits(candidate) + self._pull_bits(candidate))
        self._stage_poll_pull_recv(jmem, hmem, candidate)
        self._dispatched = True

    def _finalize_rows(self) -> None:
        """Freeze the poll-row SoA; no further rows appear after round 1."""
        rows = sum(len(batch.origins) for batch in self._batches)
        self.rows = rows
        d = self.size
        self.r_origin = np.zeros(rows, dtype=np.int32)
        self.r_sid = np.zeros(rows, dtype=np.int32)
        self.r_start = np.zeros(rows, dtype=np.int32)
        self.r_jmem = np.zeros((rows, d), dtype=np.int32)
        self.r_polled = BitMatrix(rows, d)
        pos = 0
        for batch in self._batches:
            block = slice(pos, pos + len(batch.origins))
            self.r_origin[block] = batch.origins
            self.r_sid[block] = batch.sid
            self.r_start[block] = batch.start
            self.r_jmem[block] = batch.jmem
            if batch.polled is None:
                self.r_polled.fill_rows(block)
            else:
                self.r_polled.set_rows(block, batch.polled)
            pos += len(batch.origins)
        self._batches = None  # type: ignore[assignment]
        self.r_sv = np.zeros(rows, dtype=np.int64)
        self.r_crossed = np.full(rows, -1, dtype=np.int32)
        self.r_fw2 = np.zeros((rows, d), dtype=np.int32)
        self.r_answered = BitMatrix(rows, d)
        self.r_ans = np.zeros(rows, dtype=np.int64)
        #: answer bit cost per sid, for the mixed-sid answer phase
        self._ans_bits_by_sid = np.asarray(
            [self._answer_bits(s) for s in self.strings], dtype=np.int64
        )

    # ------------------------------------------------------------------
    # shared predicates
    # ------------------------------------------------------------------
    def _bel(self, sid: int) -> np.ndarray:
        """Who currently believes string ``sid`` (undecided holders + deciders)."""
        return ((self.initial_sid == sid) & (self.D == -1)) | (self.dec_sid == sid)

    def _all_decided(self) -> bool:
        return bool((self.D[self.correct] != -1).all())

    # ------------------------------------------------------------------
    # the round loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        self._round0()
        rnd = 0
        decided_round: Optional[int] = None
        while not self._all_decided() and rnd < self.max_rounds:
            if not self._dispatched and rnd > 0:
                break  # quiescent, exactly like the kernel's empty-outbox exit
            rnd += 1
            self._advance(rnd)
            if decided_round is None and self._all_decided():
                decided_round = rnd
        rounds = decided_round if decided_round is not None else rnd
        return self._result(rounds)

    def _advance(self, rnd: int) -> None:
        self._dispatched = False
        # -- phase A: deliver everything staged during the previous round --
        self.recv_msgs += self.stage_recv_msgs
        self.recv_bits += self.stage_recv_bits
        self.stage_recv_msgs.fill(0)
        self.stage_recv_bits.fill(0)
        if rnd == 1:
            self._round1_acceptances()
            self._finalize_rows()
        for rows_idx, counts in self._stage_sv:
            self.r_sv[rows_idx] += counts
        self._stage_sv = []
        for rows_idx, occ in self._stage_fw2:
            self.r_fw2[rows_idx] += occ
        self._stage_fw2 = []
        for rows_idx in self._stage_ans:
            self.r_ans += np.bincount(rows_idx, minlength=self.rows)
        self._stage_ans = []
        newly_crossed = (self.r_crossed == -1) & (self.r_sv >= self.thr)
        self.r_crossed[newly_crossed] = rnd

        new_deciders = self._phase_decide(rnd)
        self._phase_serves(rnd, new_deciders)
        self._phase_fw2(rnd, new_deciders)
        self._phase_answers(rnd)

    def _phase_decide(self, rnd: int) -> np.ndarray:
        """Answer majorities reached this round become decisions (first poll wins)."""
        new_deciders = np.zeros(self.n, dtype=bool)
        eligible = self.r_ans >= self.thr
        if not eligible.any():
            return new_deciders
        origins = self.r_origin
        rows = np.nonzero(
            eligible & self.is_correct[origins] & (self.D[origins] == -1)
        )[0]
        if len(rows) == 0:
            return new_deciders
        deciders, first = np.unique(origins[rows], return_index=True)
        picked = rows[first]
        self.D[deciders] = rnd
        self.dec_sid[deciders] = self.r_sid[picked]
        new_deciders[deciders] = True
        return new_deciders

    def _phase_serves(self, rnd: int, new_deciders: np.ndarray) -> None:
        """Pull serving: believers at arrival, plus deciders flushing pending pulls.

        A proxy in ``H(s, origin)`` serves a pull request the round it
        arrives if it believes ``s`` by the end of that round (same-round
        deciders flush their pending list within the round in the kernel),
        and otherwise the round it later decides ``s``.  Each server of a
        row dispatches the full first-hop fan-out: d Fw1 multicasts of d
        copies each.
        """
        arrivals = self.r_start == rnd - 1
        flush = self.r_start <= rnd - 2
        for sid in np.unique(self.r_sid):
            s = self.strings[int(sid)]
            bel = self._bel(sid)
            late = new_deciders & (self.dec_sid == sid) & (self.initial_sid != sid)
            for window, servers_mask in ((arrivals, bel), (flush, late)):
                if not servers_mask.any():
                    continue
                rsel = np.nonzero(window & (self.r_sid == sid))[0]
                for lo in range(0, len(rsel), self._gather_chunk):
                    rchunk = rsel[lo : lo + self._gather_chunk]
                    # H(s, origin) is re-gathered from the packed tables —
                    # the engine never keeps a (rows, d) pull-quorum matrix
                    hmem = self.tables.rows("H", s, self.r_origin[rchunk])
                    member_mask = servers_mask[hmem]       # (k, d)
                    counts = member_mask.sum(axis=1).astype(np.int64)
                    active = counts > 0
                    if not active.any():
                        continue
                    self._emit_serves(int(sid), rchunk[active], counts[active],
                                      hmem[active], member_mask[active])

    def _emit_serves(
        self,
        sid: int,
        rows_idx: np.ndarray,
        counts: np.ndarray,
        hmem: np.ndarray,
        member_mask: np.ndarray,
    ) -> None:
        """Account one batch of pull serves and stage their Fw1 deliveries.

        The Fw1 fan-out is streamed per *target*: every member of ``H(s,
        t)`` receives one copy per server of every row that polls ``t``, so
        the delivered counts are a gather over the unique active targets
        with per-target weights — no ``(rows, d, d)`` staging matrix.
        """
        s = self.strings[sid]
        d = self.size
        fw1_bits = self._fw1_bits(s)
        fanout = d * d
        servers = hmem[member_mask]  # flat array of serving node ids
        per_server = np.bincount(servers, minlength=self.n)
        self.sent_msgs += per_server * fanout
        self.sent_bits += per_server * (fanout * fw1_bits)
        self._dispatched = True
        self._stage_sv.append((rows_idx, counts))
        # per-target weight: how many server fan-outs reach each poll target.
        # Accumulated one poll-list column at a time so the weights array is
        # never expanded d-fold (float64 sums of small integers are exact).
        targets = self.r_jmem[rows_idx]  # (k, d)
        counts_f = counts.astype(np.float64)
        weight = np.zeros(self.n, dtype=np.float64)
        for j in range(d):
            weight += np.bincount(targets[:, j], weights=counts_f, minlength=self.n)
        active = np.nonzero(weight)[0]
        delivered = np.zeros(self.n, dtype=np.float64)
        for lo in range(0, len(active), self._table_chunk):
            tchunk = active[lo : lo + self._table_chunk]
            h_rows = self.tables.rows("H", s, tchunk)  # (c, d)
            wt = weight[tchunk]
            for j in range(d):
                delivered += np.bincount(h_rows[:, j], weights=wt, minlength=self.n)
        # exact: every accumulated value is an integer far below 2**53
        delivered_int = delivered.astype(np.int64)
        self.stage_recv_msgs += delivered_int
        self.stage_recv_bits += delivered_int * fw1_bits

    def _phase_fw2(self, rnd: int, new_deciders: np.ndarray) -> None:
        """Second-hop forwards: crossing rows fan Fw2 votes out to poll targets.

        For each row whose secondary-vote count reached the threshold this
        round (``crossed == rnd``), every believing member of ``H(s, t)``
        sends one Fw2 to each target ``t`` of the row; rows that crossed
        earlier pick up late votes only from nodes that decided ``s`` this
        round without initially believing it (the kernel's ``on_decided``
        flush of fw1 state).
        """
        for sid in np.unique(self.r_sid):
            bel = self._bel(sid)
            late = new_deciders & (self.dec_sid == sid) & (self.initial_sid != sid)
            batches = (
                ((self.r_crossed == rnd), bel),
                ((self.r_crossed != -1) & (self.r_crossed < rnd), late),
            )
            for window, senders_mask in batches:
                if not senders_mask.any():
                    continue
                rsel = np.nonzero(window & (self.r_sid == sid))[0]
                if len(rsel) == 0:
                    continue
                self._emit_fw2(int(sid), rsel, senders_mask)

    def _emit_fw2(self, sid: int, rows_idx: np.ndarray, senders_mask: np.ndarray) -> None:
        """Stream one Fw2 batch by unique target instead of per-(row, target).

        ``H(s, t)`` depends only on ``t``, so the per-(row, member)
        occupancy is ``cnt[t]`` — the believing-member count of the target's
        pull quorum — gathered once per unique target; and a sender's total
        is its target multiplicity across the batch.
        """
        s = self.strings[sid]
        d = self.size
        n = self.n
        fw2_bits = self._fw2_bits(s)
        # target multiplicity over the whole batch (chunked row gathers)
        mult = np.zeros(n, dtype=np.int64)
        for lo in range(0, len(rows_idx), self._gather_chunk):
            chunk_rows = rows_idx[lo : lo + self._gather_chunk]
            mult += np.bincount(self.r_jmem[chunk_rows].ravel(), minlength=n)
        active = np.nonzero(mult)[0]
        cnt = np.zeros(n, dtype=np.int32)       # believing members of H(s, t)
        per_sender = np.zeros(n, dtype=np.float64)
        for lo in range(0, len(active), self._table_chunk):
            tchunk = active[lo : lo + self._table_chunk]
            h_rows = self.tables.rows("H", s, tchunk)  # (c, d)
            mask = senders_mask[h_rows]
            cnt[tchunk] = mask.sum(axis=1)
            wt = mult[tchunk].astype(np.float64)
            for j in range(d):  # column-wise: no d-fold weight expansion
                kj = mask[:, j]
                if kj.any():
                    per_sender += np.bincount(
                        h_rows[kj, j], weights=wt[kj], minlength=n
                    )
        if not cnt[active].any():
            return  # no believing proxy anywhere: nothing sent, nothing staged
        sender_counts = per_sender.astype(np.int64)  # exact integer values
        self.sent_msgs += sender_counts
        self.sent_bits += sender_counts * fw2_bits
        self._dispatched = True
        for lo in range(0, len(rows_idx), self._gather_chunk):
            chunk_rows = rows_idx[lo : lo + self._gather_chunk]
            targets = self.r_jmem[chunk_rows]  # (k, d)
            occ = cnt[targets]                 # (k, d) int32
            if not occ.any():
                continue
            self._stage_fw2.append((chunk_rows, occ))
            recv = np.bincount(
                targets.ravel(), weights=occ.ravel(), minlength=n
            ).astype(np.int64)
            self.stage_recv_msgs += recv
            self.stage_recv_bits += recv * fw2_bits

    def _phase_answers(self, rnd: int) -> None:
        """Polled nodes whose Fw2 tally crossed the threshold answer their poll.

        An answer for row ``(origin, s, label)`` fires at target ``t`` once
        ``t`` is polled, believes ``s``, has enough Fw2 votes, and has not
        answered that poll yet — subject to the per-node answer budget while
        undecided.  Budget contention is resolved in the kernel's delivery
        order: polls are served per origin in row-creation order.
        """
        grows_parts = []
        gcols_parts = []
        for sid in np.unique(self.r_sid):
            bel = self._bel(sid)
            rsel = np.nonzero((self.r_sid == sid) & (self.r_start <= rnd - 1))[0]
            for lo in range(0, len(rsel), self._gather_chunk):
                rchunk = rsel[lo : lo + self._gather_chunk]
                cond = (
                    (self.r_fw2[rchunk] >= self.thr)
                    & self.r_polled.rows_bool(rchunk)
                    & ~self.r_answered.rows_bool(rchunk)
                    & bel[self.r_jmem[rchunk]]
                )
                rr, cc = np.nonzero(cond)
                if len(rr):
                    grows_parts.append(rchunk[rr].astype(np.int32))
                    gcols_parts.append(cc.astype(np.int16))
        if not grows_parts:
            return
        grows = np.concatenate(grows_parts)
        gcols = np.concatenate(gcols_parts)
        answerers = self.r_jmem[grows, gcols]
        undecided = self.D[answerers] == -1
        budget = self.config.answer_budget
        counts = np.bincount(answerers[undecided], minlength=self.n)
        if not (self.answers_sent + counts > budget).any():
            # Fast path: every candidate answer fits the budget, so which
            # order they spend it in is irrelevant — everything downstream
            # (flag sets, bincount accounting) is order-independent, and the
            # delivery-order lexsort (the peak-memory term of this phase at
            # large n) is skipped entirely.
            self.answers_sent += counts
        else:
            # slow path: walk candidate answers in the kernel's delivery
            # order (per origin, polls in row-creation order), spending the
            # budget answer by answer (exhausted answers are deferred until
            # the node decides, exactly like the kernel)
            order = np.lexsort((grows, self.r_origin[grows]))
            grows = grows[order]
            gcols = gcols[order]
            answerers = answerers[order]
            undecided = undecided[order]
            keep = np.zeros(len(grows), dtype=bool)
            for i in range(len(grows)):
                t = int(answerers[i])
                if not undecided[i]:
                    keep[i] = True
                elif self.answers_sent[t] < budget:
                    keep[i] = True
                    self.answers_sent[t] += 1
            if not keep.any():
                return
            grows = grows[keep]
            gcols = gcols[keep]
            answerers = answerers[keep]
        self.r_answered.set_true(grows, gcols)
        self.sent_msgs += np.bincount(answerers, minlength=self.n)
        origins = self.r_origin[grows]
        self.stage_recv_msgs += np.bincount(origins, minlength=self.n)
        row_sids = self.r_sid[grows]
        for sid in np.unique(row_sids):
            mask = row_sids == sid
            bits = int(self._ans_bits_by_sid[sid])
            self.sent_bits += np.bincount(answerers[mask], minlength=self.n) * bits
            self.stage_recv_bits += np.bincount(origins[mask], minlength=self.n) * bits
        self._stage_ans.append(grows)
        self._dispatched = True

    # ------------------------------------------------------------------
    # result assembly
    # ------------------------------------------------------------------
    def _result(self, rounds: int) -> SimulationResult:
        decided = np.nonzero(self.D != -1)[0]
        decisions = {
            int(x): self.strings[int(self.dec_sid[x])] for x in decided
        }
        decision_times = {int(x): float(self.D[x]) for x in decided}
        correct_ids = list(self.scenario.correct_ids)
        # With adversary "none" the kernel is built with no byzantine ids at
        # all, so the result reports an empty list rather than the scenario's.
        byz_ids = [] if self.adversary_name == "none" else sorted(self.scenario.byzantine_ids)
        metrics = _summary_from_arrays(
            self.n, self.sent_msgs, self.sent_bits, self.recv_bits,
            decision_times, rounds, restrict_to=correct_ids,
        )
        metrics_all = _summary_from_arrays(
            self.n, self.sent_msgs, self.sent_bits, self.recv_bits,
            decision_times, rounds, restrict_to=None,
        )
        return SimulationResult(
            n=self.n,
            correct_ids=correct_ids,
            byzantine_ids=byz_ids,
            decisions=decisions,
            rounds=rounds,
            span=None,
            metrics=metrics,
            metrics_all=metrics_all,
        )


def run_aer_vectorized(
    scenario: AERScenario,
    config: Optional[AERConfig] = None,
    adversary_name: str = "none",
    seed: int = 0,
    max_rounds: int = 64,
    tables: Optional[VecSamplerTables] = None,
    use_numpy: Optional[bool] = None,
    memory_mb: Optional[float] = None,
) -> SimulationResult:
    """Run one synchronous AER execution on the vectorized backend.

    Mirrors the message kernel's ``run_aer_experiment`` execution semantics
    (synchronous, non-rushing, eager pull, no trace) for the adversaries in
    :data:`VEC_ADVERSARIES`; any other combination raises ``ValueError``.

    ``memory_mb`` bounds the engine's temporary working set (the
    ``vec_memory_mb`` spec knob): chunk sizes and the unpacked-table cache
    scale with it, the result bits never depend on it.  ``None`` uses
    :data:`DEFAULT_VEC_MEMORY_MB`.
    """
    if adversary_name not in VEC_ADVERSARIES:
        raise ValueError(
            f"vectorized backend does not support adversary {adversary_name!r}; "
            f"supported: {', '.join(VEC_ADVERSARIES)}"
        )
    if config is None:
        config = AERConfig.for_system(scenario.n)
    if tables is None:
        tables = tables_for(config, use_numpy)
    run = _VecRun(scenario, config, adversary_name, seed, max_rounds, tables,
                  memory_mb=memory_mb)
    return run.run()
