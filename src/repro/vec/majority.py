"""Vectorized ``sample_majority`` baseline (``backend="vectorized"``).

The KLST11-style baseline has a fixed three-beat shape — query a random
sample (round 0), answer queries (round 1), tally answers and decide
(round 2) — so the whole execution collapses into a few ``bincount``/gather
passes once the samples are drawn.  The samples themselves are replayed
through each node's actual ``derive_rng(seed, "node", x).sample(...)`` call,
which keeps the backend bit-identical to the message kernel at the cost of a
Python loop over nodes; at ``n = 10**5`` the protocol's ``Θ(n·√n·log n)``
message complexity dwarfs that loop anyway (AER is the large-``n`` headline,
this baseline is its foil).

Supported adversaries: ``none`` and ``silent`` (Byzantine nodes simply never
answer; every other strategy targets AER's quorum machinery and is rejected).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.baselines.sample_majority import SampleMajorityConfig
from repro.core.scenario import AERScenario
from repro.net.messages import SizeModel
from repro.net.results import SimulationResult
from repro.net.rng import derive_rng
from repro.vec.engine import _summary_from_arrays

#: adversary strategies the vectorized baseline can replay
VEC_MAJORITY_ADVERSARIES = ("none", "silent")

#: sorts above every real string id, so the middle element of a sorted
#: vote row is the majority candidate whenever one exists
_NO_VOTE = np.iinfo(np.int64).max


def _exact_reply_order(S: np.ndarray, is_correct: np.ndarray, budget: int) -> np.ndarray:
    """Which queries get answered when some node's reply budget binds.

    Queries arrive in dispatch order — queriers ascending, each node's
    sample in draw order — and a correct target answers the first
    ``budget`` it receives.  The budget is ``4×`` the expected query count,
    so this path is unreachable in practice; it exists so the exactness
    contract has no asterisk.
    """
    c, k = S.shape
    answered = np.zeros((c, k), dtype=bool)
    remaining: Dict[int, int] = {}
    flat = S.ravel()
    for idx in range(flat.size):
        t = int(flat[idx])
        if not is_correct[t]:
            continue
        left = remaining.get(t, budget)
        if left > 0:
            remaining[t] = left - 1
            answered[idx // k, idx % k] = True
    return answered


def run_sample_majority_vectorized(
    scenario: AERScenario,
    config: Optional[SampleMajorityConfig] = None,
    adversary_name: str = "none",
    seed: int = 0,
    max_rounds: int = 16,
) -> SimulationResult:
    """Run the sampled-majority baseline as columnar array passes.

    Mirrors :func:`repro.baselines.sample_majority.run_sample_majority`
    bit-for-bit for the supported adversaries.
    """
    if adversary_name not in VEC_MAJORITY_ADVERSARIES:
        raise ValueError(
            f"vectorized sample_majority does not support adversary "
            f"{adversary_name!r}; supported: {', '.join(VEC_MAJORITY_ADVERSARIES)}"
        )
    if config is None:
        config = SampleMajorityConfig.for_system(
            scenario.n, string_length=len(scenario.gstring)
        )
    n = scenario.n
    kind_bits = SizeModel(n=n).kind_bits
    correct = np.asarray(scenario.correct_ids, dtype=np.int64)
    c = len(correct)
    is_correct = np.zeros(n, dtype=bool)
    is_correct[correct] = True

    # candidate strings as integer ids, plus each node's answer bit cost
    sid_of: Dict[str, int] = {}
    strings = []
    cand_sid = np.full(n, -1, dtype=np.int64)
    ans_bits_arr = np.zeros(n, dtype=np.int64)
    for x in scenario.correct_ids:
        s = scenario.candidates[x]
        sid = sid_of.setdefault(s, len(strings))
        if sid == len(strings):
            strings.append(s)
        cand_sid[x] = sid
        ans_bits_arr[x] = kind_bits + len(s)

    # round 0: replay every node's sample draw exactly
    k = min(config.sample_size, n - 1) if n > 1 else 0
    base = list(range(n))
    S = np.empty((c, k), dtype=np.int64)
    for i, x in enumerate(scenario.correct_ids):
        rng = derive_rng(seed, "node", x)
        S[i] = rng.sample(base[:x] + base[x + 1 :], k)

    sent_msgs = np.zeros(n, dtype=np.int64)
    sent_bits = np.zeros(n, dtype=np.int64)
    recv_msgs = np.zeros(n, dtype=np.int64)
    recv_bits = np.zeros(n, dtype=np.int64)
    decision_times: Dict[int, float] = {}
    decisions: Dict[int, str] = {}

    queries_dispatched = c > 0 and k > 0
    if queries_dispatched:
        sent_msgs[correct] += k
        sent_bits[correct] += k * kind_bits

    rnd = 0
    answers_dispatched = False
    if queries_dispatched and max_rounds >= 1:
        # round 1: queries delivered, correct targets dispatch answers
        rnd = 1
        q_counts = np.bincount(S.ravel(), minlength=n)
        recv_msgs += q_counts
        recv_bits += q_counts * kind_bits
        budget = config.reply_budget
        if (q_counts[correct] > budget).any():
            answered = _exact_reply_order(S, is_correct, budget)
            replies = np.bincount(S.ravel()[answered.ravel()], minlength=n)
        else:
            answered = is_correct[S]
            replies = np.where(is_correct, q_counts, 0)
        sent_msgs += replies
        sent_bits += replies * ans_bits_arr
        answers_dispatched = bool(replies.any())
    if answers_dispatched and max_rounds >= 2:
        # round 2: answers delivered, queriers tally and decide
        rnd = 2
        peer_bits = np.where(answered, ans_bits_arr[S], 0)
        recv_msgs[correct] += answered.sum(axis=1)
        recv_bits[correct] += peer_bits.sum(axis=1)
        votes = np.where(answered, cand_sid[S], _NO_VOTE)
        votes.sort(axis=1)
        mid = votes[:, k // 2]
        count = (votes == mid[:, None]).sum(axis=1)
        decide = (count > k // 2) & (mid != _NO_VOTE)
        for i in np.nonzero(decide)[0]:
            x = int(correct[i])
            decisions[x] = strings[int(mid[i])]
            decision_times[x] = 2.0

    all_decided = c > 0 and len(decisions) == c
    rounds = rnd if all_decided or rnd else 0

    correct_ids = list(scenario.correct_ids)
    byz_ids = [] if adversary_name == "none" else sorted(scenario.byzantine_ids)
    return SimulationResult(
        n=n,
        correct_ids=correct_ids,
        byzantine_ids=byz_ids,
        decisions=decisions,
        rounds=rounds,
        span=None,
        metrics=_summary_from_arrays(
            n, sent_msgs, sent_bits, recv_bits, decision_times, rounds,
            restrict_to=correct_ids,
        ),
        metrics_all=_summary_from_arrays(
            n, sent_msgs, sent_bits, recv_bits, decision_times, rounds,
            restrict_to=None,
        ),
    )
