"""Batched blake2b sampler draws, bit-identical to :func:`repro.net.rng.stable_hash`.

The samplers draw quorum members as ``stable_hash(seed, name, s, x, counter)
% n`` — a 16-byte blake2b digest over length-prefixed ``repr`` encodings.
Every message hashed this way is far below one blake2b block (128 bytes), so
a draw is exactly **one** compression of a zero-padded block with the final
flag set.  This module evaluates millions of such compressions at once: the
message buffers live in a ``(batch, 128)`` uint8 matrix, the compression
state in sixteen uint64 lanes of ``batch`` elements, and the twelve blake2b
rounds run as vectorized uint64 arithmetic.

Bit-identity is non-negotiable — the whole vectorized backend inherits its
exactness guarantee from these draws matching ``hashlib`` — so anything the
fast path cannot represent (a message longer than one block, a row that
needs more counter draws than were batched) falls back to ``hashlib``
per-row.  ``tests/test_vec_hashing.py`` pins the equivalence directly
against the Python samplers.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

import numpy as np

#: blake2b initialisation vector (RFC 7693, section 2.6)
_IV = (
    0x6A09E667F3BCC908,
    0xBB67AE8584CAA73B,
    0x3C6EF372FE94F82B,
    0xA54FF53A5F1D36F1,
    0x510E527FADE682D1,
    0x9B05688C2B3E6C1F,
    0x1F83D9ABFB41BD6B,
    0x5BE0CD19137E2179,
)

#: parameter-block word 0 for digest_size=16, key=0, fanout=1, depth=1
_PARAM0 = 0x01010010

#: blake2b message schedule (RFC 7693, section 2.7)
_SIGMA = (
    (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15),
    (14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3),
    (11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4),
    (7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8),
    (9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13),
    (2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9),
    (12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11),
    (13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10),
    (6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5),
    (10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0),
)

#: the quarter-round wiring of one blake2b round: four columns, four diagonals
_MIX = (
    (0, 4, 8, 12),
    (1, 5, 9, 13),
    (2, 6, 10, 14),
    (3, 7, 11, 15),
    (0, 5, 10, 15),
    (1, 6, 11, 12),
    (2, 7, 8, 13),
    (3, 4, 9, 14),
)

#: messages per compression batch — sized so the 16 state lanes, the 16
#: message lanes and the scratch lane (~8.5 MiB at 2**15) stay cache-resident
_BATCH = 1 << 15

#: reusable uint64 workspace (17 lanes of ``_BATCH``), allocated on first use;
#: temporaries this size would otherwise be mmap'd and faulted per operation
_WORKSPACE: List[np.ndarray] = []

#: reusable ``(_BATCH, 128)`` message buffer, allocated on first use — a
#: table build at ``n = 10⁶`` runs thousands of compression batches per
#: round-trip, and re-zeroing one resident buffer beats allocating (and
#: page-faulting) a fresh one per batch
_MSG_BUF: List[np.ndarray] = []


def encode_parts(*parts: object) -> bytes:
    """The canonical length-prefixed encoding of :func:`repro.net.rng.absorb`."""
    out = bytearray()
    for part in parts:
        encoded = repr(part).encode("utf-8")
        out += len(encoded).to_bytes(4, "big")
        out += encoded
    return bytes(out)


def _rotr_inplace(x: np.ndarray, r: int, scratch: np.ndarray) -> None:
    np.right_shift(x, np.uint64(r), out=scratch)
    np.left_shift(x, np.uint64(64 - r), out=x)
    np.bitwise_or(x, scratch, out=x)


def _compress_final(m: List[np.ndarray], msg_len: int, count: int) -> tuple:
    """One final-block blake2b compression over uint64 lanes.

    ``m`` holds the sixteen little-endian message words (length ``count``
    each); returns the first two state words ``(h0, h1)`` — the 16-byte
    digest is their little-endian concatenation.
    """
    u64 = np.uint64
    if not _WORKSPACE:
        _WORKSPACE.extend(np.empty(_BATCH, dtype=np.uint64) for _ in range(17))
    v = [lane[:count] for lane in _WORKSPACE[:16]]
    scratch = _WORKSPACE[16][:count]
    for i in range(8):
        v[i][:] = u64(_IV[i])
        v[i + 8][:] = u64(_IV[i])
    v[0] ^= u64(_PARAM0)
    v[12] ^= u64(msg_len)
    np.invert(v[14], out=v[14])
    for rnd in range(12):
        s = _SIGMA[rnd % 10]
        for g, (a, b, c, d) in enumerate(_MIX):
            x, y = m[s[2 * g]], m[s[2 * g + 1]]
            np.add(v[a], v[b], out=v[a])
            np.add(v[a], x, out=v[a])
            np.bitwise_xor(v[d], v[a], out=v[d])
            _rotr_inplace(v[d], 32, scratch)
            np.add(v[c], v[d], out=v[c])
            np.bitwise_xor(v[b], v[c], out=v[b])
            _rotr_inplace(v[b], 24, scratch)
            np.add(v[a], v[b], out=v[a])
            np.add(v[a], y, out=v[a])
            np.bitwise_xor(v[d], v[a], out=v[d])
            _rotr_inplace(v[d], 16, scratch)
            np.add(v[c], v[d], out=v[c])
            np.bitwise_xor(v[b], v[c], out=v[b])
            _rotr_inplace(v[b], 63, scratch)
    h0 = v[0] ^ v[8]
    h0 ^= u64(_IV[0] ^ _PARAM0)
    h1 = v[1] ^ v[9]
    h1 ^= u64(_IV[1])
    return h0, h1


def _digest_mod(buf: np.ndarray, msg_len: int, n: int) -> np.ndarray:
    """``int.from_bytes(digest, "big") % n`` for each 128-byte row of ``buf``."""
    words = buf.view("<u8")
    m = [np.ascontiguousarray(words[:, i]) for i in range(16)]
    h0, h1 = _compress_final(m, msg_len, len(buf))
    # big-endian digest value = byteswap(h0)·2^64 + byteswap(h1)
    hi = h0.byteswap() % np.uint64(n)
    lo = h1.byteswap() % np.uint64(n)
    shift = (1 << 64) % n
    return ((hi.astype(np.int64) * shift + lo.astype(np.int64)) % n).astype(np.int64)


def _digit_lengths(values: np.ndarray) -> np.ndarray:
    """Decimal digit count of each (non-negative) value."""
    lengths = np.ones(len(values), dtype=np.int64)
    power = 10
    while True:
        above = values >= power
        if not above.any():
            return lengths
        lengths += above
        power *= 10


def batch_digest_mod(prefix: bytes, columns: Sequence[np.ndarray], n: int) -> np.ndarray:
    """Vectorized ``stable_hash(*prefix_parts, c0[i], c1[i], ...) % n``.

    ``prefix`` is the already-encoded constant part list (via
    :func:`encode_parts`); ``columns`` are equal-length arrays of
    non-negative integers, each absorbed as one further part per row.
    Rows whose encoded message exceeds one blake2b block take the exact
    ``hashlib`` path.
    """
    columns = [np.asarray(c, dtype=np.int64) for c in columns]
    total = len(columns[0])
    out = np.empty(total, dtype=np.int64)
    lengths = [_digit_lengths(c) for c in columns]
    shape_key = lengths[0].copy()
    for extra in lengths[1:]:
        shape_key = shape_key * 21 + extra
    prefix_arr = np.frombuffer(prefix, dtype=np.uint8)
    for key in np.unique(shape_key):
        idx = np.nonzero(shape_key == key)[0]
        digit_counts = [int(length[idx[0]]) for length in lengths]
        msg_len = len(prefix) + sum(4 + count for count in digit_counts)
        if msg_len > 128:
            for i in idx:
                hasher = hashlib.blake2b(digest_size=16)
                hasher.update(prefix)
                hasher.update(encode_parts(*[int(c[i]) for c in columns]))
                out[i] = int.from_bytes(hasher.digest(), "big") % n
            continue
        if not _MSG_BUF:
            _MSG_BUF.append(np.zeros((_BATCH, 128), dtype=np.uint8))
        for start in range(0, len(idx), _BATCH):
            chunk = idx[start : start + _BATCH]
            buf = _MSG_BUF[0][: len(chunk)]
            buf.fill(0)
            buf[:, : len(prefix)] = prefix_arr
            offset = len(prefix)
            for column, count in zip(columns, digit_counts):
                values = column[chunk]
                buf[:, offset + 3] = count  # 4-byte big-endian length, count < 256
                offset += 4
                for j in range(count):
                    power = 10 ** (count - 1 - j)
                    buf[:, offset + j] = 48 + (values // power) % 10
                offset += count
            out[chunk] = _digest_mod(buf, msg_len, n)
    return out


def _py_first_distinct(prefix: bytes, parts: Sequence[int], size: int, n: int) -> List[int]:
    """Exact per-row fallback mirroring the samplers' counter loop."""
    base = hashlib.blake2b(digest_size=16)
    base.update(prefix)
    base.update(encode_parts(*parts))
    members: List[int] = []
    seen = set()
    counter = 0
    while len(members) < size:
        hasher = base.copy()
        hasher.update(encode_parts(counter))
        candidate = int.from_bytes(hasher.digest(), "big") % n
        counter += 1
        if candidate not in seen:
            seen.add(candidate)
            members.append(candidate)
    return sorted(members)


def first_distinct_rows(
    prefix: bytes,
    columns: Sequence[np.ndarray],
    size: int,
    n: int,
    extra_draws: int = 4,
    dtype=np.int64,
) -> np.ndarray:
    """Sorted first-``size``-distinct draws per row — the samplers' member loop.

    For each row ``i`` the draw sequence is ``stable_hash(*prefix, *cols[i],
    counter) % n`` for ``counter = 0, 1, ...``; the row's members are the
    first ``size`` distinct values, returned sorted (the samplers' canonical
    representation).  ``size + extra_draws`` counters are hashed per row in
    one batch; the rare row with more hash collisions than that is resolved
    exactly via :func:`_py_first_distinct`.
    """
    columns = [np.asarray(c, dtype=np.int64) for c in columns]
    rows = len(columns[0])
    # members are < n, so callers can ask for a narrow output dtype directly
    # instead of paying for an int64 matrix plus a cast copy
    out = np.empty((rows, size), dtype=dtype)
    draws = size + extra_draws
    # chunk so the ~10 simultaneous (span, draws) int64 temporaries (repeats,
    # values, argsort, ranks) stay a few MB each; a span·draws of half a
    # million still feeds the hash batches at full width
    row_chunk = max(1, (512 << 10) // max(1, draws))
    counter_tile = np.arange(draws, dtype=np.int64)
    for start in range(0, rows, row_chunk):
        stop = min(rows, start + row_chunk)
        span = stop - start
        repeated = [np.repeat(c[start:stop], draws) for c in columns]
        repeated.append(np.tile(counter_tile, span))
        values = batch_digest_mod(prefix, repeated, n).reshape(span, draws)
        order = np.argsort(values, axis=1, kind="stable")
        ranked = np.take_along_axis(values, order, axis=1)
        dup_sorted = np.zeros((span, draws), dtype=bool)
        dup_sorted[:, 1:] = ranked[:, 1:] == ranked[:, :-1]
        duplicate = np.empty_like(dup_sorted)
        np.put_along_axis(duplicate, order, dup_sorted, axis=1)
        distinct_rank = np.cumsum(~duplicate, axis=1)
        keep = ~duplicate & (distinct_rank <= size)
        resolved = keep.sum(axis=1) == size
        if resolved.any():
            picked = values[resolved][keep[resolved]].reshape(-1, size)
            out[start:stop][resolved] = np.sort(picked, axis=1)
        for i in np.nonzero(~resolved)[0]:
            parts = [int(c[start + i]) for c in columns]
            out[start + i] = _py_first_distinct(prefix, parts, size, n)
    return out
