"""Bit-packed array storage for the vectorized backend.

Two packed layouts back the ``n = 10⁶`` memory contract (ARCHITECTURE.md
"vec memory model"):

* **index rows** — a ``(rows, d)`` matrix of member ids in ``[0, n)`` is
  stored at ``b = ceil(log2 n)`` bits per id via :func:`numpy.packbits`
  (big-endian bit order), ~3× smaller than the int64 rows the engine used
  to hold and ~1.6× smaller than int32.  Packing is lossless, so the
  unpacked rows are bit-for-bit the samplers' draws;
* **boolean matrices** (:class:`BitMatrix`) — per-(row, member) flags such
  as *polled* / *answered* at one bit per cell, 8× smaller than ``bool``.

Both unpack in chunks sized by the engine's memory budget, never as whole
tables.
"""

from __future__ import annotations

import numpy as np


def bits_for(n: int) -> int:
    """Bits needed to store a value in ``[0, n)`` (at least 1)."""
    return max(1, int(n - 1).bit_length())


def packed_width(count: int, bits: int) -> int:
    """Bytes per packed row of ``count`` values at ``bits`` bits each."""
    return (count * bits + 7) // 8


def pack_rows(values: np.ndarray, bits: int) -> np.ndarray:
    """Pack a ``(rows, d)`` non-negative integer matrix at ``bits`` bits/value."""
    rows, d = values.shape
    # one uint8 bit plane per value bit — a broadcast shift over all bits at
    # once would materialise a (rows, d, bits) matrix at the *input* width
    bit_matrix = np.empty((rows, d, bits), dtype=np.uint8)
    for j in range(bits):  # most-significant bit first
        bit_matrix[:, :, j] = (values >> (bits - 1 - j)) & 1
    return np.packbits(bit_matrix.reshape(rows, d * bits), axis=1)


#: rows per internal unpack step — bounds the transient (rows, d·bits) uint8
#: bit matrix to a few MB regardless of how many rows the caller asks for
_UNPACK_STEP = 1 << 15


def unpack_rows(packed: np.ndarray, d: int, bits: int, dtype=np.int32) -> np.ndarray:
    """Invert :func:`pack_rows`: ``(rows, width)`` bytes back to value rows."""
    rows = len(packed)
    out = np.zeros((rows, d), dtype=dtype)
    for lo in range(0, rows, _UNPACK_STEP):
        hi = min(rows, lo + _UNPACK_STEP)
        bit_matrix = np.unpackbits(
            packed[lo:hi], axis=1, count=d * bits
        ).reshape(hi - lo, d, bits)
        block = out[lo:hi]
        for j in range(bits):  # most-significant bit first
            block <<= 1
            block |= bit_matrix[:, :, j]
    return out


class BitMatrix:
    """A ``(rows, cols)`` boolean matrix stored one bit per cell.

    Supports exactly the access patterns of the engine's per-(row, member)
    flags: extract a row subset as ``bool``, scatter-set individual cells,
    and initialise whole rows to all-true.  Bit order matches
    ``numpy.packbits`` (big-endian within each byte), so trailing pad bits
    of the last byte are ignored by the ``count=cols`` unpack.
    """

    __slots__ = ("rows", "cols", "data")

    def __init__(self, rows: int, cols: int) -> None:
        self.rows = rows
        self.cols = cols
        self.data = np.zeros((rows, (cols + 7) // 8), dtype=np.uint8)

    def set_rows(self, row_slice, values: np.ndarray) -> None:
        """Assign a block of rows from a ``(k, cols)`` boolean matrix."""
        self.data[row_slice] = np.packbits(values, axis=1)

    def fill_rows(self, row_slice) -> None:
        """Set every cell of the selected rows to true."""
        self.data[row_slice] = 0xFF

    def set_true(self, rows_idx: np.ndarray, cols_idx: np.ndarray) -> None:
        """Scatter-set ``[rows_idx[i], cols_idx[i]] = True`` (duplicates fine)."""
        byte = cols_idx >> 3
        bit = (128 >> (cols_idx & 7)).astype(np.uint8)
        np.bitwise_or.at(self.data, (rows_idx, byte), bit)

    def rows_bool(self, rows_idx) -> np.ndarray:
        """The selected rows as a ``(k, cols)`` boolean matrix."""
        return np.unpackbits(self.data[rows_idx], axis=1, count=self.cols).view(bool)
