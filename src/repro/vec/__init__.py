"""Vectorized whole-round engine backend (``backend="vectorized"``).

The message-passing kernel in :mod:`repro.net` is the semantic oracle: one
Python object per node, one dispatch per message.  This package is the other
end of the trade — a whole synchronous round as a handful of numpy array
passes, for system sizes (``n >= 10**5``) where per-message Python dispatch
is three orders of magnitude too slow to fit a growth-fit sweep.

Layout
------
``hashing``
    Batched, bit-identical re-implementation of the samplers' keyed blake2b
    draw (`repro.net.rng.stable_hash`) as single-block compressions over
    uint64 lanes.
``bitpack``
    Bit-level array storage: ``ceil(log2 n)``-bit packed member-index rows
    and one-bit-per-cell boolean matrices (:class:`~repro.vec.bitpack.BitMatrix`).
``tables``
    Array-shaped sampler tables: ``(rows, d)`` member matrices for the
    ``I``/``H`` quorum families and batched ``J`` poll rows, built either
    from the exact Python samplers (small ``n``) or from the batched hash
    (large ``n``) — both bit-identical to the message backend's draws.
    Stored bit-packed with a byte-budgeted unpacked-row LRU (the ``n = 10⁶``
    memory contract).
``engine``
    The vectorized AER synchronous round loop, streaming its Fw1/Fw2
    fan-outs under an explicit memory budget (``vec_memory_mb``).
``majority``
    The vectorized ``sample_majority`` baseline.

Verification contract (see ARCHITECTURE.md "engine backends"): exact golden
equality against the message kernel on the draw-order-compatible small-``n``
subset, and cross-seed statistical equivalence (CI overlap) at large ``n``.
"""

from repro.vec.engine import DEFAULT_VEC_MEMORY_MB, VEC_ADVERSARIES, run_aer_vectorized
from repro.vec.majority import run_sample_majority_vectorized
from repro.vec.tables import VecSamplerTables, prewarm_vec_tables

__all__ = [
    "DEFAULT_VEC_MEMORY_MB",
    "VEC_ADVERSARIES",
    "VecSamplerTables",
    "prewarm_vec_tables",
    "run_aer_vectorized",
    "run_sample_majority_vectorized",
]
