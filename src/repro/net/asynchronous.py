"""Asynchronous event-queue scheduler.

In the asynchronous model the adversary controls message scheduling: it may
delay any message arbitrarily, subject only to *reliability* — a message sent
to a non-faulty node is eventually delivered (Section 2.1).  The standard way
to give "time complexity" a meaning in this model (and the one the paper's
``O(log n / log log n)`` bound uses) is to normalize: after the fact, the
longest delay experienced by any correct-to-correct message is defined to be
one time unit, and the protocol's running time is measured in those units.

Concretely, this simulator draws every message's delay from ``(0, 1]``:

* by default from a :class:`DelayPolicy` (uniform at random, or constant);
* the adversary may override the delay of any message it observes, again
  within ``(0, 1]`` — this models the full scheduling power of an
  asynchronous adversary without having to renormalize afterwards.

The adversary in this model is inherently *rushing*: it observes every
message at the moment it is sent, before deciding on its own messages and on
the delays.

The class is a thin scheduling policy over
:class:`~repro.net.kernel.EventKernel`: it decides *when* dispatched messages
are delivered (heap order of their delay-adjusted times); all delivery,
metrics and decision machinery is the kernel's.  Heap entries are plain
``(time, seq, sender, dest, message, bits)`` tuples — the unique ``seq``
breaks ties before any message comparison can be attempted.
"""

from __future__ import annotations

import heapq
from typing import Optional, Sequence

from repro.net.kernel import AdversaryProtocol, EventKernel, SendRecord
from repro.net.messages import Message, SizeModel
from repro.net.node import Node
from repro.net.results import SimulationResult
from repro.net.rng import derive_rng
from repro.registry import Registry

#: smallest delay any message may have; keeps event times strictly increasing
MIN_DELAY = 1e-3

#: named delay-policy registry; values are ``factory(**params) -> DelayPolicy``
DELAY_POLICIES = Registry("delay policy")


def register_delay_policy(name: str, *, replace: bool = False):
    """Decorator registering a delay-policy factory (usually the class itself)."""
    return DELAY_POLICIES.register(name, replace=replace)


def make_delay_policy(name: str, **params) -> "DelayPolicy":
    """Instantiate the delay policy registered under ``name``.

    ``params`` are passed to the registered factory, e.g.
    ``make_delay_policy("constant", value=0.5)``.
    """
    factory = DELAY_POLICIES.get(name)
    return factory(**params)  # type: ignore[operator]


class DelayPolicy:
    """Default delay selection for messages the adversary does not touch."""

    def delay(self, record: SendRecord, rng) -> float:
        """Return the delay (in normalized units) for ``record``."""
        raise NotImplementedError


@register_delay_policy("constant")
class ConstantDelayPolicy(DelayPolicy):
    """Every message takes exactly ``value`` time units (default: the maximum, 1.0)."""

    def __init__(self, value: float = 1.0) -> None:
        if not MIN_DELAY <= value <= 1.0:
            raise ValueError("delay must lie in [MIN_DELAY, 1.0]")
        self.value = value

    def delay(self, record: SendRecord, rng) -> float:
        return self.value


@register_delay_policy("random")
class RandomDelayPolicy(DelayPolicy):
    """Delays drawn uniformly from ``[low, high] ⊆ (0, 1]`` — a benign network."""

    def __init__(self, low: float = 0.1, high: float = 1.0) -> None:
        if not MIN_DELAY <= low <= high <= 1.0:
            raise ValueError("require MIN_DELAY <= low <= high <= 1.0")
        self.low = low
        self.high = high

    def delay(self, record: SendRecord, rng) -> float:
        return rng.uniform(self.low, self.high)


class AsynchronousSimulator(EventKernel):
    """Event-driven execution with adversary-controlled, bounded delays.

    Parameters (in addition to :class:`~repro.net.kernel.EventKernel`)
    ----------
    delay_policy:
        Delay selection for messages the adversary leaves alone.
    max_time:
        Safety cap on simulated (normalized) time.
    max_events:
        Safety cap on the number of delivered messages, protecting against
        runaway protocols or adversaries.
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        n: int,
        adversary: Optional[AdversaryProtocol] = None,
        seed: int = 0,
        delay_policy: Optional[DelayPolicy] = None,
        max_time: float = 200.0,
        max_events: int = 2_000_000,
        size_model: Optional[SizeModel] = None,
        trace=None,
    ) -> None:
        super().__init__(
            nodes, n, adversary=adversary, seed=seed, size_model=size_model, trace=trace
        )
        self.delay_policy = delay_policy or RandomDelayPolicy()
        self.max_time = max_time
        self.max_events = max_events
        self._time = 0.0
        self._seq = 0
        self._queue: list = []
        self._scheduler_rng = derive_rng(seed, "scheduler")
        # Fast-path delay selection: with no adversary and one of the two
        # built-in policies, the per-message SendRecord (observation payload)
        # and the clamp are provably redundant, so the hot path skips them.
        # The draws are bit-identical to the policy's (`uniform(a, b)` is
        # exactly ``a + (b - a) * random()``).
        self._uniform_fast = None
        self._constant_fast = None
        if adversary is None:
            policy = self.delay_policy
            if type(policy) is RandomDelayPolicy:
                self._uniform_fast = (policy.low, policy.high - policy.low)
            elif type(policy) is ConstantDelayPolicy:
                self._constant_fast = policy.value

    # ------------------------------------------------------------------
    # EventKernel interface (the scheduling policy)
    # ------------------------------------------------------------------
    def now(self) -> float:
        return self._time

    def dispatch_send(self, sender: int, dest: int, message: Message) -> None:
        bits = self.metrics.record_send(sender, dest, message, self._time)
        if self.trace is not None:
            self.trace.on_dispatch(sender, 1, message.kind, bits)
        self._schedule(sender, dest, message, bits)

    def dispatch_send_many(self, sender: int, dests: Sequence[int], message: Message) -> None:
        if not dests:
            return
        if self.adversary is not None or self.metrics.message_log_enabled:
            # Preserve the exact per-message interleaving of adversary
            # observations (which may themselves send) with log entries.
            for dest in dests:
                self.dispatch_send(sender, dest, message)
            return
        bits = self.metrics.record_send_many(sender, tuple(dests), message, self._time)
        if self.trace is not None:
            self.trace.on_dispatch(sender, len(dests), message.kind, bits)
        uniform = self._uniform_fast
        if uniform is not None:
            low, span = uniform
            time = self._time
            seq = self._seq
            queue = self._queue
            push = heapq.heappush
            rand = self._scheduler_rng.random
            for dest in dests:
                seq += 1
                # parenthesised so the delay is rounded exactly as uniform() does
                push(queue, (time + (low + span * rand()), seq, sender, dest, message, bits))
            self._seq = seq
            return
        for dest in dests:
            self._schedule(sender, dest, message, bits)

    def _schedule(self, sender: int, dest: int, message: Message, bits: int) -> None:
        uniform = self._uniform_fast
        if uniform is not None:
            low, span = uniform
            delay = low + span * self._scheduler_rng.random()
        elif self._constant_fast is not None:
            delay = self._constant_fast
        else:
            record = SendRecord(sender, dest, message, self._time)
            delay: Optional[float] = None
            if self.adversary is not None:
                # Full-information model: the adversary observes every send and
                # may pick the delay (reliability forces it into (0, 1]).
                self.adversary.observe_send(record)
                delay = self.adversary.delay_for(record)
            if delay is None:
                delay = self.delay_policy.delay(record, self._scheduler_rng)
            delay = min(1.0, max(MIN_DELAY, float(delay)))

        self._seq += 1
        heapq.heappush(
            self._queue, (self._time + delay, self._seq, sender, dest, message, bits)
        )

    def run(self) -> SimulationResult:
        """Process events until all correct nodes decide or a safety cap is hit."""
        for node_id in self.correct_ids:
            self.nodes[node_id].on_start()
            self.note_decisions(node_id)
        if self.adversary is not None:
            self.adversary.on_start()

        # Event loop with the kernel's delivery inlined: received counters are
        # folded into local dicts and flushed once at the end (batched metrics
        # accumulation); decision times are still recorded at exact event times.
        delivered = 0
        max_time = self.max_time
        max_events = self.max_events
        queue = self._queue
        pop = heapq.heappop
        handlers = self._on_message_of
        adversary = self.adversary
        byzantine = self.byzantine_ids
        decided = self._decided
        received: dict = {}
        while queue and self._undecided_count:
            time, _seq, sender, dest, message, bits = pop(queue)
            if time > max_time or delivered >= max_events:
                break
            self._time = time
            entry = received.get(dest)
            if entry is None:
                received[dest] = [1, bits]
            else:
                entry[0] += 1
                entry[1] += bits
            handler = handlers.get(dest)
            if handler is not None:
                handler(sender, message)
                if not decided[dest]:
                    self.note_decisions(dest)
            elif adversary is not None and dest in byzantine:
                adversary.on_deliver(dest, sender, message)
            delivered += 1
        self.metrics.record_delivery_batch(
            (dest, counts[0], counts[1]) for dest, counts in received.items()
        )

        summary = self.metrics.summary(restrict_to=self.correct_ids)
        span = summary.max_decision_time
        if span is None:
            span = self._time
        self.metrics.record_span(span)
        return self.build_result(rounds=None, span=span)
