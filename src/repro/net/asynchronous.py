"""Asynchronous event-queue scheduler.

In the asynchronous model the adversary controls message scheduling: it may
delay any message arbitrarily, subject only to *reliability* — a message sent
to a non-faulty node is eventually delivered (Section 2.1).  The standard way
to give "time complexity" a meaning in this model (and the one the paper's
``O(log n / log log n)`` bound uses) is to normalize: after the fact, the
longest delay experienced by any correct-to-correct message is defined to be
one time unit, and the protocol's running time is measured in those units.

Concretely, this simulator draws every message's delay from ``(0, 1]``:

* by default from a :class:`DelayPolicy` (uniform at random, or constant);
* the adversary may override the delay of any message it observes, again
  within ``(0, 1]`` — this models the full scheduling power of an
  asynchronous adversary without having to renormalize afterwards.

The adversary in this model is inherently *rushing*: it observes every
message at the moment it is sent, before deciding on its own messages and on
the delays.

The class is a thin scheduling policy over
:class:`~repro.net.kernel.EventKernel`: it decides *when* dispatched messages
are delivered (heap order of their delay-adjusted times); all delivery,
metrics and decision machinery is the kernel's.

Event-queue layout (the columnar fast path): the pending-event store is a
**delay-bucketed calendar queue**, not a binary heap.  Arrival times are
quantized into fixed-width buckets (``bucket = int(time * _BUCKET_RATE)``);
dispatching appends an event tuple to its bucket (O(1), no sift), and the
consumer walks buckets in increasing order, sorting each bucket by ``(time,
seq)`` once when it is opened.  Because bucket boundaries are monotone in
time and ``seq`` is unique, the resulting delivery order is *identical* to a
flat per-message heap — ``tests/test_engine_golden.py`` pins this byte-for-
byte — while the per-message cost drops from an O(log n) heap sift to a
list append plus an O(log b) share of one C-level bucket sort.  An event
dispatched into the bucket currently being consumed (possible only for
delays within one bucket width, e.g. an adversary choosing ``MIN_DELAY``)
is placed by ``bisect.insort`` into the bucket's unconsumed tail, which
preserves exactness for arbitrarily small delays.

A multicast is one grouped dispatch record (metrics, trace and payload
interning happen once per record); its per-destination delays are drawn at
dispatch time **in destination order** — exactly the RNG consumption order
of per-message scheduling — and expanded into the buckets immediately.
"""

from __future__ import annotations

from bisect import insort
from typing import Optional, Sequence

from repro.net.kernel import AdversaryProtocol, EventKernel, SendRecord, paused_gc
from repro.net.messages import Message, SizeModel
from repro.net.node import Node
from repro.net.results import SimulationResult
from repro.net.rng import derive_rng
from repro.registry import Registry

#: smallest delay any message may have; keeps event times strictly increasing
MIN_DELAY = 1e-3

#: calendar-queue resolution: events are binned by ``int(time * _BUCKET_RATE)``.
#: The width (1/1024 ≈ 1e-3 time units) is of the order of MIN_DELAY, so a
#: bucket holds a small slice of the in-flight window and the per-bucket sort
#: stays short; exactness does not depend on the choice (same-bucket events
#: are sorted, cross-bucket order follows from monotonicity).
_BUCKET_RATE = 1024.0

#: named delay-policy registry; values are ``factory(**params) -> DelayPolicy``
DELAY_POLICIES = Registry("delay policy")


def register_delay_policy(name: str, *, replace: bool = False):
    """Decorator registering a delay-policy factory (usually the class itself)."""
    return DELAY_POLICIES.register(name, replace=replace)


def make_delay_policy(name: str, **params) -> "DelayPolicy":
    """Instantiate the delay policy registered under ``name``.

    ``params`` are passed to the registered factory, e.g.
    ``make_delay_policy("constant", value=0.5)``.
    """
    factory = DELAY_POLICIES.get(name)
    return factory(**params)  # type: ignore[operator]


class DelayPolicy:
    """Default delay selection for messages the adversary does not touch."""

    def delay(self, record: SendRecord, rng) -> float:
        """Return the delay (in normalized units) for ``record``."""
        raise NotImplementedError


@register_delay_policy("constant")
class ConstantDelayPolicy(DelayPolicy):
    """Every message takes exactly ``value`` time units (default: the maximum, 1.0)."""

    def __init__(self, value: float = 1.0) -> None:
        if not MIN_DELAY <= value <= 1.0:
            raise ValueError("delay must lie in [MIN_DELAY, 1.0]")
        self.value = value

    def delay(self, record: SendRecord, rng) -> float:
        return self.value


@register_delay_policy("random")
class RandomDelayPolicy(DelayPolicy):
    """Delays drawn uniformly from ``[low, high] ⊆ (0, 1]`` — a benign network."""

    def __init__(self, low: float = 0.1, high: float = 1.0) -> None:
        if not MIN_DELAY <= low <= high <= 1.0:
            raise ValueError("require MIN_DELAY <= low <= high <= 1.0")
        self.low = low
        self.high = high

    def delay(self, record: SendRecord, rng) -> float:
        return rng.uniform(self.low, self.high)


@register_delay_policy("pareto")
class ParetoDelayPolicy(DelayPolicy):
    """Heavy-tailed delays: ``scale · (1-u)^(-1/alpha)``, truncated into ``(0, 1]``.

    A Pareto(α) tail with minimum ``scale`` — most messages arrive around
    ``scale`` but a polynomial tail straggles, and (with the defaults) about
    ``scale^alpha`` of the mass saturates the model's normalized maximum of
    1.0.  Smaller ``alpha`` means a heavier tail.
    """

    def __init__(self, alpha: float = 1.5, scale: float = 0.05) -> None:
        if alpha <= 0.0:
            raise ValueError("pareto alpha must be > 0")
        if not MIN_DELAY <= scale <= 1.0:
            raise ValueError("pareto scale must lie in [MIN_DELAY, 1.0]")
        self.alpha = alpha
        self.scale = scale

    def delay(self, record: SendRecord, rng) -> float:
        # inverse-CDF draw; 1 - random() is in (0, 1] so the power is finite
        return min(1.0, self.scale * (1.0 - rng.random()) ** (-1.0 / self.alpha))


@register_delay_policy("lognormal")
class LogNormalDelayPolicy(DelayPolicy):
    """Heavy-tailed delays: ``exp(N(mu, sigma))``, truncated into ``(0, 1]``.

    The classic long-tailed latency model (median ``e^mu``, tail weight set
    by ``sigma``); the defaults put the median near 0.14 with a few percent
    of the mass saturating the normalized maximum of 1.0.
    """

    def __init__(self, mu: float = -2.0, sigma: float = 1.0) -> None:
        if sigma <= 0.0:
            raise ValueError("lognormal sigma must be > 0")
        self.mu = mu
        self.sigma = sigma

    def delay(self, record: SendRecord, rng) -> float:
        return min(1.0, max(MIN_DELAY, rng.lognormvariate(self.mu, self.sigma)))


class AsynchronousSimulator(EventKernel):
    """Event-driven execution with adversary-controlled, bounded delays.

    Parameters (in addition to :class:`~repro.net.kernel.EventKernel`)
    ----------
    delay_policy:
        Delay selection for messages the adversary leaves alone.
    max_time:
        Safety cap on simulated (normalized) time.
    max_events:
        Safety cap on the number of delivered messages, protecting against
        runaway protocols or adversaries.
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        n: int,
        adversary: Optional[AdversaryProtocol] = None,
        seed: int = 0,
        delay_policy: Optional[DelayPolicy] = None,
        max_time: float = 200.0,
        max_events: int = 2_000_000,
        size_model: Optional[SizeModel] = None,
        trace=None,
        faults=None,
    ) -> None:
        super().__init__(
            nodes, n, adversary=adversary, seed=seed, size_model=size_model,
            trace=trace, faults=faults,
        )
        self.delay_policy = delay_policy or RandomDelayPolicy()
        self.max_time = max_time
        self.max_events = max_events
        self._time = 0.0
        self._seq = 0
        # Calendar queue: bucket id -> list of (time, seq, sender, dest,
        # message, bits) event tuples.  ``_cur_*`` track the bucket being
        # consumed (already sorted; ``_cur_idx`` is the read cursor) and
        # ``_pending`` counts undelivered events across all buckets.
        self._buckets: dict = {}
        self._cur_bucket: int = -1
        self._cur_list: list = []
        self._cur_idx: int = 0
        self._pending: int = 0
        self._scheduler_rng = derive_rng(seed, "scheduler")
        # Fast-path delay selection: with no adversary and one of the two
        # built-in policies, the per-message SendRecord (observation payload)
        # and the clamp are provably redundant, so the hot path skips them.
        # The draws are bit-identical to the policy's (`uniform(a, b)` is
        # exactly ``a + (b - a) * random()``).
        self._uniform_fast = None
        self._constant_fast = None
        has_delay_classes = faults is not None and faults.has_delay_classes
        if adversary is None and not has_delay_classes:
            policy = self.delay_policy
            if type(policy) is RandomDelayPolicy:
                self._uniform_fast = (policy.low, policy.high - policy.low)
            elif type(policy) is ConstantDelayPolicy:
                self._constant_fast = policy.value
        #: per-sender delay rescaling (mixed populations); forces every
        #: dispatch through the per-message _schedule path when active
        self._delay_classes = faults if has_delay_classes else None

    # ------------------------------------------------------------------
    # EventKernel interface (the scheduling policy)
    # ------------------------------------------------------------------
    def now(self) -> float:
        return self._time

    def dispatch_send(self, sender: int, dest: int, message: Message) -> None:
        bits = self.metrics.record_send(sender, dest, message, self._time)
        if self.trace is not None:
            self.trace.on_dispatch(sender, 1, message.kind, bits)
        self._schedule(sender, dest, message, bits)

    def dispatch_send_many(self, sender: int, dests: Sequence[int], message: Message) -> None:
        if not dests:
            return
        if self.adversary is not None or self.metrics.message_log_enabled:
            # Preserve the exact per-message interleaving of adversary
            # observations (which may themselves send) with log entries.
            for dest in dests:
                self.dispatch_send(sender, dest, message)
            return
        message = self.intern_payload(message)
        bits = self.metrics.record_send_many(sender, tuple(dests), message, self._time)
        if self.trace is not None:
            self.trace.on_dispatch(sender, len(dests), message.kind, bits)
        time = self._time
        seq = self._seq
        uniform = self._uniform_fast
        buckets = self._buckets
        buckets_get = buckets.get
        cur_bucket = self._cur_bucket
        if uniform is not None:
            low, span = uniform
            rand = self._scheduler_rng.random
            for dest in dests:
                seq += 1
                # parenthesised so the delay is rounded exactly as uniform() does
                arrival = time + (low + span * rand())
                event = (arrival, seq, sender, dest, message, bits)
                bucket = int(arrival * _BUCKET_RATE)
                if bucket != cur_bucket:
                    lst = buckets_get(bucket)
                    if lst is None:
                        buckets[bucket] = [event]
                    else:
                        lst.append(event)
                else:
                    insort(self._cur_list, event, self._cur_idx)
            self._seq = seq
            self._pending += len(dests)
            return
        if self._constant_fast is not None:
            arrival = time + self._constant_fast
            bucket = int(arrival * _BUCKET_RATE)
            events = [
                (arrival, seq + offset, sender, dest, message, bits)
                for offset, dest in enumerate(dests, 1)
            ]
            self._seq = seq + len(events)
            self._pending += len(events)
            if bucket != cur_bucket:
                lst = buckets_get(bucket)
                if lst is None:
                    buckets[bucket] = events
                else:
                    lst.extend(events)
            else:
                for event in events:
                    insort(self._cur_list, event, self._cur_idx)
            return
        # custom delay policy without an adversary: per-destination draws
        # through the policy, in destination order (the historical path)
        for dest in dests:
            self._schedule(sender, dest, message, bits)

    def _schedule(self, sender: int, dest: int, message: Message, bits: int) -> None:
        uniform = self._uniform_fast
        if uniform is not None:
            low, span = uniform
            delay = low + span * self._scheduler_rng.random()
        elif self._constant_fast is not None:
            delay = self._constant_fast
        else:
            record = SendRecord(sender, dest, message, self._time)
            delay: Optional[float] = None
            if self.adversary is not None:
                # Full-information model: the adversary observes every send and
                # may pick the delay (reliability forces it into (0, 1]).
                self.adversary.observe_send(record)
                delay = self.adversary.delay_for(record)
            if delay is None:
                delay = self.delay_policy.delay(record, self._scheduler_rng)
            delay = min(1.0, max(MIN_DELAY, float(delay)))
            if self._delay_classes is not None:
                scale = self._delay_classes.delay_scale(sender)
                if scale != 1.0:
                    delay = min(1.0, max(MIN_DELAY, delay * scale))

        self._seq += 1
        arrival = self._time + delay
        event = (arrival, self._seq, sender, dest, message, bits)
        bucket = int(arrival * _BUCKET_RATE)
        if bucket != self._cur_bucket:
            lst = self._buckets.get(bucket)
            if lst is None:
                self._buckets[bucket] = [event]
            else:
                lst.append(event)
        else:
            # an arrival within the bucket being consumed (delay of the order
            # of one bucket width): exact placement into the unconsumed tail
            insort(self._cur_list, event, self._cur_idx)
        self._pending += 1

    def run(self) -> SimulationResult:
        """Process events until all correct nodes decide or a safety cap is hit."""
        with paused_gc():
            return self._run()

    def _run(self) -> SimulationResult:
        for node_id in self.correct_ids:
            self.nodes[node_id].on_start()
            self.note_decisions(node_id)
        if self.adversary is not None:
            self.adversary.on_start()

        # Event loop with the kernel's delivery inlined and columnar: received
        # counters are flat arrays indexed by destination id, flushed once at
        # the end (batched metrics accumulation); decision times are still
        # recorded at exact event times, with the decision check inlined.
        # The calendar queue is walked bucket by bucket; each bucket is
        # sorted by (time, seq) once when opened, so consuming an event is a
        # list indexing, not a heap sift.
        delivered = 0
        max_time = self.max_time
        max_events = self.max_events
        buckets = self._buckets
        adversary = self.adversary
        byzantine = self.byzantine_ids
        faults = self.faults
        decided = self._decided
        limit = self._id_limit
        handler_list = self._handler_list
        node_list = self._node_list
        metrics = self.metrics
        trace = self.trace
        recv_msgs = [0] * limit
        recv_bits = [0] * limit
        spill: dict = {}
        cur_list = self._cur_list
        cur_idx = self._cur_idx
        while self._pending and self._undecided_count:
            if cur_idx == len(cur_list):
                # advance to the next non-empty bucket (bounded by the
                # bucketed time horizon; _pending > 0 guarantees one exists)
                bucket = self._cur_bucket
                while True:
                    bucket += 1
                    nxt = buckets.pop(bucket, None)
                    if nxt is not None:
                        break
                nxt.sort()
                self._cur_bucket = bucket
                cur_list = self._cur_list = nxt
                cur_idx = self._cur_idx = 0
            event = cur_list[cur_idx]
            time = event[0]
            if time > max_time or delivered >= max_events:
                break
            cur_idx += 1
            self._cur_idx = cur_idx
            self._pending -= 1
            sender = event[2]
            dest = event[3]
            self._time = time
            if faults is not None:
                # churn boundaries are unit-time steps (same semantics as
                # sync rounds); a vetoed event still counts against the
                # event budget, like any other processed event
                faults.advance_time(time)
                if faults.should_drop(sender, dest, time):
                    delivered += 1
                    continue
            if 0 <= dest < limit:
                recv_msgs[dest] += 1
                recv_bits[dest] += event[5]
                handler = handler_list[dest]
                if handler is not None:
                    handler(sender, event[4])
                    if not decided[dest]:
                        node = node_list[dest]
                        if node.decision is not None:
                            decided[dest] = True
                            self._undecided_count -= 1
                            metrics.record_decision(dest, time)
                            if trace is not None:
                                trace.on_decided(dest, time)
                elif adversary is not None and dest in byzantine:
                    adversary.on_deliver(dest, sender, event[4])
            else:
                cell = spill.get(dest)
                if cell is None:
                    spill[dest] = [1, event[5]]
                else:
                    cell[0] += 1
                    cell[1] += event[5]
            delivered += 1
        counts = [(d, recv_msgs[d], recv_bits[d]) for d in range(limit) if recv_msgs[d]]
        counts.extend((d, cell[0], cell[1]) for d, cell in spill.items())
        metrics.record_delivery_batch(counts)

        summary = self.metrics.summary(restrict_to=self.correct_ids)
        span = summary.max_decision_time
        if span is None:
            span = self._time
        self.metrics.record_span(span)
        return self.build_result(rounds=None, span=span)
