"""Asynchronous event-queue scheduler.

In the asynchronous model the adversary controls message scheduling: it may
delay any message arbitrarily, subject only to *reliability* — a message sent
to a non-faulty node is eventually delivered (Section 2.1).  The standard way
to give "time complexity" a meaning in this model (and the one the paper's
``O(log n / log log n)`` bound uses) is to normalize: after the fact, the
longest delay experienced by any correct-to-correct message is defined to be
one time unit, and the protocol's running time is measured in those units.

Concretely, this simulator draws every message's delay from ``(0, 1]``:

* by default from a :class:`DelayPolicy` (uniform at random, or constant);
* the adversary may override the delay of any message it observes, again
  within ``(0, 1]`` — this models the full scheduling power of an
  asynchronous adversary without having to renormalize afterwards.

The adversary in this model is inherently *rushing*: it observes every
message at the moment it is sent, before deciding on its own messages and on
the delays.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.net.messages import Message, SizeModel
from repro.net.node import Node
from repro.net.results import SimulationResult
from repro.net.rng import derive_rng
from repro.net.simulator import AdversaryProtocol, SendRecord, Simulator

#: smallest delay any message may have; keeps event times strictly increasing
MIN_DELAY = 1e-3


class DelayPolicy:
    """Default delay selection for messages the adversary does not touch."""

    def delay(self, record: SendRecord, rng) -> float:
        """Return the delay (in normalized units) for ``record``."""
        raise NotImplementedError


class ConstantDelayPolicy(DelayPolicy):
    """Every message takes exactly ``value`` time units (default: the maximum, 1.0)."""

    def __init__(self, value: float = 1.0) -> None:
        if not MIN_DELAY <= value <= 1.0:
            raise ValueError("delay must lie in [MIN_DELAY, 1.0]")
        self.value = value

    def delay(self, record: SendRecord, rng) -> float:
        return self.value


class RandomDelayPolicy(DelayPolicy):
    """Delays drawn uniformly from ``[low, high] ⊆ (0, 1]`` — a benign network."""

    def __init__(self, low: float = 0.1, high: float = 1.0) -> None:
        if not MIN_DELAY <= low <= high <= 1.0:
            raise ValueError("require MIN_DELAY <= low <= high <= 1.0")
        self.low = low
        self.high = high

    def delay(self, record: SendRecord, rng) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(order=True)
class _Event:
    """Heap entry: delivery of one message."""

    time: float
    seq: int
    sender: int = 0
    dest: int = 0
    message: Message = None  # type: ignore[assignment]
    bits: int = 0


class AsynchronousSimulator(Simulator):
    """Event-driven execution with adversary-controlled, bounded delays.

    Parameters (in addition to :class:`~repro.net.simulator.Simulator`)
    ----------
    delay_policy:
        Delay selection for messages the adversary leaves alone.
    max_time:
        Safety cap on simulated (normalized) time.
    max_events:
        Safety cap on the number of delivered messages, protecting against
        runaway protocols or adversaries.
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        n: int,
        adversary: Optional[AdversaryProtocol] = None,
        seed: int = 0,
        delay_policy: Optional[DelayPolicy] = None,
        max_time: float = 200.0,
        max_events: int = 2_000_000,
        size_model: Optional[SizeModel] = None,
    ) -> None:
        super().__init__(nodes, n, adversary=adversary, seed=seed, size_model=size_model)
        self.delay_policy = delay_policy or RandomDelayPolicy()
        self.max_time = max_time
        self.max_events = max_events
        self._time = 0.0
        self._seq = 0
        self._queue: list[_Event] = []
        self._scheduler_rng = derive_rng(seed, "scheduler")

    # ------------------------------------------------------------------
    # Simulator interface
    # ------------------------------------------------------------------
    def now(self) -> float:
        return self._time

    def dispatch_send(self, sender: int, dest: int, message: Message) -> None:
        bits = self.metrics.record_send(sender, dest, message, self._time)
        record = SendRecord(sender, dest, message, self._time)

        delay: Optional[float] = None
        if self.adversary is not None:
            # Full-information model: the adversary observes every send and
            # may pick the delay (reliability forces it into (0, 1]).
            self.adversary.observe_send(record)
            delay = self.adversary.delay_for(record)
        if delay is None:
            delay = self.delay_policy.delay(record, self._scheduler_rng)
        delay = min(1.0, max(MIN_DELAY, float(delay)))

        self._seq += 1
        heapq.heappush(
            self._queue,
            _Event(
                time=self._time + delay,
                seq=self._seq,
                sender=sender,
                dest=dest,
                message=message,
                bits=bits,
            ),
        )

    def run(self) -> SimulationResult:
        """Process events until all correct nodes decide or a safety cap is hit."""
        for node_id in self.correct_ids:
            self.nodes[node_id].on_start()
            self.note_decisions(node_id)
        if self.adversary is not None:
            self.adversary.on_start()

        delivered = 0
        while self._queue and not self.all_decided():
            event = heapq.heappop(self._queue)
            if event.time > self.max_time or delivered >= self.max_events:
                break
            self._time = event.time
            self.deliver(event.sender, event.dest, event.message, event.bits)
            delivered += 1

        summary = self.metrics.summary(restrict_to=self.correct_ids)
        span = summary.max_decision_time
        if span is None:
            span = self._time
        self.metrics.record_span(span)
        return self.build_result(rounds=None, span=span)
