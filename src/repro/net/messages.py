"""Wire message base class with explicit bit accounting.

The paper's communication complexity (Section 2.1) counts *bits*, amortized
over nodes.  To reproduce Figure 1 we therefore need a bit-accurate cost model
rather than, say, the pickled size of Python objects.  Every message type
declares how many bits it occupies on the wire through :meth:`Message.bits`,
expressed in terms of the two primitive field sizes the paper uses:

* a node identifier costs ``ceil(log2 n)`` bits,
* a candidate string costs its own length (``c log n`` bits for ``gstring``),
* a random label from ``R`` costs ``ceil(log2 |R|)`` bits.

Concrete protocol messages live next to the protocols that use them (e.g.
:mod:`repro.core.messages`); this module only provides the abstract base and
the :class:`SizeModel` helper that encapsulates the primitive field sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property


@dataclass(frozen=True)
class SizeModel:
    """Primitive field sizes used to account message bits.

    Attributes
    ----------
    n:
        Number of nodes in the system; a node id costs ``ceil(log2 n)`` bits.
    label_space:
        Cardinality of the label domain ``R`` used by the poll-list sampler
        ``J`` (polynomial in ``n`` per Lemma 2); a label costs
        ``ceil(log2 label_space)`` bits.
    """

    n: int
    label_space: int = 0

    # The field sizes are pure functions of (n, label_space); they are cached
    # because Message.bits() is evaluated millions of times per run.
    @cached_property
    def id_bits(self) -> int:
        """Bits needed to name one node."""
        return max(1, math.ceil(math.log2(max(2, self.n))))

    @cached_property
    def label_bits(self) -> int:
        """Bits needed to transmit one random label from ``R``."""
        if self.label_space <= 1:
            return 0
        return max(1, math.ceil(math.log2(self.label_space)))

    @property
    def kind_bits(self) -> int:
        """Bits charged for the message-type tag (a small constant)."""
        return 4


class Message:
    """Base class for every message exchanged in a simulation.

    Subclasses are expected to be immutable (frozen dataclasses, preferably
    with ``slots=True`` — a slotted message has no per-instance ``__dict__``,
    which matters when millions are in flight) so that the adversary
    observing a message cannot mutate it in flight, and to override
    :meth:`bits` with their exact cost.
    """

    #: slotted so that slotted dataclass subclasses stay dict-free
    __slots__ = ()

    #: short human-readable tag, overridden by subclasses
    kind: str = "message"

    def bits(self, size_model: SizeModel) -> int:
        """Return the number of bits this message occupies on the wire.

        The default charges only the message-type tag; protocol messages must
        override this to add their payload cost.
        """
        return size_model.kind_bits

    def describe(self) -> str:
        """Return a short human-readable description used in traces."""
        return self.kind
