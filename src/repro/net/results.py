"""Outcome of a simulation run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.metrics import MetricsSummary


@dataclass(frozen=True)
class SimulationResult:
    """Everything a benchmark or test needs to know about a finished run.

    Attributes
    ----------
    n:
        System size.
    correct_ids / byzantine_ids:
        Partition of node identities into correct and adversary-controlled.
    decisions:
        ``{node_id: decided value}`` for the correct nodes that decided.
    rounds:
        Number of synchronous rounds executed (``None`` for async runs).
    span:
        Normalized completion time of an asynchronous run (``None`` for sync).
    metrics:
        The :class:`~repro.net.metrics.MetricsSummary` for the run, with
        per-node statistics restricted to correct nodes.
    metrics_all:
        Summary over *all* nodes (including Byzantine senders), used to
        check that adversarial traffic cannot be used to inflate the
        reported complexity of correct nodes.
    """

    n: int
    correct_ids: List[int]
    byzantine_ids: List[int]
    decisions: Dict[int, object]
    rounds: Optional[int]
    span: Optional[float]
    metrics: MetricsSummary
    metrics_all: MetricsSummary

    @property
    def all_correct_decided(self) -> bool:
        """Whether every correct node reached a decision."""
        return all(node_id in self.decisions for node_id in self.correct_ids)

    def agreement_value(self) -> Optional[object]:
        """Return the common decision if all deciding correct nodes agree, else ``None``."""
        values = set(self.decisions.values())
        if len(values) == 1:
            return next(iter(values))
        return None

    @property
    def agreement_reached(self) -> bool:
        """True iff every correct node decided and they all decided the same value."""
        return self.all_correct_decided and self.agreement_value() is not None

    def fraction_decided(self, value: object) -> float:
        """Fraction of correct nodes whose decision equals ``value``."""
        if not self.correct_ids:
            return 0.0
        hits = sum(1 for i in self.correct_ids if self.decisions.get(i) == value)
        return hits / len(self.correct_ids)
