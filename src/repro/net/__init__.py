"""Message-passing simulation substrate.

This package provides the execution environment that the paper assumes as its
model (Section 2.1): a fully-connected, authenticated, reliable message
passing network of ``n`` nodes, observed by a Byzantine adversary, executed
either in synchronous rounds or asynchronously with adversarially chosen
message delays.

The substrate is a *deterministic discrete-event simulator*: every run is a
pure function of the master seed, the protocol, and the adversary, which makes
the experiments in ``benchmarks/`` reproducible bit-for-bit.

Public surface
--------------
``Node``
    Base class for protocol participants (correct nodes).
``NodeContext``
    Handle through which a node interacts with the network (send, rng, time).
``Message``
    Base class for wire messages with explicit bit accounting.
``MetricsCollector`` / ``MetricsSummary``
    Per-node and aggregate communication/time accounting.
``EventKernel``
    The shared simulation machinery (population wiring, batched dispatch and
    delivery, decision tracking); both simulators are thin scheduling
    policies over it.
``SynchronousSimulator``
    Lock-step round execution with rushing or non-rushing adversary.
``AsynchronousSimulator``
    Event-queue execution with adversary-controlled (bounded) delays.
``SimulationResult``
    Outcome of a run: per-node decisions, time, metrics.
"""

from repro.net.messages import Message
from repro.net.metrics import MetricsCollector, MetricsSummary
from repro.net.node import Node, NodeContext
from repro.net.results import SimulationResult
from repro.net.rng import DeterministicRNG, derive_rng, stable_hash
from repro.net.kernel import EventKernel
from repro.net.simulator import Simulator
from repro.net.sync import SynchronousSimulator
from repro.net.asynchronous import AsynchronousSimulator, DelayPolicy, RandomDelayPolicy

__all__ = [
    "Message",
    "MetricsCollector",
    "MetricsSummary",
    "Node",
    "NodeContext",
    "SimulationResult",
    "DeterministicRNG",
    "derive_rng",
    "stable_hash",
    "EventKernel",
    "Simulator",
    "SynchronousSimulator",
    "AsynchronousSimulator",
    "DelayPolicy",
    "RandomDelayPolicy",
]
