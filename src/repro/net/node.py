"""Protocol participant base class and its interface to the network.

A protocol (AER, the KSSV-style almost-everywhere agreement, or a baseline)
is implemented as a :class:`Node` subclass: a small state machine that reacts
to :meth:`Node.on_start`, :meth:`Node.on_round` and :meth:`Node.on_message`
callbacks and talks to the outside world exclusively through the
:class:`NodeContext` handed to it by the simulator.

Keeping the node/network boundary this narrow is what lets the same protocol
code run unchanged under the synchronous scheduler (rushing or non-rushing
adversary) and the asynchronous one — which is precisely the comparison the
paper makes between Lemma 8/9 and Lemma 6/10.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.net.messages import Message
from repro.net.rng import DeterministicRNG


class NodeContext(Protocol):
    """Capabilities the simulator grants to a single node.

    The context enforces the model of Section 2.1: channels are authenticated
    (the receiver learns the true sender id — a node cannot forge the sender
    field because :meth:`send` stamps it), reliable, and the node's RNG is
    private.
    """

    @property
    def node_id(self) -> int:
        """Identity of the node owning this context."""

    @property
    def n(self) -> int:
        """Total number of nodes in the system."""

    @property
    def rng(self) -> DeterministicRNG:
        """This node's private random number generator."""

    def send(self, dest: int, message: Message) -> None:
        """Send ``message`` to ``dest`` over the authenticated channel."""

    def send_many(self, dests, message: Message) -> None:
        """Send the same ``message`` to every node in ``dests`` (batched multicast)."""

    def now(self) -> float:
        """Current time: round number (sync) or event time (async)."""


class Node:
    """Base class for correct protocol participants.

    Subclasses override the ``on_*`` callbacks; they must not keep references
    to other node objects (all interaction goes through messages), which the
    integration tests enforce by running protocols under both schedulers.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._context: Optional[NodeContext] = None
        #: value this node has irrevocably decided on, or ``None``
        self.decision: Optional[object] = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def bind(self, context: NodeContext) -> None:
        """Attach the simulator-provided context.  Called once before the run."""
        self._context = context

    @property
    def context(self) -> NodeContext:
        """The bound context; raises if the node is used outside a simulation."""
        if self._context is None:
            raise RuntimeError(f"node {self.node_id} is not bound to a simulator")
        return self._context

    @property
    def has_decided(self) -> bool:
        """Whether the node has reached its final decision."""
        return self.decision is not None

    # ------------------------------------------------------------------
    # convenience helpers available to subclasses
    # ------------------------------------------------------------------
    def send(self, dest: int, message: Message) -> None:
        """Send ``message`` to node ``dest``."""
        self.context.send(dest, message)

    def send_many(self, dests, message: Message) -> None:
        """Send the same ``message`` to every node in ``dests``, as one batch.

        The kernel accounts a multicast with a single grouped record, so this
        is the preferred way to fan a message out on hot paths.
        """
        self.context.send_many(dests, message)

    def multicast(self, dests, message: Message) -> None:
        """Send the same ``message`` to every node in ``dests`` (a set/list of ids)."""
        self.context.send_many(dests, message)

    def decide(self, value: object) -> None:
        """Record the node's irrevocable decision (first call wins)."""
        if self.decision is None:
            self.decision = value

    # ------------------------------------------------------------------
    # protocol callbacks (overridden by subclasses)
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Called once at time zero, before any message is delivered."""

    def on_round(self, round_no: int) -> None:
        """Called at the beginning of every synchronous round (sync scheduler only)."""

    def on_message(self, sender: int, message: Message) -> None:
        """Called for every delivered message; ``sender`` is authenticated."""
