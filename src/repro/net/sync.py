"""Synchronous lock-step scheduler.

The synchronous model of Section 2.1: execution proceeds in rounds, and a
message sent during round ``r`` is delivered during round ``r + 1``.  The
adversary comes in two strengths:

* *rushing* — during every round it sees the messages the correct nodes send
  in that round before choosing its own messages;
* *non-rushing* — it chooses its round-``r`` messages independently of the
  correct nodes' round-``r`` messages (it still sees everything delivered up
  to round ``r``).

Lemma 8/9 of the paper are stated for the non-rushing case; the rushing case
falls back to the asynchronous bound of Lemma 6.  Both are selectable here via
the ``rushing`` flag so the benchmarks can reproduce the distinction.

The class is a thin scheduling policy over
:class:`~repro.net.kernel.EventKernel`: it decides *when* dispatched messages
are delivered (at the start of the next round, as one batch) and when the
adversary takes its turn; all delivery, metrics and decision machinery is the
kernel's.  The outbox holds grouped ``(sender, dests, message, bits)``
records, so a multicast costs one append and one metrics update regardless of
fan-out.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.net.kernel import AdversaryProtocol, EventKernel, SendRecord, paused_gc
from repro.net.messages import Message, SizeModel
from repro.net.node import Node
from repro.net.results import SimulationResult


class SynchronousSimulator(EventKernel):
    """Round-based execution with a rushing or non-rushing adversary.

    Parameters (in addition to :class:`~repro.net.kernel.EventKernel`)
    ----------
    rushing:
        Whether the adversary observes the current round's correct-node
        messages before sending its own.
    max_rounds:
        Safety cap; the run stops (and the result reports whatever state was
        reached) after this many rounds even if some node has not decided.
    min_rounds:
        Quiescence (an empty message queue) only terminates the run after
        this many rounds; protocols that schedule activity at fixed future
        rounds (e.g. the almost-everywhere coin protocol) set it so that an
        idle early round does not end the run prematurely.
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        n: int,
        adversary: Optional[AdversaryProtocol] = None,
        seed: int = 0,
        rushing: bool = False,
        max_rounds: int = 64,
        min_rounds: int = 0,
        size_model: Optional[SizeModel] = None,
        trace=None,
        faults=None,
    ) -> None:
        super().__init__(
            nodes, n, adversary=adversary, seed=seed, size_model=size_model,
            trace=trace, faults=faults,
        )
        self.rushing = rushing
        self.max_rounds = max_rounds
        self.min_rounds = min_rounds
        self._round = 0
        #: grouped (sender, dests, message, bits) records accepted this round,
        #: delivered as one batch at the start of the next one
        self._outbox: List[tuple] = []

    # ------------------------------------------------------------------
    # EventKernel interface (the scheduling policy)
    # ------------------------------------------------------------------
    def now(self) -> float:
        return float(self._round)

    def dispatch_send(self, sender: int, dest: int, message: Message) -> None:
        bits = self.metrics.record_send(sender, dest, message, float(self._round))
        self._outbox.append((sender, (dest,), message, bits))
        if self.trace is not None:
            self.trace.on_dispatch(sender, 1, message.kind, bits)

    def dispatch_send_many(self, sender: int, dests: Sequence[int], message: Message) -> None:
        if not dests:
            return
        dests = tuple(dests)
        message = self.intern_payload(message)
        bits = self.metrics.record_send_many(sender, dests, message, float(self._round))
        self._outbox.append((sender, dests, message, bits))
        if self.trace is not None:
            self.trace.on_dispatch(sender, len(dests), message.kind, bits)

    def run(self) -> SimulationResult:
        """Execute rounds until every correct node decides or ``max_rounds`` is hit."""
        with paused_gc():
            return self._run()

    def _run(self) -> SimulationResult:
        # Round 0: protocol start.
        for node_id in self.correct_ids:
            self.nodes[node_id].on_start()
            self.note_decisions(node_id)
        self._adversary_turn(round_no=0, starting=True)
        decided_round = self._round if self.all_decided() else None

        while not self.all_decided() and self._round < self.max_rounds:
            if not self._outbox and self._round > 0 and self._round >= self.min_rounds:
                break  # quiescent: no message in flight, nobody will ever act again
            self._advance_round()
            if self.all_decided() and decided_round is None:
                decided_round = self._round

        rounds = decided_round if decided_round is not None else self._round
        self.metrics.record_rounds(rounds)
        return self.build_result(rounds=rounds, span=None)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _advance_round(self) -> None:
        """Deliver last round's messages, then let correct nodes and the adversary act."""
        self._round += 1
        faults = self.faults
        if faults is not None:
            # churn draws happen at the round boundary, before delivery: a
            # node crashing at round r misses round r's inbox and its turn
            faults.advance_time(float(self._round))
        inbox, self._outbox = self._outbox, []
        self.deliver_batch(inbox)

        if faults is None:
            for node_id in self.correct_ids:
                self.nodes[node_id].on_round(self._round)
                self.note_decisions(node_id)
        else:
            for node_id in self.correct_ids:
                if faults.is_down(node_id):
                    continue
                self.nodes[node_id].on_round(self._round)
                self.note_decisions(node_id)

        self._adversary_turn(round_no=self._round, starting=False)

    def _observed_correct_sends(self) -> List[SendRecord]:
        """This round's correct-node sends, flattened for a rushing adversary.

        Built lazily from the outbox only when the adversary is rushing, so
        the common (non-rushing or failure-free) hot path never materialises
        per-message records.  The adversary has not acted yet this round, so
        every outbox record with a correct sender is a correct-node send.
        """
        now = float(self._round)
        nodes = self.nodes
        return [
            SendRecord(sender, dest, message, now)
            for sender, dests, message, _bits in self._outbox
            if sender in nodes
            for dest in dests
        ]

    def _adversary_turn(self, round_no: int, starting: bool) -> None:
        """Give the adversary its (rushing or non-rushing) turn for this round."""
        if self.adversary is None:
            return
        if starting:
            self.adversary.on_start()
        observed = self._observed_correct_sends() if self.rushing else None
        self.adversary.on_round(round_no, observed)
