"""Compatibility facade over the event kernel.

The shared simulation machinery lives in :mod:`repro.net.kernel`; this module
preserves the historical import surface (``Simulator``, ``SendRecord``,
``AdversaryContext``, ``build_node_ids``, …) used throughout the tests,
benchmarks and adversary framework.  ``Simulator`` *is* the event kernel —
the name is kept because "a simulator" is how protocol-facing code refers to
the object it is handed, while :class:`~repro.net.kernel.EventKernel`
describes the architectural role.
"""

from __future__ import annotations

from repro.net.kernel import (
    AdversaryContext,
    AdversaryProtocol,
    EventKernel,
    SendRecord,
    _NodeContext,
    build_node_ids,
)

#: historical name for the shared simulation machinery
Simulator = EventKernel

__all__ = [
    "AdversaryContext",
    "AdversaryProtocol",
    "EventKernel",
    "SendRecord",
    "Simulator",
    "build_node_ids",
    "_NodeContext",
]
