"""Shared machinery for the synchronous and asynchronous simulators.

Both schedulers share the same structure: a set of correct :class:`Node`
objects, an optional adversary controlling the remaining identities, a
:class:`MetricsCollector`, and per-node contexts that stamp the authenticated
sender id on every message.  The scheduling discipline (lock-step rounds vs
adversarially delayed events) is what the subclasses add.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Protocol, Sequence

from repro.net.messages import Message, SizeModel
from repro.net.metrics import MetricsCollector
from repro.net.node import Node
from repro.net.results import SimulationResult
from repro.net.rng import DeterministicRNG, derive_rng


@dataclass(frozen=True)
class SendRecord:
    """A single message put on the wire (used for adversary observation and logs)."""

    sender: int
    dest: int
    message: Message
    time: float


class AdversaryProtocol(Protocol):
    """The interface the simulators require from an adversary implementation.

    The concrete adversary framework lives in :mod:`repro.adversary`; the
    simulators only rely on this narrow protocol so that tests can plug in
    trivial stand-ins.
    """

    @property
    def byzantine_ids(self) -> frozenset:
        """Identities of the corrupted nodes (chosen non-adaptively, before the run)."""

    def bind(self, context: "AdversaryContext") -> None:
        """Attach the simulator-provided context before the run starts."""

    def on_start(self) -> None:
        """Called once at time zero."""

    def on_deliver(self, byz_id: int, sender: int, message: Message) -> None:
        """A message from ``sender`` reached the corrupted node ``byz_id``."""

    def on_round(self, round_no: int, observed: Optional[List[SendRecord]]) -> None:
        """Synchronous scheduler: the adversary's turn for this round.

        ``observed`` contains the messages the correct nodes send this round
        when the adversary is *rushing*, and ``None`` when it is non-rushing.
        """

    def observe_send(self, record: SendRecord) -> None:
        """Asynchronous scheduler: the adversary sees every message when it is sent."""

    def delay_for(self, record: SendRecord) -> Optional[float]:
        """Asynchronous scheduler: pick this message's delay in ``(0, 1]``.

        Returning ``None`` delegates the choice to the simulator's default
        delay policy.
        """


class AdversaryContext:
    """Capabilities granted to the adversary: send as any corrupted node."""

    def __init__(self, simulator: "Simulator", rng: DeterministicRNG) -> None:
        self._simulator = simulator
        self.rng = rng

    @property
    def n(self) -> int:
        """System size."""
        return self._simulator.n

    def now(self) -> float:
        """Current simulation time."""
        return self._simulator.now()

    def send_as(self, byz_id: int, dest: int, message: Message) -> None:
        """Send ``message`` to ``dest`` with the (authentic) sender id ``byz_id``.

        Channels are authenticated (Section 2.1): even the adversary can only
        send under the identities it actually controls, which this method
        enforces.
        """
        if byz_id not in self._simulator.byzantine_ids:
            raise PermissionError(
                f"adversary tried to forge sender id {byz_id}, which it does not control"
            )
        self._simulator.dispatch_send(byz_id, dest, message)


class _NodeContext:
    """Concrete :class:`~repro.net.node.NodeContext` bound to one correct node."""

    def __init__(self, simulator: "Simulator", node_id: int, rng: DeterministicRNG) -> None:
        self._simulator = simulator
        self._node_id = node_id
        self._rng = rng

    @property
    def node_id(self) -> int:
        return self._node_id

    @property
    def n(self) -> int:
        return self._simulator.n

    @property
    def rng(self) -> DeterministicRNG:
        return self._rng

    def now(self) -> float:
        return self._simulator.now()

    def send(self, dest: int, message: Message) -> None:
        if not 0 <= dest < self._simulator.n:
            raise ValueError(f"destination {dest} outside [0, {self._simulator.n})")
        self._simulator.dispatch_send(self._node_id, dest, message)


class Simulator:
    """Common state and helpers shared by both schedulers.

    Parameters
    ----------
    nodes:
        The correct protocol participants.  Their ``node_id`` attributes must
        be distinct and must not collide with the adversary's corrupted ids.
    n:
        Total system size (correct + Byzantine).
    adversary:
        Optional adversary; when omitted the run is failure-free, which is the
        setting in which the paper guarantees success deterministically
        ("unlike many randomized protocols, success is guaranteed when there
        is no Byzantine fault").
    seed:
        Master seed from which every node's private RNG, the adversary's RNG
        and the scheduler's RNG are derived.
    size_model:
        Bit-accounting model; defaults to ``SizeModel(n)``.
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        n: int,
        adversary: Optional[AdversaryProtocol] = None,
        seed: int = 0,
        size_model: Optional[SizeModel] = None,
    ) -> None:
        self.n = n
        self.seed = seed
        self.adversary = adversary
        self.byzantine_ids: frozenset = (
            frozenset(adversary.byzantine_ids) if adversary is not None else frozenset()
        )
        self.nodes: Dict[int, Node] = {}
        for node in nodes:
            if node.node_id in self.byzantine_ids:
                raise ValueError(
                    f"node {node.node_id} is both a correct node and Byzantine"
                )
            if node.node_id in self.nodes:
                raise ValueError(f"duplicate node id {node.node_id}")
            self.nodes[node.node_id] = node
        self.correct_ids: List[int] = sorted(self.nodes)

        self.size_model = size_model or SizeModel(n)
        self.metrics = MetricsCollector(self.size_model)
        self._decided: Dict[int, bool] = {i: False for i in self.correct_ids}

        for node_id, node in self.nodes.items():
            rng = derive_rng(seed, "node", node_id)
            node.bind(_NodeContext(self, node_id, rng))
        if adversary is not None:
            adversary.bind(AdversaryContext(self, derive_rng(seed, "adversary")))

    # ------------------------------------------------------------------
    # hooks implemented by subclasses
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current simulation time (round number or event time)."""
        raise NotImplementedError

    def dispatch_send(self, sender: int, dest: int, message: Message) -> None:
        """Accept a message for (scheduler-specific) future delivery."""
        raise NotImplementedError

    def run(self) -> SimulationResult:
        """Execute the protocol to completion and return the result."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def deliver(self, sender: int, dest: int, message: Message, bits: int) -> None:
        """Hand a message to its recipient (correct node or adversary)."""
        self.metrics.record_delivery(dest, bits)
        if dest in self.nodes:
            self.nodes[dest].on_message(sender, message)
            self.note_decisions(dest)
        elif self.adversary is not None and dest in self.byzantine_ids:
            self.adversary.on_deliver(dest, sender, message)
        # messages to ids that exist in neither set (possible when a protocol
        # is run on a sub-population) are silently dropped, matching the model
        # where such a node simply never replies.

    def note_decisions(self, node_id: int) -> None:
        """Record the decision time of ``node_id`` if it has just decided."""
        if not self._decided.get(node_id) and self.nodes[node_id].has_decided:
            self._decided[node_id] = True
            self.metrics.record_decision(node_id, self.now())

    def all_decided(self) -> bool:
        """Whether every correct node has decided."""
        return all(self._decided.values())

    def build_result(self, rounds: Optional[int], span: Optional[float]) -> SimulationResult:
        """Assemble the :class:`SimulationResult` once execution has stopped."""
        decisions = {
            node_id: node.decision
            for node_id, node in self.nodes.items()
            if node.has_decided
        }
        return SimulationResult(
            n=self.n,
            correct_ids=list(self.correct_ids),
            byzantine_ids=sorted(self.byzantine_ids),
            decisions=decisions,
            rounds=rounds,
            span=span,
            metrics=self.metrics.summary(restrict_to=self.correct_ids),
            metrics_all=self.metrics.summary(),
        )


def build_node_ids(n: int, byzantine_ids: Iterable[int]) -> List[int]:
    """Return the identities of the correct nodes in a system of size ``n``."""
    byz = set(byzantine_ids)
    return [i for i in range(n) if i not in byz]
