"""Per-node and aggregate communication/time accounting.

The paper reports (Figure 1, Lemmas 3-10):

* *amortized communication complexity*: total bits exchanged divided by ``n``;
* *per-node worst case*: the maximum bits any single node sends/receives,
  which is what distinguishes a load-balanced protocol (KLST11) from AER;
* *time complexity*: rounds in the synchronous model, normalized delay units
  in the asynchronous model.

:class:`MetricsCollector` records every send and delivery as the simulators
execute, and :class:`MetricsSummary` condenses them into exactly the
quantities the benchmarks print.

Accounting is batched for speed: counters live in flat ``{node_id: int}``
dicts (no per-message object churn), the bit cost of a message is computed
once and memoised (protocol messages are immutable and frequently multicast),
and the event kernel can record a whole multicast or delivery batch with a
single call.  :class:`NodeTraffic` views are materialised on demand.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.net.messages import Message, SizeModel

#: safety bound on the memoised message-cost cache (entries are tiny; the cap
#: only matters for pathological runs with millions of distinct messages).
#: When full, the oldest *insertion* is evicted (FIFO — hits do not refresh
#: recency, keeping the hot lookup a single dict get): one pop per insert,
#: never the old clear-everything reset that dropped the whole memo at once.
_BITS_CACHE_LIMIT = 1 << 20


@dataclass
class NodeTraffic:
    """Raw traffic counters for a single node."""

    sent_messages: int = 0
    sent_bits: int = 0
    received_messages: int = 0
    received_bits: int = 0

    @property
    def total_bits(self) -> int:
        """Bits this node both sent and received (the paper's per-node load)."""
        return self.sent_bits + self.received_bits


@dataclass(frozen=True)
class MetricsSummary:
    """Aggregated view of a finished run, in the paper's units.

    Attributes
    ----------
    n:
        System size.
    total_messages / total_bits:
        Sums over all nodes (each message counted once, at the sender).
    amortized_bits:
        ``total_bits / n`` — the paper's amortized communication complexity.
    max_node_bits / median_node_bits / mean_node_bits:
        Distribution of per-node load (sent + received bits).
    load_imbalance:
        ``max_node_bits / max(1, median_node_bits)`` — the quantity behind the
        "Load-Balanced: Yes/No" row of Figure 1a.
    rounds:
        Number of synchronous rounds executed (``None`` for async runs).
    span:
        Normalized asynchronous completion time (``None`` for sync runs).
    decision_times:
        Per-node time (round or normalized time) at which each correct node
        decided; empty for protocols without a decision step.
    """

    n: int
    total_messages: int
    total_bits: int
    amortized_bits: float
    max_node_bits: int
    median_node_bits: float
    mean_node_bits: float
    load_imbalance: float
    rounds: Optional[int]
    span: Optional[float]
    decision_times: Dict[int, float]
    per_node_bits: Dict[int, int]

    @property
    def max_decision_time(self) -> Optional[float]:
        """Latest decision time among correct nodes, or ``None`` if nobody decided."""
        if not self.decision_times:
            return None
        return max(self.decision_times.values())

    def row(self) -> Dict[str, float]:
        """Return the summary as a flat dict convenient for tabular printing."""
        return {
            "n": self.n,
            "total_messages": self.total_messages,
            "total_bits": self.total_bits,
            "amortized_bits": round(self.amortized_bits, 2),
            "max_node_bits": self.max_node_bits,
            "median_node_bits": round(self.median_node_bits, 2),
            "load_imbalance": round(self.load_imbalance, 2),
            "rounds": self.rounds if self.rounds is not None else -1,
            "span": round(self.span, 3) if self.span is not None else -1,
            "max_decision_time": (
                round(self.max_decision_time, 3)
                if self.max_decision_time is not None
                else -1
            ),
        }


class MetricsCollector:
    """Records traffic and timing events during a simulation run.

    The collector is deliberately dumb: the simulators call the ``record_*``
    methods and everything else is derived lazily in :meth:`summary`.  The
    batched variants (:meth:`record_send_many`,
    :meth:`record_delivery_batch`) fold a whole multicast or delivery sweep
    into a constant number of dict updates.
    """

    def __init__(self, size_model: SizeModel, bits_cache_limit: int = _BITS_CACHE_LIMIT) -> None:
        self.size_model = size_model
        self._sent_messages: Dict[int, int] = {}
        self._sent_bits: Dict[int, int] = {}
        self._received_messages: Dict[int, int] = {}
        self._received_bits: Dict[int, int] = {}
        self._bits_cache: Dict[Message, int] = {}
        self._bits_cache_limit = max(1, bits_cache_limit)
        self._decision_times: Dict[int, float] = {}
        self._rounds: Optional[int] = None
        self._span: Optional[float] = None
        self._message_log_enabled = False
        self._message_log: List[tuple] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def enable_message_log(self) -> None:
        """Keep a full (sender, dest, kind, bits, time) log — for tests/debugging only."""
        self._message_log_enabled = True

    @property
    def message_log_enabled(self) -> bool:
        """Whether the per-message log is being kept."""
        return self._message_log_enabled

    @property
    def message_log(self) -> List[tuple]:
        """The full message log (empty unless :meth:`enable_message_log` was called)."""
        return self._message_log

    def bits_of(self, message: Message) -> int:
        """Bit cost of ``message``, memoised (messages are immutable).

        The memo is bounded: when full, the oldest *insertion* is evicted
        (FIFO — dicts iterate in insertion order, so ``next(iter(...))`` is
        the earliest-inserted entry; hits deliberately do not refresh
        recency, which keeps this hot path a single dict get).  A run with
        millions of distinct messages therefore holds at most
        ``bits_cache_limit`` entries at any time and evicts one entry per
        insert, instead of the old clear-everything reset.  A flood larger
        than the cache can still cycle out a long-lived entry (it is
        recomputed on next use); what is gone is the global reset that
        dropped every entry at once.
        """
        cache = self._bits_cache
        bits = cache.get(message)
        if bits is None:
            bits = message.bits(self.size_model)
            if len(cache) >= self._bits_cache_limit:
                del cache[next(iter(cache))]
            cache[message] = bits
        return bits

    @property
    def bits_cache_size(self) -> int:
        """Current number of memoised message costs (bounded by the limit)."""
        return len(self._bits_cache)

    def record_send(self, sender: int, dest: int, message: Message, time: float) -> int:
        """Record ``sender`` putting ``message`` on the wire towards ``dest``.

        Returns the bit cost charged, so the caller can reuse it for the
        matching delivery record.
        """
        bits = self.bits_of(message)
        sent_messages = self._sent_messages
        sent_messages[sender] = sent_messages.get(sender, 0) + 1
        sent_bits = self._sent_bits
        sent_bits[sender] = sent_bits.get(sender, 0) + bits
        if self._message_log_enabled:
            self._message_log.append((sender, dest, message.kind, bits, time))
        return bits

    def record_send_many(
        self, sender: int, dests: Sequence[int], message: Message, time: float
    ) -> int:
        """Record a multicast of ``message`` to every node in ``dests`` in one step.

        Equivalent to calling :meth:`record_send` once per destination (the
        message log, when enabled, still receives one entry per destination).
        Returns the per-message bit cost.
        """
        bits = self.bits_of(message)
        count = len(dests)
        sent_messages = self._sent_messages
        sent_messages[sender] = sent_messages.get(sender, 0) + count
        sent_bits = self._sent_bits
        sent_bits[sender] = sent_bits.get(sender, 0) + count * bits
        if self._message_log_enabled:
            kind = message.kind
            self._message_log.extend((sender, dest, kind, bits, time) for dest in dests)
        return bits

    def record_delivery(self, dest: int, bits: int) -> None:
        """Record ``dest`` receiving a message of the given bit cost."""
        received_messages = self._received_messages
        received_messages[dest] = received_messages.get(dest, 0) + 1
        received_bits = self._received_bits
        received_bits[dest] = received_bits.get(dest, 0) + bits

    def record_delivery_batch(self, counts: Iterable[Tuple[int, int, int]]) -> None:
        """Record a batch of deliveries as ``(dest, message_count, total_bits)`` triples."""
        received_messages = self._received_messages
        received_bits = self._received_bits
        for dest, messages, bits in counts:
            received_messages[dest] = received_messages.get(dest, 0) + messages
            received_bits[dest] = received_bits.get(dest, 0) + bits

    def record_decision(self, node_id: int, time: float) -> None:
        """Record the (first) time at which ``node_id`` decided."""
        self._decision_times.setdefault(node_id, time)

    def record_rounds(self, rounds: int) -> None:
        """Record the number of synchronous rounds the run took."""
        self._rounds = rounds

    def record_span(self, span: float) -> None:
        """Record the normalized completion time of an asynchronous run."""
        self._span = span

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def traffic_of(self, node_id: int) -> NodeTraffic:
        """Return the raw counters for one node (zeros if it never communicated)."""
        return NodeTraffic(
            sent_messages=self._sent_messages.get(node_id, 0),
            sent_bits=self._sent_bits.get(node_id, 0),
            received_messages=self._received_messages.get(node_id, 0),
            received_bits=self._received_bits.get(node_id, 0),
        )

    def _total_bits_of(self, node_id: int) -> int:
        return self._sent_bits.get(node_id, 0) + self._received_bits.get(node_id, 0)

    def per_node_bits(self, node_ids: Optional[List[int]] = None) -> Dict[int, int]:
        """Return ``{node_id: sent+received bits}`` for the requested nodes."""
        if node_ids is None:
            node_ids = sorted(set(self._sent_bits) | set(self._received_bits))
        return {node_id: self._total_bits_of(node_id) for node_id in node_ids}

    def summary(self, restrict_to: Optional[List[int]] = None) -> MetricsSummary:
        """Condense the recorded events into a :class:`MetricsSummary`.

        Parameters
        ----------
        restrict_to:
            When given, per-node statistics (max/median/mean load, decision
            times) are computed over these nodes only — the benchmarks use
            this to report the load of *correct* nodes, as the paper does.
            Totals (total bits/messages) always cover the whole system.
        """
        n = self.size_model.n
        total_messages = sum(self._sent_messages.values())
        total_bits = sum(self._sent_bits.values())

        if restrict_to is None:
            node_ids = list(range(n))
            decisions = dict(self._decision_times)
        else:
            node_ids = list(restrict_to)
            decisions = {
                i: t for i, t in self._decision_times.items() if i in set(restrict_to)
            }
        per_node = {i: self._total_bits_of(i) for i in node_ids}
        loads = list(per_node.values())
        if not loads:
            loads = [0]

        median_load = statistics.median(loads)
        mean_load = statistics.fmean(loads)
        max_load = max(loads)
        imbalance = max_load / max(1.0, median_load)

        return MetricsSummary(
            n=n,
            total_messages=total_messages,
            total_bits=total_bits,
            amortized_bits=total_bits / max(1, n),
            max_node_bits=max_load,
            median_node_bits=median_load,
            mean_node_bits=mean_load,
            load_imbalance=imbalance,
            rounds=self._rounds,
            span=self._span,
            decision_times=decisions,
            per_node_bits=per_node,
        )
