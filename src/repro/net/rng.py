"""Deterministic randomness utilities.

The paper's model (Section 2.1) requires every node to possess a *private*
random number generator, and the sampler constructions (Section 2.2) require
all nodes to share common sampling functions ``I``, ``H`` and ``J`` without
communicating.  Both needs are met here:

* :func:`derive_rng` derives an independent, reproducible RNG stream for each
  node (and for the adversary and the simulator itself) from a single master
  seed, so that a whole experiment is a pure function of that seed.
* :func:`stable_hash` is a keyed, platform-independent hash used to realise
  the shared samplers as deterministic functions (Python's built-in ``hash``
  is salted per process and therefore unsuitable).
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable


class DeterministicRNG(random.Random):
    """A :class:`random.Random` subclass tagged with the label it was derived from.

    Behaviourally identical to ``random.Random``; the extra :attr:`label`
    makes debugging of multi-party executions considerably easier because the
    provenance of every random draw is visible in reprs and log lines.
    """

    def __init__(self, seed: int, label: str = "") -> None:
        super().__init__(seed)
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - cosmetic only
        return f"DeterministicRNG(label={self.label!r})"


def absorb(hasher, part: object) -> None:
    """Absorb one part into ``hasher`` using the canonical length-prefixed encoding.

    This is *the* encoding of :func:`stable_hash`; every incremental user
    (e.g. the samplers' prefix hashers) must go through it so the digests
    stay bit-identical.
    """
    encoded = repr(part).encode("utf-8")
    hasher.update(len(encoded).to_bytes(4, "big"))
    hasher.update(encoded)


def hash_prefix(*parts: object):
    """A blake2b hasher with ``parts`` absorbed, for incremental reuse.

    ``prefix.copy()`` + :func:`absorb`-ing the remaining parts produces
    exactly the digest of :func:`stable_hash` over the full part list; the
    samplers use this to avoid re-hashing their constant key prefix
    (seed, family name, string) for every single draw.
    """
    hasher = hashlib.blake2b(digest_size=16)
    for part in parts:
        absorb(hasher, part)
    return hasher


def _digest(parts: Iterable[object]) -> bytes:
    """Return a 16-byte blake2b digest of the canonical encoding of ``parts``."""
    hasher = hashlib.blake2b(digest_size=16)
    for part in parts:
        absorb(hasher, part)
    return hasher.digest()


def stable_hash(*parts: object) -> int:
    """Return a deterministic, platform-independent 128-bit hash of ``parts``.

    Every argument is folded into the digest through its ``repr``; arguments
    of different types therefore never collide accidentally (``1`` and ``"1"``
    hash differently).  The function is the basis of the shared sampler
    constructions in :mod:`repro.samplers`.
    """
    return int.from_bytes(_digest(parts), "big")


def derive_rng(master_seed: int, *scope: object) -> DeterministicRNG:
    """Derive an independent RNG for a scope such as ``("node", 17)``.

    Two different scopes yield statistically independent streams; the same
    scope always yields the same stream.  This is how per-node *private* RNGs
    are realised: node ``i`` receives ``derive_rng(seed, "node", i)`` and the
    adversary cannot predict its draws (the adversary object is simply never
    handed that stream).
    """
    label = "/".join(repr(part) for part in scope)
    return DeterministicRNG(stable_hash(master_seed, *scope), label=label)


def random_bitstring(rng: random.Random, length: int) -> str:
    """Return a uniformly random bit string (e.g. ``"011010"``) of ``length`` bits."""
    return "".join("1" if rng.random() < 0.5 else "0" for _ in range(length))
