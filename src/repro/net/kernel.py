"""The event kernel — machinery shared by every scheduling discipline.

Both schedulers execute the same abstract machine: a set of correct
:class:`~repro.net.node.Node` objects, an optional adversary controlling the
remaining identities, a :class:`~repro.net.metrics.MetricsCollector`, and
per-node contexts that stamp the authenticated sender id on every message.
:class:`EventKernel` owns all of that — population wiring, message delivery
(single and batched), decision tracking and result assembly — so that
:class:`~repro.net.sync.SynchronousSimulator` and
:class:`~repro.net.asynchronous.AsynchronousSimulator` are reduced to thin
scheduling policies: *when* a dispatched message is delivered.

Hot-path design (the columnar fast path):

* a multicast enters the kernel as **one** grouped ``(sender, dests, message,
  bits)`` record via :meth:`EventKernel.dispatch_send_many`, so its metrics
  are a constant number of dict updates and the per-destination fan-out
  happens only at delivery time;
* repeated payloads are **interned** (:meth:`EventKernel.intern_payload`):
  equal immutable messages dispatched by different senders collapse to one
  canonical object, so a round's inbox is a struct-of-arrays over a small
  set of shared payloads rather than N distinct Message tuples — and
  engine-level per-message memos can key on object identity;
* :meth:`EventKernel.deliver_batch` delivers a whole batch (e.g. one
  synchronous round's inbox) **columnarly**: per-node received counters are
  flat integer arrays indexed by node id (no dict churn on the inner loop),
  handlers are fetched from an id-indexed array, and the whole batch is
  flushed to the :class:`~repro.net.metrics.MetricsCollector` with one call;
  decision tracking runs once per *touched* node after the batch (all
  deliveries of a batch share the same logical time, so decision timestamps
  are unchanged; within a batch they are recorded in node-id order).
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

from repro.net.messages import Message, SizeModel
from repro.net.metrics import MetricsCollector
from repro.net.node import Node
from repro.net.results import SimulationResult
from repro.net.rng import DeterministicRNG, derive_rng
from repro.trace.collector import TraceCollector

#: safety bound on the payload intern table; overflow clears the table (a
#: pure memo — only re-canonicalisation is lost, never correctness)
_INTERN_LIMIT = 1 << 16


@contextmanager
def paused_gc():
    """Pause the cyclic garbage collector around a bounded event loop.

    A run allocates millions of container objects while its long-lived state
    (vote dicts, event buckets, intern tables) keeps growing, so the cyclic
    collector re-walks an ever larger survivor graph dozens of times per run
    for nothing: the only cycles a run creates are the kernel ↔ node ↔
    context web itself, which stays alive until the run ends anyway.
    Pausing collection for the duration of the loop removes that overhead
    (~25% wall-clock on the async benchmark); reference counting still
    reclaims all acyclic garbage immediately, and the deferred cycle sweep
    happens at the caller's next allocation burst after ``gc.enable()``.
    No-op when the collector is already disabled (e.g. nested runs of a
    composition, or an embedding application that manages GC itself).
    """
    if not gc.isenabled():
        yield
        return
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


@dataclass(frozen=True)
class SendRecord:
    """A single message put on the wire (used for adversary observation and logs)."""

    sender: int
    dest: int
    message: Message
    time: float


class AdversaryProtocol(Protocol):
    """The interface the simulators require from an adversary implementation.

    The concrete adversary framework lives in :mod:`repro.adversary`; the
    simulators only rely on this narrow protocol so that tests can plug in
    trivial stand-ins.
    """

    @property
    def byzantine_ids(self) -> frozenset:
        """Identities of the corrupted nodes (chosen non-adaptively, before the run)."""

    def bind(self, context: "AdversaryContext") -> None:
        """Attach the simulator-provided context before the run starts."""

    def on_start(self) -> None:
        """Called once at time zero."""

    def on_deliver(self, byz_id: int, sender: int, message: Message) -> None:
        """A message from ``sender`` reached the corrupted node ``byz_id``."""

    def on_round(self, round_no: int, observed: Optional[List[SendRecord]]) -> None:
        """Synchronous scheduler: the adversary's turn for this round.

        ``observed`` contains the messages the correct nodes send this round
        when the adversary is *rushing*, and ``None`` when it is non-rushing.
        """

    def observe_send(self, record: SendRecord) -> None:
        """Asynchronous scheduler: the adversary sees every message when it is sent."""

    def delay_for(self, record: SendRecord) -> Optional[float]:
        """Asynchronous scheduler: pick this message's delay in ``(0, 1]``.

        Returning ``None`` delegates the choice to the simulator's default
        delay policy.
        """


class AdversaryContext:
    """Capabilities granted to the adversary: send as any corrupted node."""

    def __init__(self, kernel: "EventKernel", rng: DeterministicRNG) -> None:
        self._kernel = kernel
        self.rng = rng

    @property
    def n(self) -> int:
        """System size."""
        return self._kernel.n

    def now(self) -> float:
        """Current simulation time."""
        return self._kernel.now()

    def send_as(self, byz_id: int, dest: int, message: Message) -> None:
        """Send ``message`` to ``dest`` with the (authentic) sender id ``byz_id``.

        Channels are authenticated (Section 2.1): even the adversary can only
        send under the identities it actually controls, which this method
        enforces.
        """
        if byz_id not in self._kernel.byzantine_ids:
            raise PermissionError(
                f"adversary tried to forge sender id {byz_id}, which it does not control"
            )
        self._kernel.dispatch_send(byz_id, dest, message)


class _NodeContext:
    """Concrete :class:`~repro.net.node.NodeContext` bound to one correct node."""

    def __init__(self, kernel: "EventKernel", node_id: int, rng: DeterministicRNG) -> None:
        self._kernel = kernel
        self._node_id = node_id
        self._rng = rng

    @property
    def node_id(self) -> int:
        return self._node_id

    @property
    def n(self) -> int:
        return self._kernel.n

    @property
    def rng(self) -> DeterministicRNG:
        return self._rng

    def now(self) -> float:
        return self._kernel.now()

    def send(self, dest: int, message: Message) -> None:
        if not 0 <= dest < self._kernel.n:
            raise ValueError(f"destination {dest} outside [0, {self._kernel.n})")
        self._kernel.dispatch_send(self._node_id, dest, message)

    def send_many(self, dests: Sequence[int], message: Message) -> None:
        if not isinstance(dests, (tuple, list)):
            dests = tuple(dests)  # tolerate sets/generators, as multicast always did
        if not dests:
            return
        kernel = self._kernel
        if min(dests) < 0 or max(dests) >= kernel.n:
            raise ValueError(f"destination outside [0, {kernel.n}) in {dests!r}")
        kernel.dispatch_send_many(self._node_id, dests, message)


class EventKernel:
    """Common state and machinery shared by both schedulers.

    Parameters
    ----------
    nodes:
        The correct protocol participants.  Their ``node_id`` attributes must
        be distinct and must not collide with the adversary's corrupted ids.
    n:
        Total system size (correct + Byzantine).
    adversary:
        Optional adversary; when omitted the run is failure-free, which is the
        setting in which the paper guarantees success deterministically
        ("unlike many randomized protocols, success is guaranteed when there
        is no Byzantine fault").
    seed:
        Master seed from which every node's private RNG, the adversary's RNG
        and the scheduler's RNG are derived.
    size_model:
        Bit-accounting model; defaults to ``SizeModel(n)``.
    trace:
        Optional :class:`~repro.trace.collector.TraceCollector`.  ``None``
        (the default) is the guaranteed-free disabled path: every probe site
        in the kernel and the schedulers is a single ``is not None`` check
        per *grouped* dispatch record, and nothing else changes — the golden
        equivalence tests pin byte-identical results.
    faults:
        Optional :class:`~repro.faults.FaultInjector`.  ``None`` (the
        default) is the same guaranteed-free contract as ``trace``: one
        ``is not None`` check per delivery batch / event, byte-identical
        results pinned by the golden matrix.  With an injector, deliveries
        it vetoes (down destination, partition cut, random loss) are
        silently dropped — dropped messages count as sent but never as
        received.
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        n: int,
        adversary: Optional[AdversaryProtocol] = None,
        seed: int = 0,
        size_model: Optional[SizeModel] = None,
        trace: Optional[TraceCollector] = None,
        faults=None,
    ) -> None:
        self.n = n
        self.seed = seed
        self.adversary = adversary
        self.byzantine_ids: frozenset = (
            frozenset(adversary.byzantine_ids) if adversary is not None else frozenset()
        )
        self.nodes: Dict[int, Node] = {}
        for node in nodes:
            if node.node_id in self.byzantine_ids:
                raise ValueError(
                    f"node {node.node_id} is both a correct node and Byzantine"
                )
            if node.node_id in self.nodes:
                raise ValueError(f"duplicate node id {node.node_id}")
            self.nodes[node.node_id] = node
        self.correct_ids: List[int] = sorted(self.nodes)

        self.size_model = size_model or SizeModel(n)
        self.metrics = MetricsCollector(self.size_model)
        self.trace = trace
        if trace is not None:
            trace.bind_population(self.correct_ids, self.byzantine_ids)
            trace.bind_clock(self.now)
        self.faults = faults
        if faults is not None:
            faults.bind_population(self.correct_ids, self.byzantine_ids)
            if trace is not None:
                faults.bind_trace(trace)
        self._decided: Dict[int, bool] = {i: False for i in self.correct_ids}
        self._undecided_count = len(self.correct_ids)

        for node_id, node in self.nodes.items():
            rng = derive_rng(seed, "node", node_id)
            node.bind(_NodeContext(self, node_id, rng))
        if adversary is not None:
            adversary.bind(AdversaryContext(self, derive_rng(seed, "adversary")))
        #: bound per-node message handlers, saving an attribute lookup per delivery
        self._on_message_of: Dict[int, object] = {
            node_id: node.on_message for node_id, node in self.nodes.items()
        }
        # Columnar delivery state: handlers and node objects in id-indexed
        # arrays, so the delivery inner loop is two list indexings instead of
        # dict lookups.  ``_id_limit`` covers every known identity (correct
        # and Byzantine); destinations outside it — possible when a protocol
        # runs on a sub-population — take a spill-dict slow path.
        known = [n] + [i + 1 for i in self.nodes] + [i + 1 for i in self.byzantine_ids]
        self._id_limit: int = max(known)
        self._handler_list: List[Optional[object]] = [None] * self._id_limit
        self._node_list: List[Optional[Node]] = [None] * self._id_limit
        for node_id, node in self.nodes.items():
            if node_id >= 0:
                self._handler_list[node_id] = node.on_message
                self._node_list[node_id] = node
        #: payload intern table: equal messages collapse to one canonical
        #: object (bounded; cleared wholesale on overflow, which only costs
        #: re-canonicalisation — interning is a pure memory/speed memo)
        self._intern: Dict[Message, Message] = {}

    # ------------------------------------------------------------------
    # hooks implemented by the scheduling policies
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current simulation time (round number or event time)."""
        raise NotImplementedError

    def dispatch_send(self, sender: int, dest: int, message: Message) -> None:
        """Accept a message for (scheduler-specific) future delivery."""
        raise NotImplementedError

    def dispatch_send_many(self, sender: int, dests: Sequence[int], message: Message) -> None:
        """Accept one message for many destinations (a multicast).

        Schedulers override this with a batched implementation; the default
        simply dispatches per destination, which is always equivalent.
        """
        for dest in dests:
            self.dispatch_send(sender, dest, message)

    def run(self) -> SimulationResult:
        """Execute the protocol to completion and return the result."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------
    def deliver(self, sender: int, dest: int, message: Message, bits: int) -> None:
        """Hand a message to its recipient (correct node or adversary)."""
        if self.faults is not None and self.faults.should_drop(sender, dest, self.now()):
            return
        self.metrics.record_delivery(dest, bits)
        node = self.nodes.get(dest)
        if node is not None:
            node.on_message(sender, message)
            self.note_decisions(dest)
        elif self.adversary is not None and dest in self.byzantine_ids:
            self.adversary.on_deliver(dest, sender, message)
        # messages to ids that exist in neither set (possible when a protocol
        # is run on a sub-population) are silently dropped, matching the model
        # where such a node simply never replies.

    def intern_payload(self, message: Message) -> Message:
        """Return the canonical object for ``message`` (payload interning).

        Equal immutable messages dispatched by different senders — the d
        copies of an ``Fw1`` created by every member of one pull quorum, the
        push multicasts of every knowledgeable node — collapse to a single
        shared object, which (a) frees their duplicates immediately and (b)
        lets engine-level memos key pure per-message facts on object
        identity.  Interning never changes behaviour: messages are frozen
        dataclasses compared by value everywhere.
        """
        intern = self._intern
        canonical = intern.get(message)
        if canonical is not None:
            return canonical
        if len(intern) >= _INTERN_LIMIT:
            intern.clear()
        intern[message] = message
        return message

    def deliver_batch(self, batch: Iterable[Tuple[int, Sequence[int], Message, int]]) -> None:
        """Deliver a batch of grouped ``(sender, dests, message, bits)`` records.

        Per-destination delivery order is exactly the dispatch order; only
        the metrics accumulation and the decision bookkeeping are batched.
        The accumulation is columnar: received message/bit counters live in
        flat integer arrays indexed by destination id (destinations outside
        the known id range spill to a dict), the whole batch is flushed to
        the collector with one call, and each *touched* correct node's
        decision is recorded once at the end of the batch in node-id order
        (all deliveries of a batch share the same logical time, so decision
        timestamps are identical to per-message tracking).
        """
        limit = self._id_limit
        recv_msgs = [0] * limit
        recv_bits = [0] * limit
        handlers = self._handler_list
        adversary = self.adversary
        byzantine = self.byzantine_ids
        faults = self.faults
        now = self.now() if faults is not None else 0.0
        spill: Optional[Dict[int, List[int]]] = None
        for sender, dests, message, bits in batch:
            if faults is not None:
                # injected drops: filter the fan-out before delivery (dropped
                # messages were counted as sent, never as received)
                dests = [d for d in dests if not faults.should_drop(sender, d, now)]
            for dest in dests:
                if 0 <= dest < limit:
                    recv_msgs[dest] += 1
                    recv_bits[dest] += bits
                    handler = handlers[dest]
                    if handler is not None:
                        handler(sender, message)
                    elif adversary is not None and dest in byzantine:
                        adversary.on_deliver(dest, sender, message)
                else:
                    # out-of-population destination: counted (as always),
                    # delivered to nobody
                    if spill is None:
                        spill = {}
                    entry = spill.get(dest)
                    if entry is None:
                        spill[dest] = [1, bits]
                    else:
                        entry[0] += 1
                        entry[1] += bits
        counts = [(d, recv_msgs[d], recv_bits[d]) for d in range(limit) if recv_msgs[d]]
        if spill:
            counts.extend((d, e[0], e[1]) for d, e in spill.items())
        self.metrics.record_delivery_batch(counts)
        decided = self._decided
        nodes = self.nodes
        for dest, _msgs, _bits in counts:
            if dest in nodes and not decided[dest]:
                self.note_decisions(dest)

    # ------------------------------------------------------------------
    # decision tracking and result assembly
    # ------------------------------------------------------------------
    def note_decisions(self, node_id: int) -> None:
        """Record the decision time of ``node_id`` if it has just decided."""
        if not self._decided.get(node_id) and self.nodes[node_id].has_decided:
            self._decided[node_id] = True
            self._undecided_count -= 1
            self.metrics.record_decision(node_id, self.now())
            if self.trace is not None:
                self.trace.on_decided(node_id, self.now())

    def all_decided(self) -> bool:
        """Whether every correct node has decided."""
        return self._undecided_count == 0

    def build_result(self, rounds: Optional[int], span: Optional[float]) -> SimulationResult:
        """Assemble the :class:`SimulationResult` once execution has stopped."""
        decisions = {
            node_id: node.decision
            for node_id, node in self.nodes.items()
            if node.has_decided
        }
        return SimulationResult(
            n=self.n,
            correct_ids=list(self.correct_ids),
            byzantine_ids=sorted(self.byzantine_ids),
            decisions=decisions,
            rounds=rounds,
            span=span,
            metrics=self.metrics.summary(restrict_to=self.correct_ids),
            metrics_all=self.metrics.summary(),
        )


def build_node_ids(n: int, byzantine_ids: Iterable[int]) -> List[int]:
    """Return the identities of the correct nodes in a system of size ``n``."""
    byz = set(byzantine_ids)
    return [i for i in range(n) if i not in byz]
