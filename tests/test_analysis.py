"""Tests for the analysis helpers (growth fitting, statistics, experiment plumbing)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.complexity import (
    classify_growth,
    fit_growth,
    growth_exponent,
    polylog_ratio,
)
from repro.analysis.experiments import format_table, result_row, sweep_aer, sweep_rows
from repro.analysis.statistics import SuccessEstimate, estimate_success, wilson_interval
from repro.runner import run_aer_experiment


class TestGrowthFitting:
    NS = [32, 64, 128, 256, 512]

    def test_linear_data_exponent_one(self):
        costs = [3.0 * n for n in self.NS]
        assert growth_exponent(self.NS, costs) == pytest.approx(1.0, abs=0.01)

    def test_sqrt_data_exponent_half(self):
        costs = [5.0 * math.sqrt(n) for n in self.NS]
        assert growth_exponent(self.NS, costs) == pytest.approx(0.5, abs=0.01)

    def test_polylog_data_exponent_below_sqrt_and_linear(self):
        # Over a finite range log²(n) looks like a small power of n (~0.4 here);
        # the important property is that it sits clearly below 0.5 and 1.0.
        costs = [7.0 * math.log2(n) ** 2 for n in self.NS]
        exponent = growth_exponent(self.NS, costs)
        assert exponent < 0.48
        assert exponent < growth_exponent(self.NS, [float(n) for n in self.NS])

    def test_polylog_fit_recovers_exponent(self):
        costs = [2.0 * math.log2(n) ** 2 for n in self.NS]
        fit = fit_growth(self.NS, costs, model="polylog")
        assert fit.exponent == pytest.approx(2.0, abs=0.05)
        assert fit.r_squared > 0.99

    def test_power_fit_predict(self):
        costs = [4.0 * n for n in self.NS]
        fit = fit_growth(self.NS, costs, model="power")
        assert fit.predict(1000) == pytest.approx(4000.0, rel=0.05)

    def test_polylog_fit_predict(self):
        costs = [3.0 * math.log2(n) for n in self.NS]
        fit = fit_growth(self.NS, costs, model="polylog")
        assert fit.predict(256) == pytest.approx(3.0 * 8, rel=0.1)

    def test_polylog_ratio_flat_for_log_squared(self):
        costs = [10.0 * math.log2(n) ** 2 for n in self.NS]
        assert polylog_ratio(self.NS, costs) == pytest.approx(1.0, abs=0.01)

    def test_polylog_ratio_grows_for_linear(self):
        costs = [float(n) for n in self.NS]
        assert polylog_ratio(self.NS, costs) > 3.0

    def test_classify_growth_keys(self):
        summary = classify_growth(self.NS, [float(n) for n in self.NS])
        assert set(summary) == {
            "power_exponent", "power_r2", "polylog_exponent", "polylog_r2", "polylog_ratio",
        }

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            fit_growth(self.NS, [1.0] * 5, model="exp")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            fit_growth([1, 2], [1.0], model="power")

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_growth([64], [1.0], model="power")

    def test_empty_polylog_ratio(self):
        assert polylog_ratio([], []) == 1.0

    @given(
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.2, max_value=1.5),
    )
    @settings(max_examples=25, deadline=None)
    def test_hypothesis_power_exponent_recovered(self, coefficient, exponent):
        ns = [32, 64, 128, 256]
        costs = [coefficient * n**exponent for n in ns]
        assert growth_exponent(ns, costs) == pytest.approx(exponent, abs=0.02)


class TestStatistics:
    def test_wilson_interval_contains_phat(self):
        low, high = wilson_interval(8, 10)
        assert low < 0.8 < high

    def test_wilson_interval_zero_failures_not_degenerate(self):
        low, high = wilson_interval(10, 10)
        assert high == 1.0
        assert low < 1.0

    def test_wilson_interval_zero_trials(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_wilson_interval_bad_input(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    def test_estimate_success_counts(self):
        estimate = estimate_success(lambda seed: seed % 2 == 0, trials=10)
        assert estimate.successes == 5
        assert estimate.rate == 0.5
        assert estimate.low < 0.5 < estimate.high

    def test_estimate_success_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            estimate_success(lambda seed: True, trials=0)

    def test_estimate_row(self):
        estimate = SuccessEstimate(successes=3, trials=4, low=0.2, high=0.99)
        row = estimate.row()
        assert row["rate"] == 0.75


class TestExperimentPlumbing:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "bb": "x"}, {"a": 22, "bb": "yy"}], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "no rows" in format_table([], title="empty")

    def test_result_row_fields(self, small_sync_result):
        row = result_row(small_sync_result, protocol="AER")
        assert row["protocol"] == "AER"
        assert row["agreement"] == 1
        assert row["n"] == small_sync_result.n

    def test_sweep_aer_lengths(self):
        results = sweep_aer([24, 32], adversary_name="silent", seed=1)
        assert [r.n for r in results] == [24, 32]

    def test_sweep_rows_labels(self):
        rows = sweep_rows(
            [24, 32],
            lambda n: run_aer_experiment(n=n, adversary_name="silent", seed=1),
            label="AER",
        )
        assert all(row["protocol"] == "AER" for row in rows)
        assert [row["n"] for row in rows] == [24, 32]
