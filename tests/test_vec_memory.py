"""Tests for the vectorized backend's memory layer: bit-packed tables,
the ``vec_memory_mb`` budget contract, and the bench RSS instrumentation.

The load-bearing properties:

* packing is lossless — every packed row decodes bit-for-bit to the
  samplers' draws, on both the sampler path (small ``n``) and the batched
  hash path (large ``n``);
* the budget knob changes *memory only* — an absurdly undersized budget
  must produce byte-identical results to the default;
* BENCH provenance carries each generation's measurement protocol
  (``repeats``) into the trajectory, so min-of-2 numbers are never read
  as min-of-5.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import AERConfig
from repro.runner import run_aer_experiment
from repro.vec.bitpack import BitMatrix, bits_for, pack_rows, packed_width, unpack_rows
from repro.vec.tables import VecSamplerTables


# ----------------------------------------------------------------------
# bitpack primitives
# ----------------------------------------------------------------------
class TestBitpack:
    @pytest.mark.parametrize("bits", [1, 3, 7, 8, 11, 17, 20])
    def test_pack_unpack_roundtrip(self, bits):
        rng = np.random.default_rng(bits)
        values = rng.integers(0, 1 << bits, size=(100, 13), dtype=np.int64)
        packed = pack_rows(values, bits)
        assert packed.shape == (100, packed_width(13, bits))
        out = unpack_rows(packed, 13, bits, dtype=np.int64)
        assert (out == values).all()

    def test_roundtrip_extremes(self):
        bits = 10
        values = np.array([[0, (1 << bits) - 1, 1, (1 << bits) - 2]], dtype=np.int64)
        assert (unpack_rows(pack_rows(values, bits), 4, bits, np.int64) == values).all()

    def test_unpack_chunking_matches_whole(self):
        # roundtrip across the internal _UNPACK_STEP boundary
        import repro.vec.bitpack as bitpack

        rng = np.random.default_rng(0)
        rows = bitpack._UNPACK_STEP + 17
        values = rng.integers(0, 1 << 9, size=(rows, 5), dtype=np.int64)
        out = unpack_rows(pack_rows(values, 9), 5, 9, np.int64)
        assert (out == values).all()

    def test_bits_for(self):
        assert bits_for(1) == 1
        assert bits_for(2) == 1
        assert bits_for(1024) == 10
        assert bits_for(1025) == 11
        assert bits_for(1_000_000) == 20

    def test_pack_rows_never_widens_to_input_dtype(self):
        # regression: the packed transient must be uint8 bit planes, not a
        # (rows, d, bits) matrix at the input width (the n=10⁵ RSS spike)
        values = np.arange(12, dtype=np.int64).reshape(3, 4)
        packed = pack_rows(values, 4)
        assert packed.dtype == np.uint8
        assert (unpack_rows(packed, 4, 4, np.int64) == values).all()


class TestBitMatrix:
    def test_against_bool_reference(self):
        rng = np.random.default_rng(7)
        ref = rng.random((50, 19)) < 0.3
        bm = BitMatrix(50, 19)
        bm.set_rows(slice(0, 50), ref)
        assert (bm.rows_bool(np.arange(50)) == ref).all()

    def test_fill_and_scatter(self):
        bm = BitMatrix(8, 11)
        ref = np.zeros((8, 11), dtype=bool)
        bm.fill_rows(slice(2, 4))
        ref[2:4] = True
        rows_idx = np.array([0, 5, 5, 7, 0])  # duplicates must be fine
        cols_idx = np.array([10, 3, 3, 0, 10])
        bm.set_true(rows_idx, cols_idx)
        ref[rows_idx, cols_idx] = True
        assert (bm.rows_bool(np.arange(8)) == ref).all()


# ----------------------------------------------------------------------
# packed sampler tables decode bit-for-bit
# ----------------------------------------------------------------------
def _reference_rows(config, family, s, xs):
    suite = config.shared_samplers()
    sampler = suite.push if family == "I" else suite.pull
    quorum = sampler.table(s).quorum
    return np.asarray([quorum(int(x)) for x in xs], dtype=np.int64)


@pytest.mark.parametrize("use_numpy", [False, True])
def test_table_rows_match_samplers(use_numpy):
    # n below NUMPY_MIN_N so both paths are cheap; use_numpy=True forces the
    # hash path the engine uses at n >= 1024
    config = AERConfig.for_system(192, sampler_seed=3)
    tables = VecSamplerTables(config, use_numpy=use_numpy)
    xs = np.array([0, 1, 17, 191, 90])
    for family in ("I", "H"):
        for s in ("alpha", "beta"):
            got = tables.rows(family, s, xs)
            assert (got == _reference_rows(config, family, s, xs)).all()


@pytest.mark.parametrize("use_numpy", [False, True])
def test_poll_rows_match_samplers(use_numpy):
    config = AERConfig.for_system(192, sampler_seed=3)
    tables = VecSamplerTables(config, use_numpy=use_numpy)
    xs = [0, 5, 191, 5]
    labels = [9, 1, 7, 1]
    got = tables.poll_rows(xs, labels)
    raw = tables.poll_rows(xs, labels, cache=False)
    poll_list = config.shared_samplers().poll.poll_list
    expected = np.asarray([poll_list(x, r) for x, r in zip(xs, labels)])
    assert (got == expected).all()
    assert (raw == expected).all()


def test_rows_identical_across_cache_budgets():
    config = AERConfig.for_system(192, sampler_seed=0)
    xs = np.arange(192)
    starved = VecSamplerTables(config, use_numpy=True)
    starved.set_unpacked_budget(0)  # every gather decodes from packed bytes
    roomy = VecSamplerTables(config, use_numpy=True)
    roomy.set_unpacked_budget(1 << 30)  # everything promotes to the LRU
    for family, s in (("I", "alpha"), ("H", "alpha")):
        a = starved.rows(family, s, xs)
        b = roomy.rows(family, s, xs)
        assert (a == b).all()
    assert not starved._unpacked  # the starved provider cached nothing
    assert roomy._unpacked  # the roomy one promoted


def test_iter_rows_streams_the_full_table():
    config = AERConfig.for_system(192, sampler_seed=1)
    tables = VecSamplerTables(config, use_numpy=True)
    full = tables.full("H", "s")
    chunks = [rows for _, rows in tables.iter_rows("H", "s", 37)]
    assert (np.concatenate(chunks) == full).all()


def test_packed_tables_are_smaller_than_int32():
    config = AERConfig.for_system(2048, sampler_seed=0)
    tables = VecSamplerTables(config, use_numpy=True)
    tables.ensure_all("I", "s")
    int32_bytes = config.n * tables.size * 4
    # 11 bits/id at n=2048 vs 32: packed must be well under half the size
    assert tables.packed_nbytes() < int32_bytes / 2


# ----------------------------------------------------------------------
# the vec_memory_mb contract: budget changes memory, never results
# ----------------------------------------------------------------------
def _fingerprint(result):
    metrics = result.metrics_all
    return (
        result.rounds,
        int(metrics.total_messages),
        int(metrics.total_bits),
        tuple(sorted(result.decisions.items())) if hasattr(result, "decisions") else None,
    )


def test_undersized_budget_is_byte_identical():
    # 1 MB forces minimal chunks, a starved unpacked cache and maximal
    # streaming — and must still reproduce the default run exactly
    kwargs = dict(
        adversary_name="push_flood", seed=0, backend="vectorized",
        wrong_candidate_mode="common_wrong",
    )
    default = run_aer_experiment(2048, **kwargs)
    starved = run_aer_experiment(2048, vec_memory_mb=1, **kwargs)
    assert _fingerprint(default) == _fingerprint(starved)


def test_vec_memory_mb_rejected_on_message_backend():
    with pytest.raises(ValueError, match="vec_memory_mb"):
        run_aer_experiment(64, adversary_name="none", seed=0,
                           backend="message", vec_memory_mb=64)


def test_vec_memory_mb_must_be_positive():
    with pytest.raises(ValueError, match="positive"):
        run_aer_experiment(2048, adversary_name="none", seed=0,
                           backend="vectorized", vec_memory_mb=0)


def test_spec_params_plumb_the_budget():
    from repro.experiments.plan import ExperimentSpec

    base = ExperimentSpec(n=2048, adversary="none", mode="sync", seed=0,
                          wrong_candidate_mode="common_wrong",
                          backend="vectorized")
    budgeted = ExperimentSpec(n=2048, adversary="none", mode="sync", seed=0,
                              wrong_candidate_mode="common_wrong",
                              backend="vectorized",
                              params={"vec_memory_mb": 2})
    a, b = base.run(), budgeted.run()
    assert (a.total_messages, a.total_bits) == (b.total_messages, b.total_bits)


def test_spec_rejects_budget_on_message_backend():
    from repro.experiments.plan import ExperimentSpec

    spec = ExperimentSpec(n=64, adversary="none", mode="sync", seed=0,
                          params={"vec_memory_mb": 64})
    with pytest.raises(ValueError, match="vec_memory_mb"):
        spec.run()


# ----------------------------------------------------------------------
# bench instrumentation
# ----------------------------------------------------------------------
def test_trajectory_carries_repeats():
    from repro.experiments.bench import _previous_trajectory

    previous = {
        "git": {"commit": "abc1234"},
        "repeats": 2,
        "cases": [{"key": "sync:none:n512:s0", "seconds": 1.0}],
    }
    trajectory = _previous_trajectory(previous)
    assert trajectory["abc1234"]["repeats"] == 2
    # generations that predate the repeats key stay unlabelled, not guessed
    del previous["repeats"]
    assert "repeats" not in _previous_trajectory(previous)["abc1234"]


def test_report_repeats_reflect_flag():
    from repro.experiments.bench import build_report

    cases = [{"key": "sync:none:n512:s0", "n": 512, "seconds": 1.0}]
    report = build_report(cases=cases, repeats=2, commit="dead")
    assert report["repeats"] == 2
    assert "minimum of 2 runs" in report["description"]


def test_measure_peak_rss_smoke():
    from repro.experiments.bench import measure_peak_rss
    from repro.experiments.plan import ExperimentSpec

    spec = ExperimentSpec(n=1024, adversary="none", mode="sync", seed=0,
                          wrong_candidate_mode="common_wrong",
                          backend="vectorized")
    rss = measure_peak_rss(spec)
    assert rss is None or rss > 10.0  # None only where the child cannot run
