"""Result-store subsystem: keying, persistence, sweep integration, CLI.

The store's contract, each half pinned here:

* **Content addressing** — equivalent spec spellings share one key; any
  field that changes what a run computes (backend, trace, params) changes
  the key; the code fingerprint partitions records between code versions.
* **Incremental sweeps** — a second identical sweep against a warm store
  executes **zero** protocol runs (asserted via the in-process run
  counter), returns byte-identical plan-ordered records, and a partial
  store serves exactly the delta.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.experiments.cli import main as cli_main
from repro.experiments.plan import ExperimentPlan, ExperimentSpec
from repro.experiments.sweep import (
    RUN_COUNTER,
    SweepResult,
    SweepRunner,
    execute_spec,
)
from repro.store import (
    SCHEMA_VERSION,
    ResultStore,
    StoreError,
    code_fingerprint,
    plan_key,
    resolve_store,
    spec_key,
)


@pytest.fixture(autouse=True)
def _pinned_fingerprint(monkeypatch):
    """Pin the code fingerprint so tests never depend on git state."""
    monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "test-fp")


@pytest.fixture()
def store(tmp_path):
    with ResultStore(str(tmp_path / "store.sqlite")) as s:
        yield s


# ----------------------------------------------------------------------
# keys
# ----------------------------------------------------------------------
class TestKeys:
    def test_equivalent_spellings_share_one_key(self):
        a = ExperimentSpec(n=64, params={"b": 1, "a": 2})
        b = ExperimentSpec(n=64, params='{"a":2,"b":1}')
        assert spec_key(a) == spec_key(b)

    def test_every_run_changing_field_changes_the_key(self):
        base = ExperimentSpec(n=64, seed=1)
        for changed in (
            base.with_(n=65),
            base.with_(seed=2),
            base.with_(adversary="silent"),
            base.with_(mode="async"),
            base.with_(backend="vectorized"),
            base.with_(trace="summary"),
            base.with_(quorum_multiplier=3.0),
            base.with_(params={"x": 1}),
        ):
            assert spec_key(changed) != spec_key(base)

    def test_plan_key_is_stable_and_order_sensitive(self):
        plan = ExperimentPlan(ns=(24, 32), seeds=(0, 1))
        assert plan_key(plan) == plan_key(ExperimentPlan(ns=[24, 32], seeds=[0, 1]))
        assert plan_key(plan) != plan_key(ExperimentPlan(ns=(32, 24), seeds=(0, 1)))

    def test_fingerprint_env_override_wins(self, monkeypatch):
        assert code_fingerprint() == "test-fp"
        monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "other")
        assert code_fingerprint() == "other"


# ----------------------------------------------------------------------
# round-trip across every registered protocol
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_round_trip_across_all_registered_protocols(self, store):
        from repro.protocols import get_protocol, list_protocols

        specs = []
        for name in list_protocols():
            spec = get_protocol(name).relax_spec(
                ExperimentSpec(n=24, protocol=name, seed=3)
            )
            specs.append(spec)
        records = [execute_spec(spec) for spec in specs]
        assert store.put_many(records) == len(records)
        loaded = store.get_many(specs)
        assert loaded == records  # full dataclass equality, extras included
        assert set(store.stats()["by_protocol"]) == set(list_protocols())

    def test_hit_miss_and_fingerprint_invalidation(self, store, tmp_path):
        spec = ExperimentSpec(n=24, seed=3)
        assert store.get(spec) is None  # miss before put
        record = execute_spec(spec)
        store.put(record)
        assert store.get(spec) == record  # hit
        assert store.get(spec.with_(seed=4)) is None  # different spec: miss
        other = ResultStore(str(tmp_path / "store.sqlite"), fingerprint="other-fp")
        assert other.get(spec) is None  # same spec, other code: miss
        other.close()

    def test_prune_by_fingerprint_and_keep_current(self, store, tmp_path):
        record = execute_spec(ExperimentSpec(n=24, seed=3))
        store.put(record)
        other = ResultStore(str(tmp_path / "store.sqlite"), fingerprint="stale-fp")
        other.put(execute_spec(ExperimentSpec(n=24, seed=4)))
        assert store.stats()["records"] == 2
        assert store.prune(fingerprint="stale-fp") == 1
        other.put(execute_spec(ExperimentSpec(n=24, seed=5)))
        assert store.prune(keep_current=True) == 1
        stats = store.stats()
        assert stats["records"] == 1 and stats["by_fingerprint"] == {"test-fp": 1}
        with pytest.raises(ValueError, match="exactly one"):
            store.prune()
        with pytest.raises(ValueError, match="exactly one"):
            store.prune(fingerprint="x", keep_current=True)
        other.close()

    def test_query_filters_by_protocol_and_fingerprint(self, store):
        store.put(execute_spec(ExperimentSpec(n=24, seed=3)))
        rows = store.query(protocol="aer")
        assert len(rows) == 1 and rows[0]["spec"]["n"] == 24
        assert store.query(protocol="nope") == []
        assert store.query(fingerprint="other") == []


# ----------------------------------------------------------------------
# robustness: schema versions, corruption, concurrent writers
# ----------------------------------------------------------------------
class TestRobustness:
    def test_newer_schema_version_is_refused(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        with ResultStore(path) as s:
            s._conn.execute(
                "UPDATE store_meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION + 7),),
            )
            s._conn.commit()
        with pytest.raises(StoreError, match="newer than this code's version"):
            ResultStore(path)

    def test_corrupted_db_names_the_path_and_recovery(self, tmp_path):
        path = tmp_path / "store.sqlite"
        path.write_bytes(b"this is not a sqlite database, not even close\x00\x01")
        with pytest.raises(StoreError, match="delete the file"):
            ResultStore(str(path))
        with pytest.raises(StoreError, match="store.sqlite"):
            ResultStore(str(path))

    def test_two_process_concurrent_writers(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        ResultStore(path).close()  # create the schema up front
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        procs = [
            ctx.Process(target=_writer_proc, args=(path, base_seed))
            for base_seed in (100, 200)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        with ResultStore(path) as store:
            assert store.stats()["records"] == 8  # 2 writers x 4 distinct specs


def _writer_proc(path: str, base_seed: int) -> None:
    os.environ["REPRO_CODE_FINGERPRINT"] = "test-fp"
    store = ResultStore(path)
    for seed in range(base_seed, base_seed + 4):
        store.put(execute_spec(ExperimentSpec(n=16, seed=seed)))
    store.close()


# ----------------------------------------------------------------------
# sweep integration: the zero-re-run contract
# ----------------------------------------------------------------------
PLAN = ExperimentPlan(ns=(24,), adversaries=("none", "silent"), seeds=(3,))


class TestSweepIntegration:
    def test_second_identical_sweep_executes_zero_protocol_runs(self, store):
        first = SweepRunner(PLAN, jobs=1).run(store=store)
        assert first.served_from_store == 0
        executed_before = RUN_COUNTER["executed"]
        second = SweepRunner(PLAN, jobs=1).run(store=store)
        assert RUN_COUNTER["executed"] == executed_before  # zero protocol runs
        assert second.served_from_store == len(second.records) == 2
        # plan-order output is byte-identical, original measurements included
        assert json.dumps([r.to_dict() for r in first.records]) == json.dumps(
            [r.to_dict() for r in second.records]
        )

    def test_partial_store_runs_only_the_delta(self, store):
        SweepRunner(ExperimentPlan(ns=(24,), seeds=(3,)), jobs=1).run(store=store)
        grown = ExperimentPlan(ns=(24,), seeds=(3, 4))
        executed_before = RUN_COUNTER["executed"]
        result = SweepRunner(grown, jobs=1).run(store=store)
        assert RUN_COUNTER["executed"] == executed_before + 1  # only seed 4
        assert result.served_from_store == 1
        assert [r.spec.seed for r in result.records] == [3, 4]  # plan order kept

    def test_store_with_worker_pool_serves_and_flushes(self, store):
        first = SweepRunner(PLAN, jobs=2).run(store=store)
        assert first.served_from_store == 0
        assert store.stats()["records"] == 2  # pooled records flushed too
        second = SweepRunner(PLAN, jobs=2).run(store=store)
        assert second.served_from_store == 2
        for a, b in zip(first.records, second.records):
            assert a.spec == b.spec and a.total_bits == b.total_bits

    def test_on_record_fires_for_hits_and_fresh_runs(self, store):
        events = []
        SweepRunner(PLAN, jobs=1).run(
            store=store, on_record=lambda i, r, served: events.append((i, served))
        )
        assert events == [(0, False), (1, False)]
        events.clear()
        SweepRunner(PLAN, jobs=1).run(
            store=store, on_record=lambda i, r, served: events.append((i, served))
        )
        assert events == [(0, True), (1, True)]

    def test_seed_records_resume_without_a_store(self):
        complete = SweepRunner(PLAN, jobs=1).run()
        seeds = {spec_key(r.spec): r for r in complete.records[:1]}
        executed_before = RUN_COUNTER["executed"]
        resumed = SweepRunner(PLAN, jobs=1).run(seed_records=seeds)
        assert RUN_COUNTER["executed"] == executed_before + 1  # only the miss
        assert resumed.served_from_store == 1
        assert resumed.records[0] == complete.records[0]


# ----------------------------------------------------------------------
# CLI: sweep --store/--no-store/--resume, store stats/prune
# ----------------------------------------------------------------------
class TestCLI:
    SWEEP_ARGS = [
        "sweep", "--ns", "24", "--adversaries", "none", "--seeds", "3", "--jobs", "1",
    ]

    def test_sweep_store_flag_then_full_hit(self, tmp_path, capsys):
        store_path = str(tmp_path / "s.sqlite")
        assert cli_main([*self.SWEEP_ARGS, "--store", store_path]) == 0
        assert "0/1 served from store" in capsys.readouterr().out
        executed_before = RUN_COUNTER["executed"]
        assert cli_main([*self.SWEEP_ARGS, "--store", store_path]) == 0
        assert "1/1 served from store" in capsys.readouterr().out
        assert RUN_COUNTER["executed"] == executed_before

    def test_no_store_overrides_env(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env.sqlite"))
        assert cli_main([*self.SWEEP_ARGS, "--no-store"]) == 0
        assert "served from store" not in capsys.readouterr().out
        assert not (tmp_path / "env.sqlite").exists()

    def test_env_store_is_used_without_flags(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env.sqlite"))
        assert cli_main(self.SWEEP_ARGS) == 0
        assert (tmp_path / "env.sqlite").exists()
        assert "0/1 served from store" in capsys.readouterr().out

    def test_resume_runs_only_missing_spec_keys(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        assert cli_main([*self.SWEEP_ARGS, "--out", str(out)]) == 0
        capsys.readouterr()
        # grow the grid; resume re-seeds the finished spec from the file
        executed_before = RUN_COUNTER["executed"]
        assert (
            cli_main(
                [
                    "sweep", "--ns", "24", "--adversaries", "none,silent",
                    "--seeds", "3", "--jobs", "1", "--resume", str(out),
                ]
            )
            == 0
        )
        assert RUN_COUNTER["executed"] == executed_before + 1
        assert "1/2 served from store" in capsys.readouterr().out
        data = json.loads(out.read_text(encoding="utf-8"))
        assert len(data["records"]) == 2  # --resume doubled as --out
        assert data["served_from_store"] == 1

    def test_store_stats_and_prune_commands(self, tmp_path, capsys):
        store_path = str(tmp_path / "s.sqlite")
        assert cli_main([*self.SWEEP_ARGS, "--store", store_path]) == 0
        capsys.readouterr()
        assert cli_main(["store", "stats", "--store", store_path]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["records"] == 1 and stats["by_fingerprint"] == {"test-fp": 1}
        assert cli_main(
            ["store", "prune", "--store", store_path, "--fingerprint", "test-fp"]
        ) == 0
        assert "pruned 1 record(s)" in capsys.readouterr().out
        assert cli_main(["store", "stats", "--store", store_path]) == 0
        assert json.loads(capsys.readouterr().out)["records"] == 0

    def test_store_command_surfaces_corruption_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.sqlite"
        bad.write_bytes(b"garbage")
        assert cli_main(["store", "stats", "--store", str(bad)]) == 2
        assert "delete the file" in capsys.readouterr().err

    @pytest.mark.parametrize("content", ["", '[{"records": [{"trunc'])
    def test_resume_tolerates_empty_and_truncated_files(
        self, tmp_path, capsys, content
    ):
        """An interrupted sweep's partial file seeds 0 records, not an abort."""
        partial = tmp_path / "partial.json"
        partial.write_text(content, encoding="utf-8")
        assert cli_main(
            [*self.SWEEP_ARGS, "--no-store", "--resume", str(partial)]
        ) == 0
        captured = capsys.readouterr()
        assert "seeding 0/1 records" in captured.err
        assert "resume: seeding 0/1 records" in captured.out
        # the finished sweep replaces the corrupt file (resume doubles as out)
        data = json.loads(partial.read_text(encoding="utf-8"))
        assert len(data["records"]) == 1
        # and resuming from the repaired file now seeds normally
        capsys.readouterr()
        executed_before = RUN_COUNTER["executed"]
        assert cli_main(
            [*self.SWEEP_ARGS, "--no-store", "--resume", str(partial)]
        ) == 0
        assert RUN_COUNTER["executed"] == executed_before
        assert "resume: seeding 1/1 records" in capsys.readouterr().out


# ----------------------------------------------------------------------
# faulted specs: keying, store round-trip, resume with fault metadata
# ----------------------------------------------------------------------
class TestFaultedSpecs:
    FAULTS = {"loss_rate": 0.1, "churn_rate": 0.05}

    def test_fault_schedule_participates_in_the_key(self):
        base = ExperimentSpec(n=24, seed=3)
        faulted = base.with_(faults=self.FAULTS)
        assert spec_key(faulted) != spec_key(base)
        assert spec_key(faulted) != spec_key(
            base.with_(faults={"loss_rate": 0.2, "churn_rate": 0.05})
        )
        # equivalent spellings of one schedule are one key (a store hit)
        assert spec_key(faulted) == spec_key(
            base.with_(faults='{"churn_rate":0.05,"loss_rate":0.1}')
        )

    def test_store_hit_miss_across_schedule_change(self, store):
        spec = ExperimentSpec(n=24, seed=3, faults=self.FAULTS)
        record = execute_spec(spec)
        store.put(record)
        assert store.get(spec) == record
        assert store.get(spec.with_(faults={"loss_rate": 0.2})) is None
        assert store.get(spec.with_(faults={})) is None

    def test_resume_roundtrips_fault_metadata(self, tmp_path):
        plan = ExperimentPlan(ns=(24,), seeds=(3,), faults=self.FAULTS)
        out = tmp_path / "faulted.json"
        complete = SweepRunner(plan, jobs=1).run()
        complete.save(str(out))
        loaded = SweepResult.load_records(str(out))
        assert [r.spec for r in loaded] == [r.spec for r in complete.records]
        assert loaded[0].spec.faults_dict() == self.FAULTS
        assert loaded[0].extras["fault_dropped_loss"] > 0
        # the loaded records seed a resume: zero fresh executions
        executed_before = RUN_COUNTER["executed"]
        resumed = SweepRunner(plan, jobs=1).run(
            seed_records={spec_key(r.spec): r for r in loaded}
        )
        assert RUN_COUNTER["executed"] == executed_before
        assert resumed.records == complete.records


# ----------------------------------------------------------------------
# result-file compatibility
# ----------------------------------------------------------------------
def test_sweep_result_json_roundtrips_served_count(tmp_path):
    result = SweepRunner(ExperimentPlan(ns=(24,), seeds=(3,)), jobs=1).run()
    path = tmp_path / "sweep.json"
    result.save(str(path))
    loaded = SweepResult.load(str(path))
    assert loaded.served_from_store == 0
    # pre-store files (no served_from_store key) still load
    data = json.loads(path.read_text(encoding="utf-8"))
    del data["served_from_store"]
    path.write_text(json.dumps(data), encoding="utf-8")
    assert SweepResult.load(str(path)).served_from_store == 0


def test_resolve_store_precedence(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    assert resolve_store(None) is None  # nothing set: no store
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env.sqlite"))
    via_env = resolve_store(None)
    assert via_env is not None and via_env.path.endswith("env.sqlite")
    via_env.close()
    assert resolve_store(None, no_store=True) is None
    explicit = resolve_store(str(tmp_path / "flag.sqlite"))
    assert explicit.path.endswith("flag.sqlite")
    explicit.close()
    monkeypatch.chdir(tmp_path)
    monkeypatch.delenv("REPRO_STORE")
    default = resolve_store("")  # bare --store: the default path
    assert default.path == ".repro-store.sqlite"
    default.close()


def test_store_plus_resume_prints_one_consolidated_served_line(tmp_path, capsys):
    """Both sources live: one "served K/N (store J, resume I)" line, no
    double counting when they supply the same spec key."""
    store_path = str(tmp_path / "s.sqlite")
    resume_path = tmp_path / "resume.json"
    # the store holds spec A; the resume file holds A *and* B
    complete = SweepRunner(PLAN, jobs=1).run()
    with ResultStore(store_path) as store:
        store.put(complete.records[0])
    complete.save(str(resume_path))
    executed_before = RUN_COUNTER["executed"]
    assert (
        cli_main(
            [
                "sweep", "--ns", "24", "--adversaries", "none,silent",
                "--seeds", "3", "--jobs", "1",
                "--store", store_path, "--resume", str(resume_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    # store precedence for the shared key A; B comes from the resume file
    assert "served 2/2 (store 1, resume 1)" in out
    assert "served from store" not in out  # the old line is replaced
    assert RUN_COUNTER["executed"] == executed_before  # fully served
