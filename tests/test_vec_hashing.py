"""The batched blake2b path must match ``stable_hash`` and the samplers bit-for-bit.

The vectorized engine's exactness guarantee bottoms out here: every quorum
and poll-list membership it computes comes from
:func:`repro.vec.hashing.batch_digest_mod` /
:func:`repro.vec.hashing.first_distinct_rows`, which reimplement the one
blake2b compression the samplers perform per draw as uint64 lane arithmetic.
These tests pin the equivalence directly against ``hashlib`` (via
:func:`repro.net.rng.stable_hash`) and against the Python samplers' member
loops, including the per-row fallbacks for oversized messages and
collision-heavy rows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import AERConfig
from repro.net.rng import stable_hash
from repro.vec.hashing import (
    batch_digest_mod,
    encode_parts,
    first_distinct_rows,
)


class TestBatchDigestMod:
    def test_matches_stable_hash(self):
        n = 997
        prefix = encode_parts(12345, "H", "0110")
        xs = np.arange(200, dtype=np.int64)
        counters = np.arange(200, dtype=np.int64) % 7
        got = batch_digest_mod(prefix, [xs, counters], n)
        expected = [
            stable_hash(12345, "H", "0110", int(x), int(c)) % n
            for x, c in zip(xs, counters)
        ]
        assert got.tolist() == expected

    def test_mixed_digit_lengths(self):
        # Values spanning 1-7 decimal digits land in different shape buckets;
        # every bucket must still match the reference encoding.
        n = 101
        prefix = encode_parts(7, "J")
        values = np.array([0, 9, 10, 99, 100, 123456, 9999999], dtype=np.int64)
        got = batch_digest_mod(prefix, [values], n)
        expected = [stable_hash(7, "J", int(v)) % n for v in values]
        assert got.tolist() == expected

    def test_oversized_message_falls_back_to_hashlib(self):
        # A prefix near the 128-byte block boundary forces the per-row path.
        long_string = "x" * 150
        prefix = encode_parts(1, long_string)
        assert len(prefix) > 128
        values = np.array([3, 14, 159], dtype=np.int64)
        got = batch_digest_mod(prefix, [values], 271)
        expected = [stable_hash(1, long_string, int(v)) % 271 for v in values]
        assert got.tolist() == expected


class TestFirstDistinctRows:
    def test_matches_sampler_member_loop(self):
        n, size = 211, 9
        prefix = encode_parts(42, "H", "1010")
        xs = np.arange(64, dtype=np.int64)
        got = first_distinct_rows(prefix, [xs], size, n)
        for i, x in enumerate(xs):
            members, seen, counter = [], set(), 0
            while len(members) < size:
                candidate = stable_hash(42, "H", "1010", int(x), counter) % n
                counter += 1
                if candidate not in seen:
                    seen.add(candidate)
                    members.append(candidate)
            assert got[i].tolist() == sorted(members)

    def test_collision_heavy_rows_resolve_exactly(self):
        # n barely above size guarantees duplicate draws, exercising the
        # per-row exact fallback behind the batched extra_draws window.
        n, size = 5, 4
        prefix = encode_parts(0, "J")
        xs = np.arange(20, dtype=np.int64)
        got = first_distinct_rows(prefix, [xs], size, n, extra_draws=0)
        for i, x in enumerate(xs):
            members, seen, counter = [], set(), 0
            while len(members) < size:
                candidate = stable_hash(0, "J", int(x), counter) % n
                counter += 1
                if candidate not in seen:
                    seen.add(candidate)
                    members.append(candidate)
            assert got[i].tolist() == sorted(members)

    def test_matches_quorum_sampler(self):
        config = AERConfig.for_system(256, sampler_seed=3)
        samplers = config.shared_samplers()
        s = "1" * config.string_length
        table = samplers.pull.table(s)
        xs = np.arange(256, dtype=np.int64)
        prefix = encode_parts(samplers.pull.spec.seed, samplers.pull.name, s)
        got = first_distinct_rows(prefix, [xs], samplers.pull.quorum_size, 256)
        for x in range(256):
            assert got[x].tolist() == list(table.quorum(x))

    def test_matches_poll_sampler(self):
        config = AERConfig.for_system(128, sampler_seed=5)
        samplers = config.shared_samplers()
        poll = samplers.poll
        rows = [(x, r) for x in range(16) for r in (0, 1, poll.label_space - 1)]
        xs = np.array([x for x, _ in rows], dtype=np.int64)
        rs = np.array([r for _, r in rows], dtype=np.int64)
        prefix = encode_parts(poll.spec.seed, poll.name)
        got = first_distinct_rows(prefix, [xs, rs], poll.list_size, 128)
        for i, (x, r) in enumerate(rows):
            assert got[i].tolist() == sorted(poll.entry(x, r).members)


class TestEncodeParts:
    def test_matches_stable_hash_encoding(self):
        # encode_parts must be the same length-prefixed repr encoding that
        # stable_hash absorbs — checked indirectly via a digest round-trip.
        import hashlib

        hasher = hashlib.blake2b(digest_size=16)
        hasher.update(encode_parts(11, "name", 3))
        assert int.from_bytes(hasher.digest(), "big") == stable_hash(11, "name", 3)
