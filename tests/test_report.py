"""Report subsystem: registry error paths, rendering goldens, cache, CLI.

Rendering is pinned two ways: a golden Markdown snapshot on a hand-built
(simulation-free, thus platform-stable) sweep, and a byte-identity check on
a real tiny sweep run twice — the contract the CI freshness job
(``git diff --exit-code EXPERIMENTS.md``) relies on.
"""

from __future__ import annotations

import pytest

from repro.experiments.cli import main as cli_main
from repro.experiments.plan import ExperimentPlan, ExperimentSpec
from repro.experiments.sweep import ExperimentRecord
from repro.analysis.statistics import mean_ci
from repro.report import (
    REPORT_SECTIONS,
    ReportBuilder,
    ReportSection,
    aggregate_rows,
    get_report_section,
    list_report_sections,
    markdown_table,
    register_report_section,
    render_registries,
)
from repro.report.sections import LEMMA7, LEMMA8


def make_record(spec: ExperimentSpec = None, **overrides) -> ExperimentRecord:
    spec = spec if spec is not None else ExperimentSpec(n=16, seed=0, label="lemma8")
    base = dict(
        spec=spec,
        seconds=0.123,  # wall-clock: must never leak into report rows
        agreement=True,
        decided_count=13,
        correct_count=13,
        rounds=5.0,
        span=None,
        max_decision_time=5.0,
        total_messages=160,
        total_bits=1000,
        amortized_bits=62.5,
        max_node_bits=100,
        median_node_bits=80.0,
        load_imbalance=1.25,
        extras={},
    )
    base.update(overrides)
    return ExperimentRecord(**base)


# ----------------------------------------------------------------------
# statistics helpers
# ----------------------------------------------------------------------
def test_mean_ci_single_sample_has_no_interval():
    estimate = mean_ci([4.0])
    assert estimate.mean == 4.0
    assert estimate.half_width == 0.0
    assert estimate.format() == "4.00"


def test_mean_ci_known_values():
    estimate = mean_ci([1.0, 2.0, 3.0])
    assert estimate.mean == pytest.approx(2.0)
    assert estimate.low < 2.0 < estimate.high
    assert "±" in estimate.format()


def test_mean_ci_rejects_empty():
    with pytest.raises(ValueError):
        mean_ci([])


# ----------------------------------------------------------------------
# registry error paths
# ----------------------------------------------------------------------
def test_builtin_sections_registered_in_document_order():
    names = list_report_sections()
    assert names == [
        "figure1a", "figure1a_scale", "figure1b", "lemma3", "lemma4", "lemma5",
        "lemma6", "lemma7", "lemma8", "lemma10", "property2", "adversary_matrix",
        "degraded_networks", "ablation_filters", "ablation_quorum",
        "ablation_scheduler",
    ]


def test_unknown_section_error_names_registered_ones():
    with pytest.raises(ValueError, match="unknown report section 'nope'"):
        get_report_section("nope")
    with pytest.raises(ValueError, match="figure1a"):
        get_report_section("nope")


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        @register_report_section
        class Duplicate(ReportSection):  # noqa: F811 - intentionally clashing
            name = "lemma8"


def test_builder_rejects_unknown_section():
    with pytest.raises(ValueError, match="unknown report section"):
        ReportBuilder(sections=["figure1a", "nope"])


# ----------------------------------------------------------------------
# row building and aggregation
# ----------------------------------------------------------------------
def test_lemma8_record_row_excludes_wall_clock():
    row = LEMMA8.record_row(make_record())
    assert row == {
        "n": 16,
        "seed": 0,
        "rounds": 5.0,
        "latest_decision_round": 5.0,
        "messages_per_node": 10.0,
        "agreement": 1,
        "decided_fraction": 1.0,
    }
    assert "seconds" not in row


def test_lemma7_wrong_decision_count_from_extras():
    spec = ExperimentSpec(n=16, adversary="wrong_answer", seed=3, label="lemma7")
    record = make_record(
        spec=spec, decided_count=12, correct_count=13, extras={"decided_gstring": 10 / 13}
    )
    row = LEMMA7.record_row(record)
    assert row["wrong_decisions"] == 2  # 12 decided, only 10 on gstring
    assert row["reach"] == round(10 / 13, 4)


def test_aggregate_rows_ci_rate_and_max():
    rows = [
        {"n": 16, "seed": 0, "agreement": 1, "rounds": 5.0, "peak": 10},
        {"n": 16, "seed": 1, "agreement": 0, "rounds": 7.0, "peak": 30},
        {"n": 32, "seed": 0, "agreement": 1, "rounds": "-", "peak": 20},
    ]
    agg = aggregate_rows(
        rows, group_by=("n",), ci_columns=("rounds",), rate_columns=("agreement",),
        max_columns=("peak",),
    )
    assert agg[0]["n"] == 16 and agg[0]["runs"] == 2
    assert agg[0]["agreement"] == 0.5
    assert agg[0]["rounds"].startswith("6.00 ±")
    assert agg[0]["peak"] == 30
    # all-missing numeric column renders as "-"
    assert agg[1] == {"n": 32, "runs": 1, "agreement": 1.0, "rounds": "-", "peak": 20}


def test_markdown_table_golden():
    rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
    assert markdown_table(rows) == "| a | b |\n|---|---|\n| 1 | x |\n| 2 | y |"
    assert markdown_table([]) == "*(no rows)*"


def test_section_render_golden_snapshot():
    """Full section Markdown on a hand-built sweep — no simulation, exact bytes."""
    records = [
        make_record(ExperimentSpec(n=16, adversary="wrong_answer", seed=s, label="lemma8"))
        for s in (0, 1)
    ]
    text = LEMMA8.render(records)
    assert text == (
        "## Lemmas 8-9 — synchronous non-rushing: constant rounds, O~(n) messages\n"
        "\n"
        "**Paper's claim.** Against a non-rushing synchronous adversary every poll "
        "is answered in a constant number of steps, the protocol finishes in O(1) "
        "rounds and the total number of messages is O~(n).\n"
        "\n"
        "| n | runs | agreement | rounds | messages_per_node | decided_fraction "
        "| latest_decision_round |\n"
        "|---|---|---|---|---|---|---|\n"
        "| 16 | 2 | 1.0 | 5.00 | 10.00 | 1.00 | 5.0 |\n"
        "\n"
        "- Rounds: paper says O(1) — fitted power exponent n/a (a handful of nodes "
        "may decide one cascade later, so the count fluctuates but does not grow "
        "with n).\n"
        "- Messages per node: paper says O~(n) total, i.e. polylog per node — "
        "fitted exponent n/a.\n"
        "- Outcome: agreement in 2/2 runs (rate 1.000, 95% CI [0.342, 1.000]).\n"
        "\n"
        "*Shape assertions: "
        "[`benchmarks/bench_lemma8_sync_pull_latency.py`]"
        "(benchmarks/bench_lemma8_sync_pull_latency.py) (same row-building code).*\n"
    )


# ----------------------------------------------------------------------
# a tiny real section for builder/cache/CLI tests
# ----------------------------------------------------------------------
@pytest.fixture()
def tiny_section():
    @register_report_section
    class TinySection(ReportSection):
        name = "tiny_test"
        title = "Tiny — builder test section"
        claim = "runs two small failure-free experiments"
        order = 999
        group_by = ("n",)
        ci_columns = ("rounds",)
        rate_columns = ("agreement",)

        def plan(self, quick: bool = True) -> ExperimentPlan:
            return ExperimentPlan(ns=(24,), seeds=(0, 1), label="tiny")

        def record_row(self, record):
            return {
                "n": record.spec.n,
                "seed": record.spec.seed,
                "agreement": int(record.agreement),
                "rounds": record.rounds,
            }

    yield REPORT_SECTIONS.get("tiny_test")
    REPORT_SECTIONS.unregister("tiny_test")


def test_builder_document_is_byte_identical_and_timestamp_free(tiny_section):
    builder = ReportBuilder(sections=["tiny_test"], jobs=1)
    first = builder.build()
    second = ReportBuilder(sections=["tiny_test"], jobs=1).build()
    assert first == second
    assert "wall-time" not in first and "git commit" not in first
    assert "| grid | quick (CI-sized) |" in first
    assert "| seeds | 0, 1 |" in first
    assert "Tiny — builder test section" in first


def test_builder_volatile_provenance_is_opt_in(tiny_section):
    text = ReportBuilder(sections=["tiny_test"], jobs=1, include_volatile=True).build()
    assert "git commit" in text and "wall-time" in text


def test_store_round_trip_skips_resimulation(tiny_section, tmp_path, monkeypatch):
    from repro.experiments.sweep import RUN_COUNTER

    monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "report-test-fp")
    store = tmp_path / "store.sqlite"
    builder = ReportBuilder(sections=["tiny_test"], jobs=1, store_path=str(store))
    [built] = builder.build_sections()
    assert not built.from_cache
    assert store.exists()

    # a second build serves every record from the store, never re-running
    before = RUN_COUNTER["executed"]
    again = ReportBuilder(sections=["tiny_test"], jobs=1, store_path=str(store))
    [reloaded] = again.build_sections()
    assert reloaded.from_cache
    assert reloaded.sweep.served_from_store == len(reloaded.sweep.records) == 2
    assert RUN_COUNTER["executed"] == before  # zero protocol executions
    assert reloaded.markdown == built.markdown

    # a different code fingerprint invalidates per spec (full re-run here)
    monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "report-test-fp2")
    [rebuilt] = ReportBuilder(
        sections=["tiny_test"], jobs=1, store_path=str(store)
    ).build_sections()
    assert not rebuilt.from_cache
    assert {r.spec.seed for r in rebuilt.sweep.records} == {0, 1}


def test_cache_dir_is_a_deprecated_shim_onto_the_store(tiny_section, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "report-test-fp")
    cache = tmp_path / "cache"
    with pytest.deprecated_call(match="--cache are deprecated"):
        builder = ReportBuilder(sections=["tiny_test"], jobs=1, cache_dir=str(cache))
    assert builder.store_path == str(cache / "report-store.sqlite")
    [built] = builder.build_sections()
    assert not built.from_cache
    assert (cache / "report-store.sqlite").exists()
    # the forwarded store serves the next --cache build entirely
    with pytest.deprecated_call():
        again = ReportBuilder(sections=["tiny_test"], jobs=1, cache_dir=str(cache))
    [reloaded] = again.build_sections()
    assert reloaded.from_cache
    assert reloaded.markdown == built.markdown


# ----------------------------------------------------------------------
# registries document and CLI
# ----------------------------------------------------------------------
def test_render_registries_covers_all_five():
    text = render_registries()
    for heading in ("## Protocols", "## Adversaries", "## Delay policies",
                    "## Scenario generators", "## Report sections"):
        assert heading in text
    for name in ("`aer`", "`cornering`", "`constant`", "`synthetic`", "`figure1a`"):
        assert name in text


def test_cli_report_list(capsys):
    assert cli_main(["report", "--list"]) == 0
    out = capsys.readouterr().out
    assert "figure1a" in out and "adversary_matrix" in out


def test_cli_report_writes_document(tiny_section, tmp_path, capsys):
    out = tmp_path / "EXPERIMENTS.md"
    assert cli_main(["report", "--sections", "tiny_test", "-o", str(out)]) == 0
    assert out.read_text(encoding="utf-8").startswith("# EXPERIMENTS")


def test_cli_report_unknown_section_fails_cleanly(capsys):
    assert cli_main(["report", "--sections", "nope", "-o", "-"]) == 2
    assert "unknown report section" in capsys.readouterr().err


def test_cli_registries_writes_document(tmp_path):
    out = tmp_path / "REGISTRIES.md"
    assert cli_main(["registries", "-o", str(out)]) == 0
    assert out.read_text(encoding="utf-8").startswith("# Registry reference")
