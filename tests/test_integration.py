"""End-to-end integration tests across schedulers, adversaries and seeds.

These tests exercise the complete stack (scenario synthesis → adversary →
simulator → protocol → metrics) the way the benchmarks do, and pin down the
paper's two headline guarantees at test scale:

* **safety** (Lemma 7): no correct node ever decides anything other than
  ``gstring``, under any implemented adversary, in any scheduler;
* **liveness / reach** (Lemmas 5, 6, 8): essentially every correct node
  decides, quickly in the synchronous non-rushing case.

The w.h.p. nature of the claims means single unlucky nodes can miss a
deterministic "everyone decided" assertion at small ``n`` (see
EXPERIMENTS.md); the statistical assertions below therefore allow a tiny
failure fraction while the safety assertions are absolute.
"""

from __future__ import annotations

import pytest

from repro import run_aer_experiment
from repro.core.config import AERConfig
from repro.core.scenario import make_scenario
from repro.runner import make_adversary, run_aer

ADVERSARIES = [
    "none",
    "silent",
    "noise",
    "equivocate",
    "wrong_answer",
    "push_flood",
    "quorum_flood",
]


class TestSafetyUnderAllAdversaries:
    @pytest.mark.parametrize("adversary", ADVERSARIES + ["cornering"])
    def test_sync_decisions_are_always_gstring(self, medium_scenario, medium_config, adversary):
        samplers = medium_config.build_samplers()
        result = run_aer(
            medium_scenario,
            config=medium_config,
            adversary=make_adversary(adversary, medium_scenario, medium_config, samplers),
            seed=21,
            samplers=samplers,
        )
        assert all(v == medium_scenario.gstring for v in result.decisions.values())

    @pytest.mark.parametrize("adversary", ["wrong_answer", "cornering"])
    def test_async_decisions_are_always_gstring(self, small_scenario, small_config, adversary):
        samplers = small_config.build_samplers()
        result = run_aer(
            small_scenario,
            config=small_config,
            adversary=make_adversary(adversary, small_scenario, small_config, samplers),
            mode="async",
            seed=22,
            samplers=samplers,
        )
        assert all(v == small_scenario.gstring for v in result.decisions.values())


class TestLiveness:
    @pytest.mark.parametrize("adversary", ADVERSARIES)
    def test_sync_everyone_decides(self, medium_scenario, medium_config, adversary):
        samplers = medium_config.build_samplers()
        result = run_aer(
            medium_scenario,
            config=medium_config,
            adversary=make_adversary(adversary, medium_scenario, medium_config, samplers),
            seed=21,
            samplers=samplers,
        )
        assert result.agreement_reached
        assert result.rounds <= 8

    def test_rushing_sync_still_decides(self, medium_scenario, medium_config):
        samplers = medium_config.build_samplers()
        result = run_aer(
            medium_scenario,
            config=medium_config,
            adversary=make_adversary("cornering", medium_scenario, medium_config, samplers),
            rushing=True,
            seed=21,
            samplers=samplers,
        )
        assert result.fraction_decided(medium_scenario.gstring) >= 0.95

    def test_async_with_adversarial_delays_decides(self, small_scenario, small_config):
        samplers = small_config.build_samplers()
        result = run_aer(
            small_scenario,
            config=small_config,
            adversary=make_adversary("slow_knowledgeable", small_scenario, small_config, samplers),
            mode="async",
            seed=23,
            samplers=samplers,
        )
        assert result.fraction_decided(small_scenario.gstring) >= 0.95

    def test_multi_seed_reach_is_high(self):
        """Across several independent instances, essentially every node decides gstring."""
        total_nodes = 0
        decided_gstring = 0
        wrong = 0
        for seed in range(5):
            result = run_aer_experiment(n=48, adversary_name="wrong_answer", seed=seed)
            correct = len(result.correct_ids)
            total_nodes += correct
            value_counts = {}
            for node_id in result.correct_ids:
                value = result.decisions.get(node_id)
                value_counts[value] = value_counts.get(value, 0) + 1
            gstring = max(
                (v for v in value_counts if v is not None),
                key=lambda v: value_counts[v],
            )
            decided_gstring += value_counts.get(gstring, 0)
            wrong += sum(
                count for value, count in value_counts.items()
                if value is not None and value != gstring
            )
        assert wrong == 0
        assert decided_gstring / total_nodes >= 0.98


class TestRunnerInterface:
    def test_run_aer_experiment_default(self):
        result = run_aer_experiment(n=36, seed=2)
        assert result.agreement_reached

    def test_invalid_mode_rejected(self, small_scenario, small_config):
        with pytest.raises(ValueError):
            run_aer(small_scenario, config=small_config, mode="timewarp")

    def test_adversary_name_and_instance_both_work(self, small_scenario, small_config):
        samplers = small_config.build_samplers()
        by_name = run_aer(
            small_scenario, config=small_config, adversary_name="silent",
            seed=4, samplers=samplers,
        )
        explicit = run_aer(
            small_scenario, config=small_config,
            adversary=make_adversary("silent", small_scenario, small_config, samplers),
            seed=4, samplers=samplers,
        )
        assert by_name.metrics.total_bits == explicit.metrics.total_bits

    def test_restricted_metrics_exclude_byzantine_load(self, medium_scenario, medium_config):
        samplers = medium_config.build_samplers()
        result = run_aer(
            medium_scenario,
            config=medium_config,
            adversary=make_adversary("push_flood", medium_scenario, medium_config, samplers),
            seed=6,
            samplers=samplers,
        )
        byz = set(medium_scenario.byzantine_ids)
        assert not set(result.metrics.per_node_bits) & byz
        assert set(result.metrics_all.per_node_bits) & byz


class TestCostProfile:
    def test_amortized_cost_reasonable(self, medium_scenario, medium_config):
        result = run_aer(medium_scenario, config=medium_config, adversary_name="none", seed=1)
        # polylog target: d^3 * |s| with d=13..15, |s|=24 → order 10^5; far below n*|s| growth
        assert result.metrics.amortized_bits < 5e5

    def test_load_is_not_perfectly_balanced(self, medium_scenario, medium_config):
        result = run_aer(medium_scenario, config=medium_config, adversary_name="none", seed=1)
        assert result.metrics.load_imbalance >= 1.0

    def test_push_phase_cost_small_share(self, medium_scenario, medium_config):
        """Lemma 3: the push phase is a negligible O(s log n) share of the total."""
        samplers = medium_config.build_samplers()
        from repro.core.scenario import build_aer_nodes
        from repro.net.sync import SynchronousSimulator

        nodes = build_aer_nodes(medium_scenario, medium_config, samplers=samplers)
        sim = SynchronousSimulator(
            nodes=nodes, n=medium_scenario.n, seed=1, size_model=medium_config.size_model()
        )
        sim.metrics.enable_message_log()
        sim.run()
        push_bits = sum(
            bits for (_, _, kind, bits, _) in sim.metrics.message_log if kind == "push"
        )
        total_bits = sum(bits for (_, _, _, bits, _) in sim.metrics.message_log)
        assert push_bits < 0.05 * total_bits
